//! Concurrency test for the storage tier: `gc` running against live
//! `store`/`load` traffic must never surface a torn or corrupt entry.
//! Eviction racing a publish is allowed to produce a *miss* (the entry
//! vanished) — never a wrong or partial read, which the checksum footer
//! would catch as a quarantine.

use dp_sweep::cache::{self, StoreOutcome};
use dp_sweep::CellSummary;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn summary_for(key: u64) -> CellSummary {
    CellSummary {
        label: format!("cell-{key}"),
        total_us: key as f64 * 1.5,
        device_span_us: 1.0,
        parent_us: 0.0,
        child_us: 0.0,
        launch_us: 0.0,
        aggregation_us: 0.0,
        disaggregation_us: 0.0,
        warp_avg_total_us: 1.0,
        device_launches: key,
        host_launches: 1,
        origin_cycles_total: key.wrapping_mul(3),
        instructions: key,
        output_ints: vec![key as i64, -(key as i64)],
        output_floats: vec![],
        verified: true,
        from_cache: false,
    }
}

#[test]
fn gc_racing_stores_and_loads_never_serves_a_torn_entry() {
    let dir = std::env::temp_dir().join(format!("dp-sweep-gc-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir = Arc::new(dir);

    const KEYS: u64 = 32;
    let stop = Arc::new(AtomicBool::new(false));
    let loads_ok = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();

    // Two writer/reader threads hammering overlapping key ranges.
    for t in 0..2u64 {
        let dir = Arc::clone(&dir);
        let stop = Arc::clone(&stop);
        let loads_ok = Arc::clone(&loads_ok);
        workers.push(std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for key in (t * KEYS / 2)..(t * KEYS / 2 + KEYS / 2 + 4) {
                    let outcome = cache::store(&dir, key, &summary_for(key));
                    assert_ne!(
                        outcome,
                        StoreOutcome::Unavailable,
                        "a healthy dir must never look full/read-only"
                    );
                    if let Some(loaded) = cache::load(&dir, key) {
                        // A hit must be the exact value some store wrote —
                        // the checksum already rejected anything torn.
                        assert_eq!(loaded.device_launches, key, "wrong entry for {key:016x}");
                        assert_eq!(loaded.output_ints, vec![key as i64, -(key as i64)]);
                        loads_ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
                round += 1;
                let _ = round;
            }
        }));
    }

    // The collector: aggressive budget so evictions genuinely overlap the
    // writers' publishes and touches.
    let gc_dir = Arc::clone(&dir);
    let gc_stop = Arc::clone(&stop);
    let collector = std::thread::spawn(move || {
        let mut passes = 0u64;
        while !gc_stop.load(Ordering::Relaxed) {
            let report = cache::gc(&gc_dir, 4 * 1024).expect("gc survives live traffic");
            passes += 1;
            let _ = report;
        }
        passes
    });

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked");
    }
    let gc_passes = collector.join().expect("collector panicked");
    assert!(gc_passes > 0, "gc never ran");
    assert!(
        loads_ok.load(Ordering::Relaxed) > 0,
        "no load ever hit; the race never exercised the read path"
    );

    // After the dust settles the directory must be fsck-clean: eviction
    // races are allowed to delete entries, never to corrupt them.
    let report = cache::verify(&dir, false).expect("verify scans");
    assert!(
        report.is_clean(),
        "post-race cache has problems: {:?}",
        report
            .findings
            .iter()
            .map(|f| format!("{} {}: {}", f.problem.label(), f.name, f.detail))
            .collect::<Vec<_>>()
    );
    std::fs::remove_dir_all(&*dir).ok();
}
