//! Engine-level guarantees: worker-count determinism and cache behavior.

use dp_core::OptConfig;
use dp_sweep::{
    run_sweep, CellSummary, DatasetSpec, SeriesSpec, SweepOptions, SweepResult, SweepSpec,
    VariantSpec,
};
use dp_workloads::benchmarks::Variant;
use dp_workloads::DatasetId;
use std::path::PathBuf;
use std::time::Instant;

/// A spec with heterogeneous series (graph + Bézier inputs) and enough
/// work per cell that a cache hit is orders of magnitude cheaper.
fn spec() -> SweepSpec {
    let fig9ish = |threshold: i64| {
        vec![
            VariantSpec::new("No CDP", Variant::NoCdp),
            VariantSpec::new("CDP", Variant::Cdp(OptConfig::none())),
            VariantSpec::new(
                "CDP+T",
                Variant::Cdp(OptConfig::none().threshold(threshold)),
            ),
            VariantSpec::new("CDP+T+C+A", Variant::Cdp(OptConfig::all())),
        ]
    };
    SweepSpec {
        series: vec![
            SeriesSpec::new(
                "BFS",
                DatasetSpec::table(DatasetId::Kron, 0.004, 42),
                fig9ish(128),
            ),
            SeriesSpec::new(
                "BT",
                DatasetSpec::table(DatasetId::T0032C16, 0.002, 42),
                fig9ish(32),
            ),
        ],
    }
}

/// Exact (bit-level) canonical form of a merged result.
fn canonical(result: &SweepResult) -> String {
    let cell = |c: &CellSummary| {
        format!(
            "{}|{:016x}|{:016x}|{:016x}|{}|{}|{}|{}|{:?}|{:?}|{}",
            c.label,
            c.total_us.to_bits(),
            c.device_span_us.to_bits(),
            c.warp_avg_total_us.to_bits(),
            c.device_launches,
            c.host_launches,
            c.origin_cycles_total,
            c.instructions,
            c.output_ints,
            c.output_floats
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            c.verified,
        )
    };
    result
        .series
        .iter()
        .map(|s| {
            format!(
                "{}/{}:{}",
                s.benchmark,
                s.dataset_name,
                s.cells.iter().map(cell).collect::<Vec<_>>().join(";")
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dp-sweep-test-{tag}-{}", std::process::id()))
}

#[test]
fn one_worker_and_many_workers_merge_identically() {
    let spec = spec();
    let opts = |jobs| SweepOptions {
        jobs,
        cache: false,
        cache_dir: None,
        quiet: true,
    };
    let sequential = run_sweep(&spec, &opts(1));
    let parallel = run_sweep(&spec, &opts(8));
    assert_eq!(sequential.jobs, 1);
    assert_eq!(parallel.jobs, 8);
    assert_eq!(
        canonical(&sequential),
        canonical(&parallel),
        "merged output must not depend on worker count"
    );
}

#[test]
fn repeated_sweep_is_all_cache_hits_and_at_least_10x_faster() {
    let spec = spec();
    let dir = temp_cache("warm");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        jobs: 2,
        cache: true,
        cache_dir: Some(dir.clone()),
        quiet: true,
    };

    let cold_start = Instant::now();
    let cold = run_sweep(&spec, &opts);
    let cold_wall = cold_start.elapsed();
    assert_eq!(cold.cache.hits, 0);
    assert_eq!(cold.cache.misses, spec.cell_count());

    let warm_start = Instant::now();
    let warm = run_sweep(&spec, &opts);
    let warm_wall = warm_start.elapsed();
    assert_eq!(
        warm.cache.hits,
        spec.cell_count(),
        "second identical run must be 100% cache hits"
    );
    assert_eq!(warm.cache.misses, 0);
    assert!((warm.cache.hit_rate() - 1.0).abs() < 1e-12);
    assert!(
        warm.series
            .iter()
            .all(|s| s.cells.iter().all(|c| c.from_cache)),
        "every warm cell is served from the cache"
    );
    assert_eq!(
        canonical(&cold),
        canonical(&warm),
        "cached results must reproduce cold results bit-exactly"
    );
    assert!(
        cold_wall >= warm_wall * 10,
        "warm run must be at least 10x faster: cold {cold_wall:?} vs warm {warm_wall:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn touching_one_variant_recomputes_only_that_column() {
    let dir = temp_cache("invalidate");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        jobs: 2,
        cache: true,
        cache_dir: Some(dir.clone()),
        quiet: true,
    };
    let mut spec = SweepSpec {
        series: vec![SeriesSpec::new(
            "BFS",
            DatasetSpec::table(DatasetId::Kron, 0.002, 42),
            vec![
                VariantSpec::new("CDP", Variant::Cdp(OptConfig::none())),
                VariantSpec::new("CDP+T", Variant::Cdp(OptConfig::none().threshold(64))),
            ],
        )],
    };
    run_sweep(&spec, &opts);
    // "Touch" one variant: change its threshold parameter.
    spec.series[0].variants[1] =
        VariantSpec::new("CDP+T", Variant::Cdp(OptConfig::none().threshold(128)));
    let second = run_sweep(&spec, &opts);
    assert_eq!(second.cache.hits, 1, "untouched column stays cached");
    assert_eq!(second.cache.misses, 1, "touched column recomputes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_cache_mode_never_touches_the_cache_dir() {
    let dir = temp_cache("nocache");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec {
        series: vec![SeriesSpec::new(
            "BFS",
            DatasetSpec::table(DatasetId::Kron, 0.002, 42),
            vec![VariantSpec::new("CDP", Variant::Cdp(OptConfig::none()))],
        )],
    };
    let result = run_sweep(
        &spec,
        &SweepOptions {
            jobs: 1,
            cache: false,
            cache_dir: Some(dir.clone()),
            quiet: true,
        },
    );
    assert!(!result.cache.enabled);
    assert_eq!(result.cache.hits + result.cache.misses, 0);
    assert!(!dir.exists(), "no cache directory may be created");
}
