//! Content-addressed cache keys — the **single definition** of how a unit
//! of work is hashed, shared by the on-disk sweep result cache
//! ([`crate::cache`]) and the in-memory compiled-program cache of the
//! `dp-serve` daemon. Both subsystems key by the same canonical strings and
//! the same [`CACHE_FORMAT_VERSION`], so their notions of "identical work"
//! can never drift apart.
//!
//! A key hashes, via stable 64-bit FNV-1a:
//!
//! - the cache **format version** ([`CACHE_FORMAT_VERSION`] — bump when the
//!   summary schema, the VM/simulator semantics, or the cost-model meaning
//!   changes),
//! - the **source text** the variant executes (editing a kernel invalidates
//!   exactly its cells),
//! - the **variant configuration** (thresholding/coarsening/aggregation),
//! - for full sweep cells, additionally the **dataset identity**
//!   (Table-I id + scale + seed, or a content digest for caller-provided
//!   inputs), the **timing parameters**, and the **instruction cost model**
//!   (every field value participates, so any recalibration recomputes).
//!
//! The digests are pinned by unit tests below: changing any canonical
//! string or the hash function is a format break and must come with a
//! [`CACHE_FORMAT_VERSION`] bump.

use crate::DatasetSpec;
use dp_core::{AggGranularity, OptConfig, TimingParams};
use dp_vm::bytecode::CostModel;
use dp_workloads::benchmarks::Variant;
use dp_workloads::BenchInput;

/// Bump to invalidate every cached summary and compiled-program cache entry
/// (schema or semantics change).
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// 64-bit FNV-1a over a byte string — stable across builds and platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content digest of a caller-provided input (used when a sweep runs on an
/// in-memory dataset rather than a Table-I id).
pub fn digest_input(input: &BenchInput) -> u64 {
    // Each vector is written as `len[v0,v1,...];` so field boundaries are
    // unambiguous — without the length prefix, moving an element between
    // adjacent vectors would collide.
    fn field(canon: &mut String, values: &[i64]) {
        canon.push_str(&format!("{}[", values.len()));
        for v in values {
            canon.push_str(&format!("{v},"));
        }
        canon.push_str("];");
    }
    let mut canon = String::new();
    match input {
        BenchInput::Graph(g) => {
            canon.push_str("graph;");
            field(&mut canon, &g.offsets);
            field(&mut canon, &g.edges);
            field(&mut canon, &g.weights);
        }
        BenchInput::Sat(f) => {
            canon.push_str(&format!("sat;vars={};", f.num_vars));
            field(&mut canon, &f.clause_offsets);
            field(&mut canon, &f.lits);
            field(&mut canon, &f.signs);
            field(&mut canon, &f.var_offsets);
            field(&mut canon, &f.occ_clauses);
        }
        BenchInput::Bezier(b) => {
            canon.push_str(&format!(
                "bezier;tess={};curv={};",
                b.max_tess,
                b.curvature_scale.to_bits()
            ));
            canon.push_str(&format!("{}[", b.control_points.len()));
            for p in &b.control_points {
                canon.push_str(&format!("{},", p.to_bits()));
            }
            canon.push_str("];");
        }
    }
    fnv1a(canon.as_bytes())
}

/// Canonical string for an aggregation granularity — also the wire format
/// of the serve protocol's `agg` member (one definition, guarded by the
/// pinned-digest tests below).
pub fn canonical_granularity(g: AggGranularity) -> String {
    match g {
        AggGranularity::Warp => "warp".to_string(),
        AggGranularity::Block => "block".to_string(),
        AggGranularity::MultiBlock(n) => format!("multiblock:{n}"),
        AggGranularity::Grid => "grid".to_string(),
    }
}

/// Canonical string for an optimization configuration.
pub fn canonical_config(config: &OptConfig) -> String {
    let agg = match &config.aggregation {
        None => "none".to_string(),
        Some(a) => format!(
            "{}/{}",
            canonical_granularity(a.granularity),
            a.agg_threshold
                .map_or("none".to_string(), |t| t.to_string())
        ),
    };
    format!(
        "t={};c={};a={}",
        config
            .threshold
            .map_or("none".to_string(), |t| t.to_string()),
        config
            .coarsen_factor
            .map_or("none".to_string(), |c| c.to_string()),
        agg
    )
}

/// Canonical string for a variant (No-CDP, or CDP with a configuration).
pub fn canonical_variant(variant: &Variant) -> String {
    match variant {
        Variant::NoCdp => "nocdp".to_string(),
        Variant::Cdp(config) => format!("cdp[{}]", canonical_config(config)),
    }
}

/// Canonical string for the timing parameters (public so callers can
/// compare models for equality — `TimingParams` has no `PartialEq`).
pub fn canonical_timing(t: &TimingParams) -> String {
    format!(
        "sms={};bps={};tps={};ghz={};issue={};hll={};hso={};pipe={};bd={}",
        t.num_sms,
        t.max_blocks_per_sm,
        t.max_threads_per_sm,
        t.clock_ghz,
        t.issue_slots_per_sm,
        t.host_launch_latency_us,
        t.host_sync_overhead_us,
        t.device_launch_pipe_us,
        t.block_dispatch_us
    )
}

/// Canonical string for the instruction cost model (public for the same
/// reason as [`canonical_timing`]).
pub fn canonical_cost(c: &CostModel) -> String {
    format!(
        "alu={};mul={};div={};mem={};br={};call={};launch={};sync={};fence={};atomic={};intr={};lpo={}",
        c.alu,
        c.mul,
        c.div,
        c.mem,
        c.branch,
        c.call,
        c.launch,
        c.sync,
        c.fence,
        c.atomic,
        c.intrinsic,
        c.launch_presence_overhead
    )
}

/// Canonical identity of a dataset spec (used both in cell keys and for
/// engine-side dataset dedup — one definition so they can never diverge).
pub fn canonical_dataset(dataset: &DatasetSpec) -> String {
    match dataset {
        DatasetSpec::Table { id, scale, seed } => {
            format!("table[{};scale={scale};seed={seed}]", id.name())
        }
        DatasetSpec::Provided { digest, .. } => format!("provided[{digest:016x}]"),
    }
}

/// Computes the content-addressed key of one sweep cell.
pub fn cell_key(
    benchmark: &str,
    source: &str,
    variant: &Variant,
    dataset: &DatasetSpec,
    timing: &TimingParams,
    cost: &CostModel,
) -> u64 {
    let canon = format!(
        "v{CACHE_FORMAT_VERSION}|bench={benchmark}|src={:016x}|variant={}|dataset={}|timing={}|cost={}",
        fnv1a(source.as_bytes()),
        canonical_variant(variant),
        canonical_dataset(dataset),
        canonical_timing(timing),
        canonical_cost(cost),
    );
    fnv1a(canon.as_bytes())
}

/// Computes the content-addressed key of one **compilation**: source text +
/// optimization configuration + [`CACHE_FORMAT_VERSION`]. This is the key
/// of the `dp-serve` in-memory compiled-program cache — a strict prefix of
/// the axes [`cell_key`] hashes, so a compilation shared by many cells is
/// keyed identically everywhere.
pub fn compiled_key(source: &str, config: &OptConfig) -> u64 {
    let canon = format!(
        "v{CACHE_FORMAT_VERSION}|src={:016x}|config={}",
        fnv1a(source.as_bytes()),
        canonical_config(config),
    );
    fnv1a(canon.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::AggConfig;
    use dp_workloads::datasets::DatasetId;

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_strings_are_pinned() {
        // These strings are the cache key *format*: any change here must
        // come with a CACHE_FORMAT_VERSION bump.
        assert_eq!(canonical_config(&OptConfig::none()), "t=none;c=none;a=none");
        assert_eq!(
            canonical_config(
                &OptConfig::none()
                    .threshold(128)
                    .coarsen_factor(8)
                    .aggregation(AggConfig {
                        granularity: AggGranularity::MultiBlock(8),
                        agg_threshold: Some(4),
                    })
            ),
            "t=128;c=8;a=multiblock:8/4"
        );
        assert_eq!(canonical_variant(&Variant::NoCdp), "nocdp");
        assert_eq!(
            canonical_variant(&Variant::Cdp(OptConfig::none())),
            "cdp[t=none;c=none;a=none]"
        );
        assert_eq!(
            canonical_dataset(&DatasetSpec::Table {
                id: DatasetId::Kron,
                scale: 0.01,
                seed: 42,
            }),
            "table[KRON;scale=0.01;seed=42]"
        );
    }

    #[test]
    fn compiled_key_digests_are_pinned() {
        // Serve and sweep must agree on these forever (or bump the format
        // version): the digests are data, not an implementation detail.
        assert_eq!(
            compiled_key("src", &OptConfig::none()),
            0xe2f4_0892_0104_11b0
        );
        assert_eq!(
            compiled_key("src", &OptConfig::none().threshold(8)),
            0x5329_ab93_4ebe_6992
        );
    }

    fn sample_dataset() -> DatasetSpec {
        DatasetSpec::Table {
            id: DatasetId::Kron,
            scale: 0.01,
            seed: 42,
        }
    }

    #[test]
    fn cell_key_digest_is_pinned() {
        assert_eq!(
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none()),
                &sample_dataset(),
                &TimingParams::default(),
                &CostModel::default(),
            ),
            0xa79c_ea14_91ee_b854
        );
    }

    #[test]
    fn keys_separate_every_axis() {
        let base = cell_key(
            "BFS",
            "src",
            &Variant::Cdp(OptConfig::none()),
            &sample_dataset(),
            &TimingParams::default(),
            &CostModel::default(),
        );
        let variants: Vec<u64> = vec![
            cell_key(
                "BFS",
                "src2",
                &Variant::Cdp(OptConfig::none()),
                &sample_dataset(),
                &TimingParams::default(),
                &CostModel::default(),
            ),
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none().threshold(8)),
                &sample_dataset(),
                &TimingParams::default(),
                &CostModel::default(),
            ),
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none()),
                &DatasetSpec::Table {
                    id: DatasetId::Kron,
                    scale: 0.01,
                    seed: 43,
                },
                &TimingParams::default(),
                &CostModel::default(),
            ),
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none()),
                &sample_dataset(),
                &TimingParams {
                    device_launch_pipe_us: 0.0,
                    ..TimingParams::default()
                },
                &CostModel::default(),
            ),
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none()),
                &sample_dataset(),
                &TimingParams::default(),
                &CostModel {
                    launch_presence_overhead: 0,
                    ..CostModel::default()
                },
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "axis {i} must invalidate the key");
        }
    }

    #[test]
    fn compiled_key_separates_source_and_config() {
        let base = compiled_key("src", &OptConfig::none());
        assert_ne!(base, compiled_key("src2", &OptConfig::none()));
        assert_ne!(base, compiled_key("src", &OptConfig::none().threshold(8)));
        assert_ne!(
            base,
            compiled_key(
                "src",
                &OptConfig::none().aggregation(AggConfig::new(AggGranularity::Block))
            )
        );
    }
}
