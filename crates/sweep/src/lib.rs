//! # dp-sweep
//!
//! A parallel, content-addressed experiment-orchestration engine. Every
//! evaluation artifact of this repository (the `fig9`…`table1`/`ablation`
//! binaries, the autotuner, the `dpopt sweep` subcommand) is a *sweep*: an
//! embarrassingly parallel grid of independent simulation cells
//! (benchmark × dataset × optimization variant × timing/cost model). This
//! crate runs that grid once, well:
//!
//! - **Declarative specs.** A [`SweepSpec`] is a list of [`SeriesSpec`]s;
//!   each series is one benchmark on one dataset across an ordered variant
//!   list. Expansion to cells is deterministic.
//! - **Parallel execution.** Cells run on the shared persistent worker
//!   pool ([`dp_pool::Pool::shared`], sized once from the `DPOPT_JOBS`
//!   budget — no per-generation thread spawns). Every worker owns its
//!   own `Executor`/VM state — nothing mutable is shared — and results are
//!   **merged in spec order**, so output is byte-identical to sequential
//!   execution regardless of worker count.
//! - **Content-addressed caching.** Each cell is keyed by a stable hash of
//!   everything that determines its result (source text, variant config,
//!   dataset spec + scale + seed, timing params, cost model, cache format
//!   version) and its [`CellSummary`] is persisted as JSON under
//!   `.dpopt-cache/`. Re-running a sweep after touching one variant
//!   recomputes only that column; a repeated identical sweep is 100% cache
//!   hits.
//!
//! ```no_run
//! use dp_sweep::{DatasetSpec, SeriesSpec, SweepOptions, SweepSpec, VariantSpec};
//! use dp_core::OptConfig;
//! use dp_workloads::benchmarks::Variant;
//! use dp_workloads::DatasetId;
//!
//! let spec = SweepSpec {
//!     series: vec![SeriesSpec::new(
//!         "BFS",
//!         DatasetSpec::table(DatasetId::Kron, 0.01, 42),
//!         vec![
//!             VariantSpec::new("CDP", Variant::Cdp(OptConfig::none())),
//!             VariantSpec::new("CDP+T+C+A", Variant::Cdp(OptConfig::all())),
//!         ],
//!     )],
//! };
//! let result = dp_sweep::run_sweep(&spec, &SweepOptions::default());
//! let cells = &result.series[0].cells;
//! println!("speedup: {:.2}x", cells[0].total_us / cells[1].total_us);
//! ```

pub mod cache;
pub mod json;
pub mod key;
pub mod spec;

pub use cache::CacheStats;
pub use key::{digest_input, CACHE_FORMAT_VERSION};
pub use spec::spec_from_json;

use dp_core::{Compiler, Error, TimingParams};
use dp_obs::metrics::{Counter, Histogram};
use dp_vm::bytecode::CostModel;
use dp_workloads::benchmarks::{all_benchmarks, Benchmark, Variant};
use dp_workloads::{datasets::DatasetId, describe, BenchInput, BenchOutput};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Wall time of one cold cell: compile-cache fetch + full VM execution +
/// summarization ([`execute_cell`] — shared with the serve daemon's
/// `sweep-cell` op, so both record here).
static CELL_COLD_US: Histogram = Histogram::new("sweep.cell_cold_us");
/// Wall time of one warm cell: a result-cache hit's load + parse.
static CELL_WARM_US: Histogram = Histogram::new("sweep.cell_warm_us");
static CACHE_HITS: Counter = Counter::new("sweep.cache.hits");
static CACHE_MISSES: Counter = Counter::new("sweep.cache.misses");

// ----------------------------------------------------------------------
// Spec types
// ----------------------------------------------------------------------

/// The dataset a series runs on.
#[derive(Debug, Clone)]
pub enum DatasetSpec {
    /// A Table-I dataset generated at a scale/seed (cache-keyed by name).
    Table {
        /// Which registry dataset.
        id: DatasetId,
        /// Fraction of the paper's size, in `(0, 1]`.
        scale: f64,
        /// Generator seed.
        seed: u64,
    },
    /// A caller-provided in-memory input (cache-keyed by content digest).
    Provided {
        /// The input itself.
        input: Arc<BenchInput>,
        /// Stable content digest ([`digest_input`]).
        digest: u64,
        /// Display name.
        name: String,
    },
}

impl DatasetSpec {
    /// A Table-I dataset at the given scale and seed.
    pub fn table(id: DatasetId, scale: f64, seed: u64) -> Self {
        DatasetSpec::Table { id, scale, seed }
    }

    /// Wraps an in-memory input, digesting its content for the cache key.
    pub fn provided(input: Arc<BenchInput>, name: impl Into<String>) -> Self {
        let digest = digest_input(&input);
        DatasetSpec::Provided {
            input,
            digest,
            name: name.into(),
        }
    }

    /// Display name ("KRON", or the caller-provided name).
    pub fn name(&self) -> String {
        match self {
            DatasetSpec::Table { id, .. } => id.name().to_string(),
            DatasetSpec::Provided { name, .. } => name.clone(),
        }
    }
}

/// One variant (column) of a series.
#[derive(Debug, Clone)]
pub struct VariantSpec {
    /// Display label (paper legend style).
    pub label: String,
    /// What to run.
    pub variant: Variant,
}

impl VariantSpec {
    /// A labelled variant.
    pub fn new(label: impl Into<String>, variant: Variant) -> Self {
        VariantSpec {
            label: label.into(),
            variant,
        }
    }
}

/// One benchmark × dataset across an ordered variant list.
///
/// Cell 0 of a non-empty series is the *verification reference*: every
/// other cell's functional output is compared against it (mirroring the
/// sequential `run_series` contract). A series with an empty variant list
/// is legal and contributes only its dataset description (used by
/// `table1`).
#[derive(Debug, Clone)]
pub struct SeriesSpec {
    /// Benchmark name as in the paper ("BFS", "BT", …).
    pub benchmark: String,
    /// The dataset to instantiate.
    pub dataset: DatasetSpec,
    /// Ordered variants.
    pub variants: Vec<VariantSpec>,
    /// Hardware timing model for `simulate`.
    pub timing: TimingParams,
    /// VM instruction cost model.
    pub cost: CostModel,
}

impl SeriesSpec {
    /// A series with default timing and cost models.
    pub fn new(
        benchmark: impl Into<String>,
        dataset: DatasetSpec,
        variants: Vec<VariantSpec>,
    ) -> Self {
        SeriesSpec {
            benchmark: benchmark.into(),
            dataset,
            variants,
            timing: TimingParams::default(),
            cost: CostModel::default(),
        }
    }

    /// Overrides the timing model.
    pub fn with_timing(mut self, timing: TimingParams) -> Self {
        self.timing = timing;
        self
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

/// A whole sweep: an ordered list of series.
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    /// The series, in output order.
    pub series: Vec<SeriesSpec>,
}

impl SweepSpec {
    /// Total number of cells the spec expands to.
    pub fn cell_count(&self) -> usize {
        self.series.iter().map(|s| s.variants.len()).sum()
    }
}

// ----------------------------------------------------------------------
// Results
// ----------------------------------------------------------------------

/// Everything the formatters need from one cell, in a form that survives a
/// JSON round-trip byte-exactly (floats are written with shortest-exact
/// formatting).
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Variant label (from the spec, not the cache).
    pub label: String,
    /// Simulated end-to-end time (µs).
    pub total_us: f64,
    /// Device busy span (µs).
    pub device_span_us: f64,
    /// Breakdown: parent work (µs).
    pub parent_us: f64,
    /// Breakdown: child work (µs).
    pub child_us: f64,
    /// Breakdown: launch path (µs).
    pub launch_us: f64,
    /// Breakdown: aggregation logic (µs).
    pub aggregation_us: f64,
    /// Breakdown: disaggregation logic (µs).
    pub disaggregation_us: f64,
    /// End-to-end time with divergence (warp-max) accounting ablated to the
    /// warp average — used by the ablation study.
    pub warp_avg_total_us: f64,
    /// Device-side launches performed.
    pub device_launches: u64,
    /// Host-side launches performed.
    pub host_launches: u64,
    /// Total per-origin device cycles (pure device work).
    pub origin_cycles_total: u64,
    /// Dynamic instruction count (original units).
    pub instructions: u64,
    /// Functional output, integer part.
    pub output_ints: Vec<i64>,
    /// Functional output, float part.
    pub output_floats: Vec<f64>,
    /// Whether the output matched the series reference (cell 0).
    pub verified: bool,
    /// Whether this summary came from the cache.
    pub from_cache: bool,
}

impl CellSummary {
    /// The functional output as a comparable [`BenchOutput`].
    pub fn output(&self) -> BenchOutput {
        BenchOutput {
            ints: self.output_ints.clone(),
            floats: self.output_floats.clone(),
        }
    }

    /// Breakdown sum, matching `dp_sim::Breakdown::total()`.
    pub fn breakdown_total(&self) -> f64 {
        self.parent_us
            + self.child_us
            + self.launch_us
            + self.aggregation_us
            + self.disaggregation_us
    }
}

/// Merged results of one series, cells in spec order.
#[derive(Debug, Clone)]
pub struct SeriesResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Dataset display name.
    pub dataset_name: String,
    /// `describe(..)` of the instantiated dataset. `None` when every cell
    /// was served from the cache (the dataset was never materialized).
    pub dataset_description: Option<String>,
    /// Cell summaries, one per variant, in spec order.
    pub cells: Vec<CellSummary>,
}

/// The merged sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Per-series results, in spec order.
    pub series: Vec<SeriesResult>,
    /// Cache behavior counters.
    pub cache: CacheStats,
    /// Worker count actually used.
    pub jobs: usize,
}

// ----------------------------------------------------------------------
// Options
// ----------------------------------------------------------------------

/// Execution options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `0` means `DPOPT_JOBS` or available parallelism.
    pub jobs: usize,
    /// Consult/populate the result cache.
    pub cache: bool,
    /// Cache directory; `None` means `DPOPT_CACHE_DIR` or `.dpopt-cache`.
    pub cache_dir: Option<PathBuf>,
    /// Suppress per-cell progress lines on stderr.
    pub quiet: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 0,
            cache: std::env::var_os("DPOPT_NO_CACHE").is_none(),
            cache_dir: None,
            quiet: false,
        }
    }
}

/// Parses an environment variable, warning on stderr (once per call) when
/// the value is present but unparsable instead of silently falling back.
pub fn env_parsed<T>(name: &str, default: T) -> T
where
    T: std::str::FromStr + std::fmt::Display,
{
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                dp_obs::diag!(
                    "warning: ignoring unparsable {name}=`{raw}`; falling back to {default}"
                );
                default
            }
        },
    }
}

/// Resolves a requested worker count: explicit > `--jobs`-resolved /
/// `DPOPT_JOBS` > available parallelism (min 1). The resolution is shared
/// with the VM's parallel block executor
/// ([`dp_pool::jobs::configured_jobs`]) so every layer agrees on the
/// convention. The result is this sweep's concurrency *cap*; actual
/// helper submissions are additionally gated on idle shared-pool workers.
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    dp_pool::jobs::configured_jobs()
}

// ----------------------------------------------------------------------
// Cell partitioning
// ----------------------------------------------------------------------

/// One cell of an expanded sweep grid: its position in the spec plus the
/// content-addressed cache key that names its result. This is the unit a
/// distributed scheduler partitions — the key is stable across processes
/// and machines, so routing on it keeps warm caches sticky.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRef {
    /// Index into [`SweepSpec::series`].
    pub series_idx: usize,
    /// Index into that series' [`SeriesSpec::variants`].
    pub cell_idx: usize,
    /// The cell's [`cache::cell_key`] — identical to what [`run_sweep`]
    /// probes and stores under.
    pub key: u64,
}

/// Expands a spec to its deterministic cell grid, in spec order — the
/// exact enumeration [`run_sweep`] performs, exposed so external
/// schedulers (the `dp-shard` fleet scheduler) partition the same cells
/// under the same keys. Errs (instead of panicking like `run_sweep`) on
/// an unknown benchmark name, since a scheduler wants a structured error.
pub fn enumerate_cells(spec: &SweepSpec) -> Result<Vec<CellRef>, String> {
    let registry: HashMap<String, Box<dyn Benchmark>> = all_benchmarks()
        .into_iter()
        .map(|b| (b.name().to_string(), b))
        .collect();
    let mut cells = Vec::with_capacity(spec.cell_count());
    for (series_idx, series) in spec.series.iter().enumerate() {
        let bench = registry
            .get(&series.benchmark)
            .ok_or_else(|| format!("unknown benchmark `{}`", series.benchmark))?;
        for (cell_idx, vspec) in series.variants.iter().enumerate() {
            let source = match vspec.variant {
                Variant::NoCdp => bench.no_cdp_source(),
                Variant::Cdp(_) => bench.cdp_source(),
            };
            let key = cache::cell_key(
                &series.benchmark,
                source,
                &vspec.variant,
                &series.dataset,
                &series.timing,
                &series.cost,
            );
            cells.push(CellRef {
                series_idx,
                cell_idx,
                key,
            });
        }
    }
    Ok(cells)
}

// ----------------------------------------------------------------------
// Engine
// ----------------------------------------------------------------------

/// A cell still to execute.
struct PendingCell {
    series_idx: usize,
    cell_idx: usize,
    key: u64,
}

type CompileCache = Mutex<HashMap<String, dp_core::SharedCompiled>>;

/// Runs a sweep: cache probe, parallel execution of the misses, spec-order
/// merge with cross-variant verification.
///
/// # Panics
///
/// Panics when a benchmark name is unknown or a cell's compilation/run
/// fails — exactly like the sequential `run_series` path it replaces.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> SweepResult {
    let registry: HashMap<String, Box<dyn Benchmark>> = all_benchmarks()
        .into_iter()
        .map(|b| (b.name().to_string(), b))
        .collect();
    let benches: Vec<&dyn Benchmark> = spec
        .series
        .iter()
        .map(|s| {
            registry
                .get(&s.benchmark)
                .unwrap_or_else(|| panic!("unknown benchmark `{}`", s.benchmark))
                .as_ref()
        })
        .collect();

    let cache_dir = cache::resolve_cache_dir(opts.cache_dir.as_deref());
    let mut stats = CacheStats {
        enabled: opts.cache,
        ..CacheStats::default()
    };

    // Keyed cache probe; anything not served becomes a pending cell.
    let mut summaries: Vec<Vec<Option<CellSummary>>> = spec
        .series
        .iter()
        .map(|s| vec![None; s.variants.len()])
        .collect();
    let mut pending: Vec<PendingCell> = Vec::new();
    for (series_idx, series) in spec.series.iter().enumerate() {
        for (cell_idx, vspec) in series.variants.iter().enumerate() {
            let source = match vspec.variant {
                Variant::NoCdp => benches[series_idx].no_cdp_source(),
                Variant::Cdp(_) => benches[series_idx].cdp_source(),
            };
            let key = cache::cell_key(
                &series.benchmark,
                source,
                &vspec.variant,
                &series.dataset,
                &series.timing,
                &series.cost,
            );
            if opts.cache {
                let probe = dp_obs::metrics::now();
                if let Some(mut cached) = cache::load(&cache_dir, key) {
                    CELL_WARM_US.record_since(probe);
                    CACHE_HITS.incr();
                    cached.label = vspec.label.clone();
                    summaries[series_idx][cell_idx] = Some(cached);
                    stats.hits += 1;
                    continue;
                }
                CACHE_MISSES.incr();
                stats.misses += 1;
            }
            pending.push(PendingCell {
                series_idx,
                cell_idx,
                key,
            });
        }
    }

    let jobs = effective_jobs(opts.jobs);
    // Generations run on the shared persistent worker pool: helper loops
    // are pool submissions (gated on actually-idle workers), the calling
    // thread always runs one loop itself, and cells that land on pool
    // workers keep their grids sequential (`dp_pool::is_worker_thread`),
    // so sweep × block-speculation nesting shares one `DPOPT_JOBS` budget
    // without reserving or spawning anything per generation.
    let pool = dp_pool::Pool::shared();

    // Materialize each distinct dataset once: those needed by a pending
    // cell, plus empty-variant series (their description *is* the result).
    let mut needed: Vec<usize> = Vec::new();
    let mut seen_datasets: HashMap<String, usize> = HashMap::new();
    let mut dataset_of_series: Vec<Option<usize>> = vec![None; spec.series.len()];
    let wants_dataset: Vec<bool> = {
        let mut wants: Vec<bool> = spec.series.iter().map(|s| s.variants.is_empty()).collect();
        for cell in &pending {
            wants[cell.series_idx] = true;
        }
        wants
    };
    for (series_idx, series) in spec.series.iter().enumerate() {
        if !wants_dataset[series_idx] {
            continue;
        }
        let canon = cache::canonical_dataset(&series.dataset);
        let slot = *seen_datasets.entry(canon).or_insert_with(|| {
            needed.push(series_idx);
            needed.len() - 1
        });
        dataset_of_series[series_idx] = Some(slot);
    }
    let inputs: Vec<Arc<BenchInput>> = {
        let slots: Vec<Mutex<Option<Arc<BenchInput>>>> =
            needed.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let materialize = || loop {
            // Dataset instantiation is bulk work; let a waiting serve
            // request borrow this worker between datasets.
            dp_pool::checkpoint();
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&series_idx) = needed.get(i) else {
                return;
            };
            let input = match &spec.series[series_idx].dataset {
                DatasetSpec::Table { id, scale, seed } => Arc::new(id.instantiate(*scale, *seed)),
                DatasetSpec::Provided { input, .. } => Arc::clone(input),
            };
            *slots[i].lock().unwrap() = Some(input);
        };
        pool.scope(|scope| {
            let helpers = pool
                .available_workers()
                .min(jobs.saturating_sub(1))
                .min(needed.len().saturating_sub(1));
            for _ in 0..helpers {
                scope.spawn_as(dp_pool::JobClass::Bulk, materialize);
            }
            materialize();
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("dataset instantiated"))
            .collect()
    };

    // Execute the pending cells across the pool. Workers share a compile
    // cache (compiled programs are immutable and Send) but each owns its
    // executor and VM state.
    let compile_cache: CompileCache = Mutex::new(HashMap::new());
    // Graceful degradation: the first disk-full / read-only store demotes
    // the whole sweep to cache-off with one warning. Results still flow —
    // the cache is an accelerator, never a correctness dependency — and
    // stdout stays byte-identical because cache state is never printed by
    // the deterministic outputs.
    let cache_broken = AtomicBool::new(false);
    if !pending.is_empty() {
        let results: Vec<Mutex<Option<CellSummary>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let run_generation = || loop {
            // Cell boundaries are the natural yield points of a sweep:
            // a long generation hands its worker to one queued
            // interactive job (a served request) before the next cell.
            dp_pool::checkpoint();
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(cell) = pending.get(i) else {
                return;
            };
            let series = &spec.series[cell.series_idx];
            let vspec = &series.variants[cell.cell_idx];
            let input = &inputs[dataset_of_series[cell.series_idx].expect("dataset resolved")];
            if !opts.quiet {
                dp_obs::diag!(
                    "[dp-sweep] run {}/{} [{}]",
                    series.benchmark,
                    series.dataset.name(),
                    vspec.label
                );
            }
            let summary = run_cell(
                benches[cell.series_idx],
                vspec,
                input,
                &series.timing,
                &series.cost,
                &compile_cache,
            );
            if opts.cache
                && !cache_broken.load(Ordering::Relaxed)
                && cache::store(&cache_dir, cell.key, &summary) == cache::StoreOutcome::Unavailable
                && !cache_broken.swap(true, Ordering::Relaxed)
            {
                dp_obs::diag!(
                    "[dp-sweep] cache dir {} unavailable (disk full or read-only); \
                     continuing without the cache",
                    cache_dir.display()
                );
            }
            *results[i].lock().unwrap() = Some(summary);
        };
        pool.scope(|scope| {
            let helpers = pool
                .available_workers()
                .min(jobs.saturating_sub(1))
                .min(pending.len().saturating_sub(1));
            for _ in 0..helpers {
                scope.spawn_as(dp_pool::JobClass::Bulk, run_generation);
            }
            run_generation();
        });
        for (cell, result) in pending.iter().zip(results) {
            summaries[cell.series_idx][cell.cell_idx] =
                Some(result.into_inner().unwrap().expect("cell executed"));
        }
    }

    // Merge in spec order; verify every cell against its series reference.
    let series_results: Vec<SeriesResult> = spec
        .series
        .iter()
        .enumerate()
        .map(|(series_idx, series)| {
            let mut cells: Vec<CellSummary> = summaries[series_idx]
                .iter_mut()
                .map(|slot| slot.take().expect("cell resolved"))
                .collect();
            if let Some(reference) = cells.first().map(|c| c.output()) {
                for cell in &mut cells {
                    cell.verified = cell.output().approx_eq(&reference, 1e-6);
                }
            }
            SeriesResult {
                benchmark: series.benchmark.clone(),
                dataset_name: series.dataset.name(),
                dataset_description: dataset_of_series[series_idx]
                    .map(|slot| describe(&inputs[slot])),
                cells,
            }
        })
        .collect();

    SweepResult {
        series: series_results,
        cache: stats,
        jobs,
    }
}

/// Compiles (or fetches) the variant's program and runs it on one input,
/// producing the persistent summary.
fn run_cell(
    bench: &dyn Benchmark,
    vspec: &VariantSpec,
    input: &BenchInput,
    timing: &TimingParams,
    cost: &CostModel,
    compile_cache: &CompileCache,
) -> CellSummary {
    let (source, config) = match vspec.variant {
        Variant::NoCdp => (bench.no_cdp_source(), dp_core::OptConfig::none()),
        Variant::Cdp(config) => (bench.cdp_source(), config),
    };
    let compile_key = format!(
        "{}|{:?}|{}|{:?}",
        bench.name(),
        vspec.variant,
        cache::canonical_config(&config),
        cost
    );
    let compiled: dp_core::SharedCompiled = {
        let mut cache = compile_cache.lock().unwrap();
        match cache.get(&compile_key) {
            Some(c) => Arc::clone(c),
            None => {
                let shared = Compiler::new()
                    .config(config)
                    .cost_model(cost.clone())
                    .compile(source)
                    .unwrap_or_else(|e: Error| panic!("{} [{}]: {e}", bench.name(), vspec.label))
                    .into_shared();
                cache.insert(compile_key, Arc::clone(&shared));
                shared
            }
        }
    };
    execute_cell(bench, &vspec.label, &compiled, input, timing)
        .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name(), vspec.label))
}

/// Runs one benchmark cell against an already-compiled program and
/// summarizes it — the execution half of the engine's `run_cell`, public so
/// external callers with their own compiled-program cache (the `dp-serve`
/// daemon) produce summaries through the exact same path as the sweep
/// engine.
pub fn execute_cell(
    bench: &dyn Benchmark,
    label: &str,
    compiled: &dp_core::SharedCompiled,
    input: &BenchInput,
    timing: &TimingParams,
) -> Result<CellSummary, Error> {
    let _span = if dp_obs::trace::active() {
        dp_obs::trace::span_with(
            "sweep.cell",
            &[("benchmark", bench.name()), ("label", label)],
        )
    } else {
        dp_obs::trace::span("sweep.cell")
    };
    let started = dp_obs::metrics::now();
    let mut exec = compiled.executor();
    let output = bench.run(&mut exec, input)?;
    let report = exec.finish();
    let summary = summarize_run(label, output, &report, timing);
    CELL_COLD_US.record_since(started);
    Ok(summary)
}

/// Builds a [`CellSummary`] from one completed run — the single
/// summarization path for both the engine and any sequential reference
/// (the golden-output tests run `run_variant` directly and summarize with
/// this to prove engine output is byte-identical to sequential output).
pub fn summarize_run(
    label: &str,
    output: BenchOutput,
    report: &dp_core::RunReport,
    timing: &TimingParams,
) -> CellSummary {
    let sim = report.simulate(timing);
    CellSummary {
        label: label.to_string(),
        total_us: sim.total_us,
        device_span_us: sim.device_span_us,
        parent_us: sim.breakdown.parent_us,
        child_us: sim.breakdown.child_us,
        launch_us: sim.breakdown.launch_us,
        aggregation_us: sim.breakdown.aggregation_us,
        disaggregation_us: sim.breakdown.disaggregation_us,
        warp_avg_total_us: warp_average_total_us(report, timing),
        device_launches: report.stats.device_launches,
        host_launches: sim.host_launches as u64,
        origin_cycles_total: report.trace.origin_cycles().total(),
        instructions: report.stats.instructions,
        output_ints: output.ints,
        output_floats: output.floats,
        verified: true,
        from_cache: false,
    }
}

/// Re-simulates a run with each block's warp-max cycles replaced by the
/// warp average — the divergence-model ablation of the `ablation` binary.
fn warp_average_total_us(report: &dp_core::RunReport, timing: &TimingParams) -> f64 {
    let mut trace = report.trace.clone();
    for grid in &mut trace.grids {
        for block in &mut grid.blocks {
            let warps = block.warp_cycles.len().max(1) as u64;
            let avg_per_warp = block.origin_cycles.total() / warps;
            for w in &mut block.warp_cycles {
                *w = avg_per_warp;
            }
        }
    }
    dp_sim::simulate(&trace, &report.host_events, timing).total_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::OptConfig;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            series: vec![SeriesSpec::new(
                "BFS",
                DatasetSpec::table(DatasetId::Kron, 0.002, 42),
                vec![
                    VariantSpec::new("No CDP", Variant::NoCdp),
                    VariantSpec::new("CDP", Variant::Cdp(OptConfig::none())),
                    VariantSpec::new("CDP+T+C+A", Variant::Cdp(OptConfig::all())),
                ],
            )],
        }
    }

    fn no_cache_opts(jobs: usize) -> SweepOptions {
        SweepOptions {
            jobs,
            cache: false,
            cache_dir: None,
            quiet: true,
        }
    }

    #[test]
    fn runs_and_verifies_a_tiny_sweep() {
        let result = run_sweep(&tiny_spec(), &no_cache_opts(2));
        assert_eq!(result.series.len(), 1);
        let cells = &result.series[0].cells;
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.verified), "variants must agree");
        assert!(cells.iter().all(|c| c.total_us > 0.0));
        assert!(cells[1].total_us > cells[2].total_us, "CDP+T+C+A beats CDP");
        assert!(result.series[0].dataset_description.is_some());
        assert!(!result.cache.enabled);
    }

    #[test]
    fn empty_variant_series_reports_dataset_description() {
        let spec = SweepSpec {
            series: vec![SeriesSpec::new(
                "BFS",
                DatasetSpec::table(DatasetId::RoadNy, 0.002, 7),
                vec![],
            )],
        };
        let result = run_sweep(&spec, &no_cache_opts(1));
        assert!(result.series[0].cells.is_empty());
        let desc = result.series[0].dataset_description.as_ref().unwrap();
        assert!(desc.contains("vertices"), "{desc}");
    }

    #[test]
    fn provided_inputs_run_and_digest() {
        use dp_workloads::datasets::graphs::rmat;
        let input = Arc::new(BenchInput::Graph(rmat(6, 4, 5)));
        let spec = SweepSpec {
            series: vec![SeriesSpec::new(
                "BFS",
                DatasetSpec::provided(Arc::clone(&input), "inline"),
                vec![
                    VariantSpec::new("CDP", Variant::Cdp(OptConfig::none())),
                    VariantSpec::new("CDP+T", Variant::Cdp(OptConfig::none().threshold(32))),
                ],
            )],
        };
        let result = run_sweep(&spec, &no_cache_opts(2));
        assert!(result.series[0].cells.iter().all(|c| c.verified));
        let DatasetSpec::Provided { digest, .. } = DatasetSpec::provided(input, "inline") else {
            unreachable!()
        };
        assert_ne!(digest, 0);
    }

    #[test]
    fn enumerate_cells_expands_in_spec_order_with_distinct_keys() {
        let spec = tiny_spec();
        let cells = enumerate_cells(&spec).unwrap();
        assert_eq!(cells.len(), spec.cell_count());
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.series_idx, 0);
            assert_eq!(cell.cell_idx, i, "cells come out in spec order");
        }
        let mut keys: Vec<u64> = cells.iter().map(|c| c.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "distinct variants, distinct keys");
        // The enumeration and a real run agree on the keys: a warm run
        // after `run_sweep` hits on every enumerated key.
        let dir = std::env::temp_dir().join(format!("dp-sweep-enum-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            jobs: 1,
            cache: true,
            cache_dir: Some(dir.clone()),
            quiet: true,
        };
        run_sweep(&spec, &opts);
        for cell in &cells {
            assert!(
                cache::load(&dir, cell.key).is_some(),
                "run_sweep stored under the enumerated key {:016x}",
                cell.key
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enumerate_cells_rejects_unknown_benchmarks() {
        let spec = SweepSpec {
            series: vec![SeriesSpec::new(
                "NOPE",
                DatasetSpec::table(DatasetId::Kron, 0.002, 1),
                vec![VariantSpec::new("CDP", Variant::Cdp(OptConfig::none()))],
            )],
        };
        let err = enumerate_cells(&spec).unwrap_err();
        assert!(err.contains("unknown benchmark `NOPE`"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let spec = SweepSpec {
            series: vec![SeriesSpec::new(
                "NOPE",
                DatasetSpec::table(DatasetId::Kron, 0.002, 1),
                vec![],
            )],
        };
        run_sweep(&spec, &no_cache_opts(1));
    }
}
