//! Declarative sweep-spec files for the `dpopt sweep` CLI subcommand.
//!
//! ```json
//! {
//!   "scale": 0.01,
//!   "seed": 42,
//!   "benchmarks": ["BFS", "SSSP"],
//!   "datasets": ["KRON"],
//!   "variants": [
//!     { "label": "No CDP", "no_cdp": true },
//!     { "label": "CDP" },
//!     { "label": "CDP+T+C+A", "threshold": 128, "coarsen": 16, "agg": "multiblock:8" }
//!   ]
//! }
//! ```
//!
//! - `benchmarks` — required; paper names (`BFS`, `BT`, `MSTF`, `MSTV`,
//!   `SP`, `SSSP`, `TC`).
//! - `datasets` — optional; defaults to each benchmark's Table-I datasets.
//! - `variants` — required; each entry is either `"no_cdp": true` or a CDP
//!   configuration built from optional `threshold` (int), `coarsen` (int),
//!   `agg` (`warp`|`block`|`multiblock:<K>`|`grid`), and `agg_threshold`
//!   (int). `label` is optional (defaults to the paper-style config label).
//! - `scale`/`seed` — optional (defaults 0.05 / 42).

use crate::json::{self, Json};
use crate::{DatasetSpec, SeriesSpec, SweepSpec, VariantSpec};
use dp_core::{AggConfig, AggGranularity, OptConfig};
use dp_workloads::benchmarks::Variant;
use dp_workloads::{datasets_for, DatasetId};

/// All Table-I dataset ids, name → id (also used by the `dp-serve`
/// protocol's `sweep-cell` requests).
pub fn dataset_by_name(name: &str) -> Option<DatasetId> {
    [
        DatasetId::Kron,
        DatasetId::Cnr,
        DatasetId::RoadNy,
        DatasetId::Rand3,
        DatasetId::Sat5,
        DatasetId::T0032C16,
        DatasetId::T2048C64,
    ]
    .into_iter()
    .find(|id| id.name() == name)
}

const KNOWN_BENCHMARKS: [&str; 7] = ["BFS", "BT", "MSTF", "MSTV", "SP", "SSSP", "TC"];

/// Parses an aggregation granularity spec (`warp`, `block`,
/// `multiblock:<K>`, `grid`).
pub fn parse_granularity(spec: &str) -> Option<AggGranularity> {
    match spec {
        "warp" => Some(AggGranularity::Warp),
        "block" => Some(AggGranularity::Block),
        "grid" => Some(AggGranularity::Grid),
        other => {
            let rest = other.strip_prefix("multiblock:")?;
            rest.parse().ok().map(AggGranularity::MultiBlock)
        }
    }
}

/// Parses the optimization-configuration members of a JSON object
/// (`threshold`, `coarsen`, `agg`, `agg_threshold`) — the shape used by
/// sweep-spec variants and by `dp-serve` `compile`/`transform` requests.
pub fn config_from_json(v: &Json) -> Result<OptConfig, String> {
    let mut config = OptConfig::none();
    if let Some(t) = v.get("threshold") {
        config = config.threshold(t.as_i64().ok_or("`threshold` must be an integer")?);
    }
    if let Some(c) = v.get("coarsen") {
        config = config.coarsen_factor(c.as_i64().ok_or("`coarsen` must be an integer")?);
    }
    if let Some(a) = v.get("agg") {
        let spec = a.as_str().ok_or("`agg` must be a string")?;
        let granularity = parse_granularity(spec)
            .ok_or_else(|| format!("bad granularity `{spec}` (warp|block|multiblock:<K>|grid)"))?;
        let mut agg = AggConfig::new(granularity);
        if let Some(t) = v.get("agg_threshold") {
            agg.agg_threshold = Some(t.as_i64().ok_or("`agg_threshold` must be an integer")?);
        }
        config = config.aggregation(agg);
    } else if v.get("agg_threshold").is_some() {
        return Err("`agg_threshold` needs `agg` (it has no effect on its own)".to_string());
    }
    Ok(config)
}

fn parse_variant(v: &Json) -> Result<VariantSpec, String> {
    if v.get("no_cdp")
        .map(|b| b == &Json::Bool(true))
        .unwrap_or(false)
    {
        let label = v
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or("No CDP")
            .to_string();
        return Ok(VariantSpec::new(label, Variant::NoCdp));
    }
    let config = config_from_json(v)?;
    let label = v
        .get("label")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| config.label());
    Ok(VariantSpec::new(label, Variant::Cdp(config)))
}

/// Parses a sweep-spec JSON document into a [`SweepSpec`].
///
/// # Errors
///
/// Returns a human-readable message for syntax errors, unknown
/// benchmark/dataset names, or malformed variant entries.
pub fn spec_from_json(text: &str) -> Result<SweepSpec, String> {
    let doc = json::parse(text)?;
    let scale = doc
        .get("scale")
        .map(|v| v.as_f64().ok_or("`scale` must be a number"))
        .transpose()?
        .unwrap_or(0.05);
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(format!("`scale` must be in (0, 1], got {scale}"));
    }
    let seed = doc
        .get("seed")
        .map(|v| v.as_u64().ok_or("`seed` must be a non-negative integer"))
        .transpose()?
        .unwrap_or(42);

    let benchmarks: Vec<String> = doc
        .get("benchmarks")
        .and_then(Json::as_array)
        .ok_or("spec needs a `benchmarks` array")?
        .iter()
        .map(|b| {
            let name = b.as_str().ok_or("benchmark names must be strings")?;
            if !KNOWN_BENCHMARKS.contains(&name) {
                return Err(format!(
                    "unknown benchmark `{name}` (expected one of {})",
                    KNOWN_BENCHMARKS.join(", ")
                ));
            }
            Ok(name.to_string())
        })
        .collect::<Result<_, String>>()?;
    if benchmarks.is_empty() {
        return Err("`benchmarks` must not be empty".to_string());
    }

    let explicit_datasets: Option<Vec<DatasetId>> = doc
        .get("datasets")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .map(|d| {
                    let name = d.as_str().ok_or("dataset names must be strings")?;
                    dataset_by_name(name).ok_or_else(|| format!("unknown dataset `{name}`"))
                })
                .collect::<Result<Vec<_>, String>>()
        })
        .transpose()?;

    let variants: Vec<VariantSpec> = doc
        .get("variants")
        .and_then(Json::as_array)
        .ok_or("spec needs a `variants` array")?
        .iter()
        .map(parse_variant)
        .collect::<Result<_, String>>()?;
    if variants.is_empty() {
        return Err("`variants` must not be empty".to_string());
    }

    let mut series = Vec::new();
    for bench in &benchmarks {
        let datasets = match &explicit_datasets {
            Some(ids) => ids.clone(),
            None => datasets_for(bench),
        };
        for id in datasets {
            series.push(SeriesSpec::new(
                bench.clone(),
                DatasetSpec::table(id, scale, seed),
                variants.clone(),
            ));
        }
    }
    Ok(SweepSpec { series })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let spec = spec_from_json(
            r#"{
                "scale": 0.01, "seed": 7,
                "benchmarks": ["BFS", "SP"],
                "datasets": ["KRON"],
                "variants": [
                    {"no_cdp": true},
                    {"label": "CDP"},
                    {"threshold": 128, "coarsen": 16, "agg": "multiblock:8"}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.series.len(), 2);
        assert_eq!(spec.series[0].benchmark, "BFS");
        assert_eq!(spec.series[0].dataset.name(), "KRON");
        assert_eq!(spec.series[0].variants.len(), 3);
        assert_eq!(spec.series[0].variants[0].label, "No CDP");
        assert_eq!(spec.series[0].variants[2].label, "CDP+T+C+A");
        assert!(matches!(
            spec.series[0].variants[2].variant,
            Variant::Cdp(c) if c.threshold == Some(128)
        ));
    }

    #[test]
    fn default_datasets_follow_table1() {
        let spec =
            spec_from_json(r#"{"benchmarks": ["BT"], "variants": [{"label": "CDP"}]}"#).unwrap();
        let names: Vec<String> = spec.series.iter().map(|s| s.dataset.name()).collect();
        assert_eq!(names, vec!["T0032-C16", "T2048-C64"]);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(spec_from_json("{").is_err());
        assert!(spec_from_json(r#"{"variants": []}"#).is_err());
        assert!(
            spec_from_json(r#"{"benchmarks": ["XXX"], "variants": [{}]}"#)
                .unwrap_err()
                .contains("unknown benchmark")
        );
        assert!(
            spec_from_json(r#"{"benchmarks": ["BFS"], "datasets": ["Y"], "variants": [{}]}"#)
                .unwrap_err()
                .contains("unknown dataset")
        );
        assert!(
            spec_from_json(r#"{"benchmarks": ["BFS"], "scale": 2.0, "variants": [{}]}"#).is_err()
        );
        assert!(
            spec_from_json(r#"{"benchmarks": ["BFS"], "variants": [{"agg": "galaxy"}]}"#)
                .unwrap_err()
                .contains("granularity")
        );
        // A dangling agg_threshold would silently do nothing — reject it.
        assert!(
            spec_from_json(r#"{"benchmarks": ["BFS"], "variants": [{"agg_threshold": 4}]}"#)
                .unwrap_err()
                .contains("`agg_threshold` needs `agg`")
        );
    }
}
