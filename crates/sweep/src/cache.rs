//! Content-addressed result cache — the crash-safe storage tier.
//!
//! Every sweep cell is keyed by [`crate::key::cell_key`] — see that module
//! for exactly which axes participate in the hash (it is the shared key
//! definition between this on-disk cache and the `dp-serve` daemon's
//! in-memory compiled-program cache).
//!
//! Summaries are persisted as one file per cell under the cache directory
//! (default `.dpopt-cache/`, override with `DPOPT_CACHE_DIR`). The entry
//! format is integrity-checked end to end:
//!
//! ```text
//! {"version":2,"key":"...", ...}                      ← JSON body
//! #dpopt-cache v2 len=<body bytes> fnv1a=<16 hex>     ← integrity footer
//! ```
//!
//! [`store`] seals the body with a [`fnv1a`] content checksum and a length
//! field, publishes via write-then-rename, and reports whether the
//! directory is still usable ([`StoreOutcome`] — disk-full and read-only
//! directories demote the sweep to cache-off instead of spamming errors).
//! [`load`] verifies length and checksum before parsing; an entry that
//! fails is **quarantined** to `<key>.corrupt` (counted in the
//! `sweep.cache.corrupt` metric, diagnosed on stderr) rather than silently
//! re-parsed as a miss every run. [`verify`] is the fsck behind
//! `dpopt cache verify [--repair]`, and [`gc`] evicts quarantined entries
//! before touching live ones.
//!
//! All cache I/O goes through [`dp_faults::fs`], so the fault plans in
//! `DPOPT_FAULTS` (torn write, short read, bit flip, `ENOSPC`, `EIO`,
//! delayed rename) exercise exactly the code paths production crashes hit
//! — see `crates/cli/tests/chaos.rs` for the process-level proof.

// The key helpers lived here before they were shared with dp-serve; the
// old `cache::…` paths stay valid via this re-export.
pub use crate::key::{
    canonical_config, canonical_dataset, canonical_variant, cell_key, compiled_key, digest_input,
    fnv1a, CACHE_FORMAT_VERSION,
};

use crate::json::{self, num, object, uint, Json};
use crate::CellSummary;
use dp_obs::metrics::Counter;
use std::path::{Path, PathBuf};

static CACHE_CORRUPT: Counter = Counter::new("sweep.cache.corrupt");

/// The tag cache I/O passes to [`dp_faults::fs`] — fault plans can target
/// exactly this traffic with `kind@fs-write:sweep-cache`.
pub const FS_TAG: &str = "sweep-cache";

/// Cache hit/miss counters for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells executed (and, when caching is on, then stored).
    pub misses: usize,
    /// Whether the cache was consulted at all.
    pub enabled: bool,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (`0` for an empty sweep).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache directory to use: explicit override, else `DPOPT_CACHE_DIR`,
/// else `.dpopt-cache` in the current directory.
pub fn resolve_cache_dir(explicit: Option<&Path>) -> PathBuf {
    if let Some(dir) = explicit {
        return dir.to_path_buf();
    }
    match std::env::var_os("DPOPT_CACHE_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(".dpopt-cache"),
    }
}

fn cell_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.json"))
}

/// Best-effort LRU touch: bumps a cache file's modification time so
/// [`gc`] treats recently *used* entries as recently *valuable*. Failure
/// is harmless (the entry just ages by its write time).
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().write(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

// ----------------------------------------------------------------------
// Entry sealing and decoding
// ----------------------------------------------------------------------

const FOOTER_MARK: &str = "\n#dpopt-cache v";

/// Appends the integrity footer to a serialized body.
fn seal_entry(body: &str) -> String {
    format!(
        "{body}\n#dpopt-cache v{CACHE_FORMAT_VERSION} len={} fnv1a={:016x}\n",
        body.len(),
        fnv1a(body.as_bytes())
    )
}

/// How an on-disk entry decoded.
enum EntryState {
    /// Footer verified, body parsed, schema current.
    Ok(CellSummary),
    /// Intact but written by a different format version — a miss, left in
    /// place to age out ([`verify`] reports it, `--repair` evicts it).
    Stale,
    /// Integrity failure: torn, bit-flipped, truncated, or undecodable.
    /// [`load`] quarantines these.
    Corrupt(&'static str),
}

/// Verifies and parses one entry's raw text (body + footer).
fn decode_entry(text: &str) -> EntryState {
    let Some(idx) = text.rfind(FOOTER_MARK) else {
        // No footer. A pre-checksum (v1) entry still decodes as versioned
        // JSON — stale, not corrupt; anything else is torn bytes.
        return match json::parse(text.trim()) {
            Ok(v) if v.get("version").and_then(Json::as_u64).is_some() => EntryState::Stale,
            _ => EntryState::Corrupt("missing checksum footer"),
        };
    };
    let body = &text[..idx];
    let footer = text[idx + 1..].trim_end();
    let mut parts = footer.split_whitespace();
    parts.next(); // the "#dpopt-cache" tag located by rfind
    let version: Option<u32> = parts
        .next()
        .and_then(|p| p.strip_prefix('v'))
        .and_then(|v| v.parse().ok());
    let len: Option<usize> = parts
        .next()
        .and_then(|p| p.strip_prefix("len="))
        .and_then(|v| v.parse().ok());
    let sum: Option<u64> = parts
        .next()
        .and_then(|p| p.strip_prefix("fnv1a="))
        .and_then(|v| u64::from_str_radix(v, 16).ok());
    let (Some(version), Some(len), Some(sum)) = (version, len, sum) else {
        return EntryState::Corrupt("malformed footer");
    };
    if len != body.len() {
        return EntryState::Corrupt("length mismatch");
    }
    if sum != fnv1a(body.as_bytes()) {
        return EntryState::Corrupt("checksum mismatch");
    }
    if version != CACHE_FORMAT_VERSION {
        return EntryState::Stale;
    }
    let Ok(v) = json::parse(body) else {
        return EntryState::Corrupt("undecodable body");
    };
    match summary_from_json(&v) {
        Some(summary) => EntryState::Ok(summary),
        // The checksum passed, so the bytes are what the writer meant;
        // a version field below tells stale from a genuine schema bug.
        None => match v.get("version").and_then(Json::as_u64) {
            Some(n) if n != CACHE_FORMAT_VERSION as u64 => EntryState::Stale,
            _ => EntryState::Corrupt("schema mismatch"),
        },
    }
}

/// Moves a failed entry aside as `<key>.corrupt` so it is never re-parsed
/// (and [`gc`] evicts it first), and counts it in `sweep.cache.corrupt`.
fn quarantine(path: &Path, key: u64, reason: &str) {
    CACHE_CORRUPT.incr();
    let target = path.with_extension("corrupt");
    match std::fs::rename(path, &target) {
        Ok(()) => dp_obs::diag!(
            "[dp-sweep] quarantined corrupt cache entry {key:016x} ({reason}) -> {}",
            target.display()
        ),
        Err(e) => dp_obs::diag!(
            "[dp-sweep] corrupt cache entry {key:016x} ({reason}); quarantine failed: {e}"
        ),
    }
}

/// Loads a cached summary, if present and **verified**: the footer's
/// length and fnv1a checksum must match the body before it is parsed.
/// Entries that fail verification are quarantined to `<key>.corrupt`
/// (never served, never re-parsed); stale-format entries are plain
/// misses. A *hit* (and only a hit — stale entries must keep aging toward
/// eviction) refreshes the entry's modification time, the LRU clock used
/// by [`gc`].
pub fn load(dir: &Path, key: u64) -> Option<CellSummary> {
    let path = cell_path(dir, key);
    let text = match dp_faults::fs::read_to_string(&path, FS_TAG) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            // Transient read failure: the bytes on disk may be fine, so
            // miss without quarantining.
            dp_obs::diag!("[dp-sweep] cache read failed for {key:016x}: {e}");
            return None;
        }
    };
    match decode_entry(&text) {
        EntryState::Ok(summary) => {
            touch(&path);
            Some(summary)
        }
        EntryState::Stale => None,
        EntryState::Corrupt(reason) => {
            quarantine(&path, key, reason);
            None
        }
    }
}

/// Parses the JSON form written by [`summary_json`] back into a
/// [`CellSummary`] (label empty, `verified`/`from_cache` set as a cache hit
/// would be). Returns `None` on schema or version mismatch — the inverse of
/// [`summary_json`], shared by the disk cache and the `dp-serve` client.
pub fn summary_from_json(v: &Json) -> Option<CellSummary> {
    if v.get("version")?.as_u64()? != CACHE_FORMAT_VERSION as u64 {
        return None;
    }
    let f = |name: &str| v.get(name)?.as_f64();
    let u = |name: &str| v.get(name)?.as_u64();
    Some(CellSummary {
        label: String::new(),
        total_us: f("total_us")?,
        device_span_us: f("device_span_us")?,
        parent_us: f("parent_us")?,
        child_us: f("child_us")?,
        launch_us: f("launch_us")?,
        aggregation_us: f("aggregation_us")?,
        disaggregation_us: f("disaggregation_us")?,
        warp_avg_total_us: f("warp_avg_total_us")?,
        device_launches: u("device_launches")?,
        host_launches: u("host_launches")?,
        origin_cycles_total: u("origin_cycles_total")?,
        instructions: u("instructions")?,
        output_ints: v
            .get("output_ints")?
            .as_array()?
            .iter()
            .map(|x| x.as_i64())
            .collect::<Option<Vec<i64>>>()?,
        output_floats: v
            .get("output_floats")?
            .as_array()?
            .iter()
            .map(|x| x.as_f64())
            .collect::<Option<Vec<f64>>>()?,
        verified: true,
        from_cache: true,
    })
}

/// The persisted JSON form of a summary — the exact object [`store`]
/// writes (before the integrity footer is appended), also the payload of a
/// `dp-serve` `sweep-cell` response (one serialization path, so a served
/// cell and a cached cell can never disagree on a byte).
pub fn summary_json(key: u64, summary: &CellSummary) -> Json {
    object([
        ("version", uint(CACHE_FORMAT_VERSION as u64)),
        ("key", Json::Str(format!("{key:016x}"))),
        ("total_us", num(summary.total_us)),
        ("device_span_us", num(summary.device_span_us)),
        ("parent_us", num(summary.parent_us)),
        ("child_us", num(summary.child_us)),
        ("launch_us", num(summary.launch_us)),
        ("aggregation_us", num(summary.aggregation_us)),
        ("disaggregation_us", num(summary.disaggregation_us)),
        ("warp_avg_total_us", num(summary.warp_avg_total_us)),
        ("device_launches", uint(summary.device_launches)),
        ("host_launches", uint(summary.host_launches)),
        ("origin_cycles_total", uint(summary.origin_cycles_total)),
        ("instructions", uint(summary.instructions)),
        (
            "output_ints",
            Json::Array(summary.output_ints.iter().map(|&v| Json::Int(v)).collect()),
        ),
        (
            "output_floats",
            Json::Array(summary.output_floats.iter().map(|&v| num(v)).collect()),
        ),
    ])
}

// ----------------------------------------------------------------------
// Raw sealed-entry access (fleet cache push/pull)
// ----------------------------------------------------------------------
//
// The `cache-push`/`cache-pull` serve ops move entries between machines as
// their exact on-disk bytes — body plus integrity footer — so the checksum
// written by the producer is re-verified on every receiving side and a
// replicated entry can never differ from the original by a byte.

/// Verifies a sealed entry's integrity footer **and** that its body names
/// `key` — the binding that stops a valid entry from being published under
/// the wrong name. `Err` carries the same reason strings [`load`] uses for
/// quarantine diagnostics.
pub fn verify_sealed(entry: &str, key: u64) -> Result<(), &'static str> {
    match decode_entry(entry) {
        EntryState::Ok(_) => {}
        EntryState::Stale => return Err("stale format version"),
        EntryState::Corrupt(reason) => return Err(reason),
    }
    // decode_entry verified the footer exists and the body parses.
    let idx = entry.rfind(FOOTER_MARK).expect("footer verified");
    let v = json::parse(&entry[..idx]).expect("body verified");
    match v.get("key").and_then(Json::as_str) {
        Some(k) if k == format!("{key:016x}") => Ok(()),
        _ => Err("key mismatch"),
    }
}

/// Reads one entry's raw sealed text (body + footer), verified against
/// `key` first: a corrupt file is quarantined exactly as [`load`] would,
/// and never shipped. Stale-format entries are `None` — replicating an
/// old format across the fleet helps nobody.
pub fn load_sealed(dir: &Path, key: u64) -> Option<String> {
    let path = cell_path(dir, key);
    let text = match dp_faults::fs::read_to_string(&path, FS_TAG) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            dp_obs::diag!("[dp-sweep] cache read failed for {key:016x}: {e}");
            return None;
        }
    };
    match verify_sealed(&text, key) {
        Ok(()) => Some(text),
        Err("stale format version") => None,
        Err(reason) => {
            quarantine(&path, key, reason);
            None
        }
    }
}

/// Publishes a received sealed entry verbatim under `key`, re-verifying it
/// first ([`verify_sealed`]): a corrupt or mis-keyed payload is rejected
/// with the reason and **nothing is written to the live namespace**.
/// Publication is the same tmp-write-then-rename as [`store`].
pub fn store_sealed(dir: &Path, key: u64, entry: &str) -> Result<StoreOutcome, &'static str> {
    verify_sealed(entry, key)?;
    if let Err(e) = std::fs::create_dir_all(dir) {
        dp_obs::diag!("[dp-sweep] cannot create cache dir {}: {e}", dir.display());
        return Ok(classify_store_error(&e));
    }
    let path = cell_path(dir, key);
    let tmp = dir.join(format!("{key:016x}.tmp.{}", std::process::id()));
    if let Err(e) = dp_faults::fs::write(&tmp, entry.as_bytes(), FS_TAG) {
        dp_obs::diag!("[dp-sweep] cannot write {}: {e}", tmp.display());
        let _ = std::fs::remove_file(&tmp);
        return Ok(classify_store_error(&e));
    }
    if let Err(e) = dp_faults::fs::rename(&tmp, &path, FS_TAG) {
        dp_obs::diag!("[dp-sweep] cannot publish {}: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
        return Ok(classify_store_error(&e));
    }
    Ok(StoreOutcome::Stored)
}

/// Quarantines a **rejected incoming** payload — bytes that failed
/// [`verify_sealed`] on receipt and were never published. They are written
/// to `<key>.corrupt` (best effort) for post-incident inspection and
/// counted in `sweep.cache.corrupt`, mirroring what [`load`] does to
/// corrupt on-disk entries.
pub fn quarantine_rejected(dir: &Path, key: u64, entry: &str, reason: &str) {
    CACHE_CORRUPT.incr();
    let target = dir.join(format!("{key:016x}.corrupt"));
    let _ = std::fs::create_dir_all(dir);
    match std::fs::write(&target, entry.as_bytes()) {
        Ok(()) => dp_obs::diag!(
            "[dp-sweep] quarantined rejected cache entry {key:016x} ({reason}) -> {}",
            target.display()
        ),
        Err(e) => dp_obs::diag!(
            "[dp-sweep] rejected cache entry {key:016x} ({reason}); quarantine failed: {e}"
        ),
    }
}

/// Lifetime total of entries this process has quarantined (corrupt on
/// load, rejected on push) — `sweep.cache.corrupt`, exposed so the serve
/// `stats` op can report it without a metrics snapshot.
pub fn corrupt_count() -> u64 {
    CACHE_CORRUPT.value()
}

/// The keys of every live entry in the cache directory, sorted — the
/// inventory `cache-pull` answers so a fleet can converge. Quarantine
/// files, tmp leftovers, and unparsable names are skipped; a missing
/// directory is an empty cache.
pub fn list_keys(dir: &Path) -> std::io::Result<Vec<u64>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut keys = Vec::new();
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(hex) = name.strip_suffix(".json") else {
            continue;
        };
        if hex.len() != 16 {
            continue;
        }
        if let Ok(key) = u64::from_str_radix(hex, 16) {
            keys.push(key);
        }
    }
    keys.sort_unstable();
    Ok(keys)
}

/// What [`store`] managed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The entry was sealed and published.
    Stored,
    /// A transient failure; the next store may well succeed.
    TransientError,
    /// The directory is unusable — disk full (`ENOSPC`) or not writable
    /// (`EROFS`/permission denied). Callers should demote to cache-off
    /// instead of retrying every cell.
    Unavailable,
}

fn classify_store_error(e: &std::io::Error) -> StoreOutcome {
    const ENOSPC: i32 = 28;
    const EROFS: i32 = 30;
    if matches!(e.raw_os_error(), Some(ENOSPC) | Some(EROFS))
        || e.kind() == std::io::ErrorKind::PermissionDenied
    {
        StoreOutcome::Unavailable
    } else {
        StoreOutcome::TransientError
    }
}

/// Persists a summary: seals the serialized body with the integrity
/// footer, writes `<key>.tmp.<pid>`, and publishes via rename so
/// concurrent workers and interrupted runs never expose a torn file under
/// the final name. Errors are reported to stderr but do not fail the
/// sweep (the cache is an accelerator, not a correctness dependency); the
/// returned [`StoreOutcome`] tells callers when the directory itself is
/// gone so they can stop trying.
pub fn store(dir: &Path, key: u64, summary: &CellSummary) -> StoreOutcome {
    store_with(dp_faults::global(), dir, key, summary)
}

fn store_with(
    plan: &dp_faults::FaultPlan,
    dir: &Path,
    key: u64,
    summary: &CellSummary,
) -> StoreOutcome {
    let payload = seal_entry(&summary_json(key, summary).to_string());
    if let Err(e) = std::fs::create_dir_all(dir) {
        dp_obs::diag!("[dp-sweep] cannot create cache dir {}: {e}", dir.display());
        return classify_store_error(&e);
    }
    let path = cell_path(dir, key);
    let tmp = dir.join(format!("{key:016x}.tmp.{}", std::process::id()));
    if let Err(e) = dp_faults::fs::write_with(plan, &tmp, payload.as_bytes(), FS_TAG) {
        dp_obs::diag!("[dp-sweep] cannot write {}: {e}", tmp.display());
        let _ = std::fs::remove_file(&tmp);
        return classify_store_error(&e);
    }
    if let Err(e) = dp_faults::fs::rename_with(plan, &tmp, &path, FS_TAG) {
        dp_obs::diag!("[dp-sweep] cannot publish {}: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
        return classify_store_error(&e);
    }
    StoreOutcome::Stored
}

// ----------------------------------------------------------------------
// Cache eviction (GC)
// ----------------------------------------------------------------------

/// What [`gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Cell summaries found.
    pub entries: usize,
    /// Entries evicted (quarantined `.corrupt` files first, then least
    /// recently used).
    pub evicted: usize,
    /// Total bytes before eviction.
    pub bytes_before: u64,
    /// Total bytes after eviction.
    pub bytes_after: u64,
}

/// Prunes the cache directory down to `max_bytes`. Quarantined
/// `*.corrupt` files are evicted first (they exist only for post-incident
/// inspection), then **least-recently-used** cell summaries
/// (modification time is the LRU clock: [`store`] stamps it and [`load`]
/// refreshes it on every hit). Ties break on file name so eviction order
/// is deterministic. Stale `*.tmp.*` files from interrupted writes are
/// always removed. A missing cache directory is an empty cache, not an
/// error.
pub fn gc(dir: &Path, max_bytes: u64) -> std::io::Result<GcReport> {
    let mut report = GcReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    // rank 0 = quarantined (first out), rank 1 = live summaries.
    let mut cells: Vec<(u8, std::time::SystemTime, String, u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if !entry.file_type()?.is_file() {
            continue;
        }
        if name.contains(".tmp.") {
            // Torn write leftovers are garbage regardless of budget.
            let _ = std::fs::remove_file(&path);
            continue;
        }
        let rank = if name.ends_with(".corrupt") {
            0
        } else if name.ends_with(".json") {
            1
        } else {
            continue;
        };
        let meta = entry.metadata()?;
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        cells.push((rank, mtime, name, meta.len(), path));
    }
    report.entries = cells.iter().filter(|c| c.0 == 1).count();
    report.bytes_before = cells.iter().map(|c| c.3).sum();
    report.bytes_after = report.bytes_before;
    if report.bytes_before <= max_bytes {
        return Ok(report);
    }
    // Quarantined first, then oldest; name tiebreak keeps eviction
    // deterministic when a filesystem's timestamps are coarse.
    cells.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    for (_, _, _, len, path) in cells {
        if report.bytes_after <= max_bytes {
            break;
        }
        std::fs::remove_file(&path)?;
        report.bytes_after -= len;
        report.evicted += 1;
    }
    Ok(report)
}

// ----------------------------------------------------------------------
// Verification (fsck)
// ----------------------------------------------------------------------

/// What is wrong with one cache file (see [`VerifyFinding`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryProblem {
    /// A `*.tmp.*` leftover from an interrupted write.
    Torn,
    /// Failed integrity verification (bad footer, length, checksum, or
    /// body).
    Corrupt,
    /// Intact, but written by a different format version.
    Stale,
    /// A `*.corrupt` file quarantined by an earlier [`load`].
    Quarantined,
}

impl EntryProblem {
    /// The label `dpopt cache verify` prints.
    pub fn label(&self) -> &'static str {
        match self {
            EntryProblem::Torn => "torn",
            EntryProblem::Corrupt => "corrupt",
            EntryProblem::Stale => "stale-version",
            EntryProblem::Quarantined => "quarantined",
        }
    }
}

/// One problematic file found by [`verify`].
#[derive(Debug, Clone)]
pub struct VerifyFinding {
    /// File name within the cache directory.
    pub name: String,
    /// The classification.
    pub problem: EntryProblem,
    /// Human-readable detail (the specific integrity failure).
    pub detail: String,
    /// Whether `--repair` removed it.
    pub repaired: bool,
}

/// The result of walking a cache directory with [`verify`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Files examined (entries, quarantine files, and tmp leftovers).
    pub scanned: usize,
    /// Entries that verified clean.
    pub ok: usize,
    /// Files removed by repair.
    pub repaired: usize,
    /// Problems, sorted by file name.
    pub findings: Vec<VerifyFinding>,
}

impl VerifyReport {
    /// True when every scanned entry verified clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of one problem class.
    pub fn count(&self, problem: EntryProblem) -> usize {
        self.findings
            .iter()
            .filter(|f| f.problem == problem)
            .count()
    }
}

/// Walks the cache directory and verifies every entry — the fsck behind
/// `dpopt cache verify [--repair]`. Classifies `*.tmp.*` leftovers as
/// torn, `*.corrupt` files as quarantined, and checks each `*.json` entry
/// against its integrity footer (corrupt) and format version (stale).
/// With `repair`, problem files are removed. Reads go straight to the
/// filesystem, not through the fault plan: fsck must see the real bytes.
/// A missing directory is an empty (clean) cache.
pub fn verify(dir: &Path, repair: bool) -> std::io::Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        files.push((
            entry.file_name().to_string_lossy().into_owned(),
            entry.path(),
        ));
    }
    files.sort();
    for (name, path) in files {
        let problem: Option<(EntryProblem, String)> = if name.contains(".tmp.") {
            Some((EntryProblem::Torn, "interrupted write".to_string()))
        } else if name.ends_with(".corrupt") {
            Some((EntryProblem::Quarantined, "quarantined by load".to_string()))
        } else if name.ends_with(".json") {
            match std::fs::read_to_string(&path) {
                Ok(text) => match decode_entry(&text) {
                    EntryState::Ok(_) => None,
                    EntryState::Stale => Some((
                        EntryProblem::Stale,
                        format!("not format v{CACHE_FORMAT_VERSION}"),
                    )),
                    EntryState::Corrupt(reason) => {
                        Some((EntryProblem::Corrupt, reason.to_string()))
                    }
                },
                Err(e) => Some((EntryProblem::Corrupt, format!("unreadable: {e}"))),
            }
        } else {
            continue;
        };
        report.scanned += 1;
        match problem {
            None => report.ok += 1,
            Some((problem, detail)) => {
                let repaired = repair && std::fs::remove_file(&path).is_ok();
                if repaired {
                    report.repaired += 1;
                }
                report.findings.push(VerifyFinding {
                    name,
                    problem,
                    detail,
                    repaired,
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let summary = CellSummary {
            label: "CDP".to_string(),
            total_us: 123.456789,
            device_span_us: 1.0 / 3.0,
            parent_us: 0.1,
            child_us: 0.2,
            launch_us: 0.3,
            aggregation_us: 0.0,
            disaggregation_us: 0.0,
            warp_avg_total_us: 99.5,
            device_launches: 12,
            host_launches: 3,
            origin_cycles_total: 9_007_199_254_740_993,
            instructions: 42,
            output_ints: vec![1, -2, 3],
            output_floats: vec![0.25, -1.5],
            verified: true,
            from_cache: false,
        };
        assert!(load(&dir, 7).is_none(), "empty cache misses");
        assert_eq!(store(&dir, 7, &summary), StoreOutcome::Stored);
        let loaded = load(&dir, 7).expect("stored entry loads");
        assert_eq!(loaded.total_us.to_bits(), summary.total_us.to_bits());
        assert_eq!(
            loaded.device_span_us.to_bits(),
            summary.device_span_us.to_bits()
        );
        assert_eq!(loaded.origin_cycles_total, summary.origin_cycles_total);
        assert_eq!(loaded.output_ints, summary.output_ints);
        assert_eq!(loaded.output_floats, summary.output_floats);
        assert!(loaded.from_cache);
        // The entry carries a verifiable footer.
        let text = std::fs::read_to_string(cell_path(&dir, 7)).unwrap();
        assert!(text.contains("#dpopt-cache v"), "footer present:\n{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_summary(label: &str) -> CellSummary {
        CellSummary {
            label: label.to_string(),
            total_us: 1.0,
            device_span_us: 1.0,
            parent_us: 0.0,
            child_us: 0.0,
            launch_us: 0.0,
            aggregation_us: 0.0,
            disaggregation_us: 0.0,
            warp_avg_total_us: 1.0,
            device_launches: 0,
            host_launches: 1,
            origin_cycles_total: 1,
            instructions: 1,
            output_ints: vec![1, 2, 3],
            output_floats: vec![],
            verified: true,
            from_cache: false,
        }
    }

    fn set_age(dir: &Path, key: u64, seconds_ago: u64) {
        let f = std::fs::File::options()
            .write(true)
            .open(cell_path(dir, key))
            .unwrap();
        f.set_modified(std::time::SystemTime::now() - std::time::Duration::from_secs(seconds_ago))
            .unwrap();
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-gc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for key in [1u64, 2, 3] {
            store(&dir, key, &sample_summary("x"));
        }
        // Ages: key 2 oldest, then 1, then 3 (freshest).
        set_age(&dir, 1, 200);
        set_age(&dir, 2, 400);
        set_age(&dir, 3, 10);
        let entry_len = std::fs::metadata(cell_path(&dir, 1)).unwrap().len();

        // Budget for exactly one entry: the two stalest go, freshest stays.
        let report = gc(&dir, entry_len).unwrap();
        assert_eq!(report.entries, 3);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.bytes_before, 3 * entry_len);
        assert_eq!(report.bytes_after, entry_len);
        assert!(load(&dir, 2).is_none(), "oldest entry evicted");
        assert!(load(&dir, 1).is_none(), "second-oldest evicted");
        assert!(load(&dir, 3).is_some(), "freshest entry survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_hits_refresh_the_lru_clock() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-touch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store(&dir, 10, &sample_summary("a"));
        store(&dir, 11, &sample_summary("b"));
        set_age(&dir, 10, 500);
        set_age(&dir, 11, 100);
        // A hit on the stale entry makes it the freshest.
        assert!(load(&dir, 10).is_some());
        let entry_len = std::fs::metadata(cell_path(&dir, 10)).unwrap().len();
        let report = gc(&dir, entry_len).unwrap();
        assert_eq!(report.evicted, 1);
        assert!(load(&dir, 10).is_some(), "touched entry survives GC");
        assert!(load(&dir, 11).is_none(), "untouched entry was the LRU");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_handles_missing_dir_under_budget_and_tmp_files() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-gc-edge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Missing directory is an empty cache.
        let report = gc(&dir, 0).unwrap();
        assert_eq!(report, GcReport::default());
        // Under budget: nothing evicted, torn tmp files still removed.
        store(&dir, 1, &sample_summary("x"));
        std::fs::write(dir.join("deadbeef.tmp.999"), "torn").unwrap();
        let report = gc(&dir, u64::MAX).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.evicted, 0);
        assert!(!dir.join("deadbeef.tmp.999").exists());
        assert!(load(&dir, 1).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_evicts_quarantined_entries_before_live_ones() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-gc-q-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store(&dir, 1, &sample_summary("live"));
        set_age(&dir, 1, 10_000); // ancient, but live
        let entry_len = std::fs::metadata(cell_path(&dir, 1)).unwrap().len();
        // A fresh quarantined file bigger than the live entry.
        let corrupt = dir.join("00000000000000ff.corrupt");
        std::fs::write(&corrupt, vec![b'x'; 2 * entry_len as usize]).unwrap();
        // Budget fits the live entry only: the quarantine file must be the
        // first victim even though it is newer.
        let report = gc(&dir, entry_len).unwrap();
        assert_eq!(report.entries, 1, "corrupt files are not entries");
        assert_eq!(report.evicted, 1);
        assert!(!corrupt.exists(), "quarantined file evicted first");
        assert!(load(&dir, 1).is_some(), "live entry survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_versioned_entry_is_a_stale_miss_not_corruption() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-ver-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-footer (v1-era) entry: versioned JSON, no footer.
        std::fs::write(dir.join(format!("{:016x}.json", 9u64)), "{\"version\":0}").unwrap();
        assert!(load(&dir, 9).is_none());
        assert!(
            dir.join(format!("{:016x}.json", 9u64)).exists(),
            "stale entries age out, they are not quarantined"
        );
        let report = verify(&dir, false).unwrap();
        assert_eq!(report.count(EntryProblem::Stale), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entry_is_quarantined_counted_and_never_served() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-q-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store(&dir, 21, &sample_summary("x"));
        // Flip one byte of the body on disk — the footer checksum must
        // catch it.
        let path = cell_path(&dir, 21);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        dp_obs::metrics::enable();
        let before = CACHE_CORRUPT.value();
        assert!(load(&dir, 21).is_none(), "corrupt entry never served");
        assert!(CACHE_CORRUPT.value() > before, "corruption counted");
        assert!(!path.exists(), "entry removed from the live namespace");
        let corrupt = dir.join(format!("{:016x}.corrupt", 21u64));
        assert!(corrupt.exists(), "entry quarantined");
        // Still a miss afterwards, and no double quarantine.
        assert!(load(&dir, 21).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_reports_unavailable_on_disk_full() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-full-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = dp_faults::FaultPlan::parse("enospc@fs-write:sweep-cache").unwrap();
        assert_eq!(
            store_with(&plan, &dir, 5, &sample_summary("x")),
            StoreOutcome::Unavailable
        );
        assert!(load(&dir, 5).is_none(), "nothing published");
        // The torn tmp file was cleaned up.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .count();
        assert_eq!(leftovers, 0, "no tmp leftovers after a failed store");
        // The plan is spent: the next store succeeds.
        assert_eq!(
            store_with(&plan, &dir, 5, &sample_summary("x")),
            StoreOutcome::Stored
        );
        assert!(load(&dir, 5).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_publish_is_caught_by_the_footer() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-torn-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // torn-write reports success with half the bytes, so the rename
        // publishes a torn entry — exactly what a crash mid-write leaves.
        let plan = dp_faults::FaultPlan::parse("torn-write@fs-write:sweep-cache").unwrap();
        assert_eq!(
            store_with(&plan, &dir, 6, &sample_summary("x")),
            StoreOutcome::Stored
        );
        assert!(load(&dir, 6).is_none(), "torn entry never served");
        assert!(
            dir.join(format!("{:016x}.corrupt", 6u64)).exists(),
            "torn entry quarantined"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_classifies_and_repairs_every_problem_class() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-fsck-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // ok entry
        store(&dir, 1, &sample_summary("ok"));
        // torn tmp leftover
        std::fs::write(dir.join("00000000000000aa.tmp.1"), "half").unwrap();
        // quarantine file
        std::fs::write(dir.join("00000000000000bb.corrupt"), "junk").unwrap();
        // corrupt entry (checksum mismatch)
        store(&dir, 2, &sample_summary("bad"));
        let path2 = cell_path(&dir, 2);
        let mut bytes = std::fs::read(&path2).unwrap();
        bytes[12] ^= 0x01;
        std::fs::write(&path2, &bytes).unwrap();
        // stale entry (valid footer, old version)
        let body = "{\"version\":1}";
        let stale = format!(
            "{body}\n#dpopt-cache v1 len={} fnv1a={:016x}\n",
            body.len(),
            fnv1a(body.as_bytes())
        );
        std::fs::write(dir.join("00000000000000cc.json"), stale).unwrap();

        let report = verify(&dir, false).unwrap();
        assert_eq!(report.scanned, 5);
        assert_eq!(report.ok, 1);
        assert_eq!(report.count(EntryProblem::Torn), 1);
        assert_eq!(report.count(EntryProblem::Quarantined), 1);
        assert_eq!(report.count(EntryProblem::Corrupt), 1);
        assert_eq!(report.count(EntryProblem::Stale), 1);
        assert_eq!(report.repaired, 0, "no repair without the flag");
        assert!(!report.is_clean());

        let report = verify(&dir, true).unwrap();
        assert_eq!(report.repaired, 4);
        let report = verify(&dir, false).unwrap();
        assert!(report.is_clean(), "repair leaves a clean directory");
        assert_eq!(report.ok, 1, "the good entry survives repair");
        assert!(load(&dir, 1).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_entries_round_trip_verbatim_between_directories() {
        let a = std::env::temp_dir().join(format!("dp-sweep-seal-a-{}", std::process::id()));
        let b = std::env::temp_dir().join(format!("dp-sweep-seal-b-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
        store(&a, 31, &sample_summary("x"));
        let entry = load_sealed(&a, 31).expect("stored entry ships");
        assert!(verify_sealed(&entry, 31).is_ok());
        assert_eq!(verify_sealed(&entry, 32), Err("key mismatch"));
        assert_eq!(store_sealed(&b, 31, &entry), Ok(StoreOutcome::Stored));
        // The replica is byte-identical and serves as a normal hit.
        assert_eq!(
            std::fs::read(cell_path(&a, 31)).unwrap(),
            std::fs::read(cell_path(&b, 31)).unwrap()
        );
        assert!(load(&b, 31).is_some());
        assert_eq!(list_keys(&b).unwrap(), vec![31]);
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn store_sealed_rejects_corrupt_payloads_without_publishing() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-seal-rej-{}", std::process::id()));
        let src = std::env::temp_dir().join(format!("dp-sweep-seal-src-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&src);
        store(&src, 41, &sample_summary("x"));
        let mut entry = load_sealed(&src, 41).unwrap().into_bytes();
        entry[10] ^= 0x20; // bit-flip in transit
        let entry = String::from_utf8(entry).unwrap();
        assert_eq!(store_sealed(&dir, 41, &entry), Err("checksum mismatch"));
        assert!(
            !cell_path(&dir, 41).exists(),
            "rejected payload never published"
        );
        // Receiving-side quarantine: counted and kept for inspection.
        dp_obs::metrics::enable();
        let before = corrupt_count();
        quarantine_rejected(&dir, 41, &entry, "checksum mismatch");
        assert_eq!(corrupt_count(), before + 1);
        assert!(dir.join(format!("{:016x}.corrupt", 41u64)).exists());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&src).ok();
    }

    #[test]
    fn load_sealed_quarantines_corrupt_entries_and_skips_stale_ones() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-seal-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_sealed(&dir, 1).is_none(), "missing dir is a miss");
        store(&dir, 1, &sample_summary("x"));
        let path = cell_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_sealed(&dir, 1).is_none(), "corrupt entry never ships");
        assert!(!path.exists(), "quarantined");
        // Stale entries are misses but stay in place.
        let body = "{\"version\":1}";
        let stale = format!(
            "{body}\n#dpopt-cache v1 len={} fnv1a={:016x}\n",
            body.len(),
            fnv1a(body.as_bytes())
        );
        std::fs::write(cell_path(&dir, 2), stale).unwrap();
        assert!(load_sealed(&dir, 2).is_none());
        assert!(cell_path(&dir, 2).exists());
        assert_eq!(list_keys(&dir).unwrap(), vec![2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_of_a_missing_dir_is_clean() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-fsck-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = verify(&dir, false).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.scanned, 0);
    }
}
