//! Content-addressed result cache.
//!
//! Every sweep cell is keyed by [`crate::key::cell_key`] — see that module
//! for exactly which axes participate in the hash (it is the shared key
//! definition between this on-disk cache and the `dp-serve` daemon's
//! in-memory compiled-program cache).
//!
//! Summaries are persisted as one JSON file per cell under the cache
//! directory (default `.dpopt-cache/`, override with `DPOPT_CACHE_DIR`).

// The key helpers lived here before they were shared with dp-serve; the
// old `cache::…` paths stay valid via this re-export.
pub use crate::key::{
    canonical_config, canonical_dataset, canonical_variant, cell_key, compiled_key, digest_input,
    fnv1a, CACHE_FORMAT_VERSION,
};

use crate::json::{self, num, object, uint, Json};
use crate::CellSummary;
use std::path::{Path, PathBuf};

/// Cache hit/miss counters for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells executed (and, when caching is on, then stored).
    pub misses: usize,
    /// Whether the cache was consulted at all.
    pub enabled: bool,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (`0` for an empty sweep).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache directory to use: explicit override, else `DPOPT_CACHE_DIR`,
/// else `.dpopt-cache` in the current directory.
pub fn resolve_cache_dir(explicit: Option<&Path>) -> PathBuf {
    if let Some(dir) = explicit {
        return dir.to_path_buf();
    }
    match std::env::var_os("DPOPT_CACHE_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(".dpopt-cache"),
    }
}

fn cell_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.json"))
}

/// Best-effort LRU touch: bumps a cache file's modification time so
/// [`gc`] treats recently *used* entries as recently *valuable*. Failure
/// is harmless (the entry just ages by its write time).
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().write(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

/// Loads a cached summary, if present and readable. Corrupt or
/// schema-mismatched entries are treated as misses. A *hit* (and only a
/// hit — stale-format or torn entries must keep aging toward eviction)
/// refreshes the entry's modification time, the LRU clock used by [`gc`].
pub fn load(dir: &Path, key: u64) -> Option<CellSummary> {
    let path = cell_path(dir, key);
    let text = std::fs::read_to_string(&path).ok()?;
    let v = json::parse(&text).ok()?;
    let summary = summary_from_json(&v)?;
    touch(&path);
    Some(summary)
}

/// Parses the JSON form written by [`summary_json`] back into a
/// [`CellSummary`] (label empty, `verified`/`from_cache` set as a cache hit
/// would be). Returns `None` on schema or version mismatch — the inverse of
/// [`summary_json`], shared by the disk cache and the `dp-serve` client.
pub fn summary_from_json(v: &Json) -> Option<CellSummary> {
    if v.get("version")?.as_u64()? != CACHE_FORMAT_VERSION as u64 {
        return None;
    }
    let f = |name: &str| v.get(name)?.as_f64();
    let u = |name: &str| v.get(name)?.as_u64();
    Some(CellSummary {
        label: String::new(),
        total_us: f("total_us")?,
        device_span_us: f("device_span_us")?,
        parent_us: f("parent_us")?,
        child_us: f("child_us")?,
        launch_us: f("launch_us")?,
        aggregation_us: f("aggregation_us")?,
        disaggregation_us: f("disaggregation_us")?,
        warp_avg_total_us: f("warp_avg_total_us")?,
        device_launches: u("device_launches")?,
        host_launches: u("host_launches")?,
        origin_cycles_total: u("origin_cycles_total")?,
        instructions: u("instructions")?,
        output_ints: v
            .get("output_ints")?
            .as_array()?
            .iter()
            .map(|x| x.as_i64())
            .collect::<Option<Vec<i64>>>()?,
        output_floats: v
            .get("output_floats")?
            .as_array()?
            .iter()
            .map(|x| x.as_f64())
            .collect::<Option<Vec<f64>>>()?,
        verified: true,
        from_cache: true,
    })
}

/// The persisted JSON form of a summary — the exact object [`store`]
/// writes, also the payload of a `dp-serve` `sweep-cell` response (one
/// serialization path, so a served cell and a cached cell can never
/// disagree on a byte).
pub fn summary_json(key: u64, summary: &CellSummary) -> Json {
    object([
        ("version", uint(CACHE_FORMAT_VERSION as u64)),
        ("key", Json::Str(format!("{key:016x}"))),
        ("total_us", num(summary.total_us)),
        ("device_span_us", num(summary.device_span_us)),
        ("parent_us", num(summary.parent_us)),
        ("child_us", num(summary.child_us)),
        ("launch_us", num(summary.launch_us)),
        ("aggregation_us", num(summary.aggregation_us)),
        ("disaggregation_us", num(summary.disaggregation_us)),
        ("warp_avg_total_us", num(summary.warp_avg_total_us)),
        ("device_launches", uint(summary.device_launches)),
        ("host_launches", uint(summary.host_launches)),
        ("origin_cycles_total", uint(summary.origin_cycles_total)),
        ("instructions", uint(summary.instructions)),
        (
            "output_ints",
            Json::Array(summary.output_ints.iter().map(|&v| Json::Int(v)).collect()),
        ),
        (
            "output_floats",
            Json::Array(summary.output_floats.iter().map(|&v| num(v)).collect()),
        ),
    ])
}

/// Persists a summary. Write errors are reported to stderr but do not fail
/// the sweep (the cache is an accelerator, not a correctness dependency).
pub fn store(dir: &Path, key: u64, summary: &CellSummary) {
    let value = summary_json(key, summary);
    if let Err(e) = std::fs::create_dir_all(dir) {
        dp_obs::diag!("[dp-sweep] cannot create cache dir {}: {e}", dir.display());
        return;
    }
    let path = cell_path(dir, key);
    // Write-then-rename so concurrent workers and interrupted runs never
    // leave a torn file behind.
    let tmp = dir.join(format!("{key:016x}.tmp.{}", std::process::id()));
    if let Err(e) = std::fs::write(&tmp, value.to_string()) {
        dp_obs::diag!("[dp-sweep] cannot write {}: {e}", tmp.display());
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, &path) {
        dp_obs::diag!("[dp-sweep] cannot publish {}: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
    }
}

// ----------------------------------------------------------------------
// Cache eviction (GC)
// ----------------------------------------------------------------------

/// What [`gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Cell summaries found.
    pub entries: usize,
    /// Entries evicted (least recently used first).
    pub evicted: usize,
    /// Total bytes before eviction.
    pub bytes_before: u64,
    /// Total bytes after eviction.
    pub bytes_after: u64,
}

/// Prunes the cache directory down to `max_bytes`, evicting
/// **least-recently-used** cell summaries first (modification time is the
/// LRU clock: [`store`] stamps it and [`load`] refreshes it on every hit).
/// Ties break on file name so eviction order is deterministic. Stale
/// `*.tmp.*` files from interrupted writes are always removed. A missing
/// cache directory is an empty cache, not an error.
pub fn gc(dir: &Path, max_bytes: u64) -> std::io::Result<GcReport> {
    let mut report = GcReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let mut cells: Vec<(std::time::SystemTime, String, u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if !entry.file_type()?.is_file() {
            continue;
        }
        if name.contains(".tmp.") {
            // Torn write leftovers are garbage regardless of budget.
            let _ = std::fs::remove_file(&path);
            continue;
        }
        if !name.ends_with(".json") {
            continue;
        }
        let meta = entry.metadata()?;
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        cells.push((mtime, name, meta.len(), path));
    }
    report.entries = cells.len();
    report.bytes_before = cells.iter().map(|c| c.2).sum();
    report.bytes_after = report.bytes_before;
    if report.bytes_before <= max_bytes {
        return Ok(report);
    }
    // Oldest first; name tiebreak keeps eviction deterministic when a
    // filesystem's timestamps are coarse.
    cells.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    for (_, _, len, path) in cells {
        if report.bytes_after <= max_bytes {
            break;
        }
        std::fs::remove_file(&path)?;
        report.bytes_after -= len;
        report.evicted += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let summary = CellSummary {
            label: "CDP".to_string(),
            total_us: 123.456789,
            device_span_us: 1.0 / 3.0,
            parent_us: 0.1,
            child_us: 0.2,
            launch_us: 0.3,
            aggregation_us: 0.0,
            disaggregation_us: 0.0,
            warp_avg_total_us: 99.5,
            device_launches: 12,
            host_launches: 3,
            origin_cycles_total: 9_007_199_254_740_993,
            instructions: 42,
            output_ints: vec![1, -2, 3],
            output_floats: vec![0.25, -1.5],
            verified: true,
            from_cache: false,
        };
        assert!(load(&dir, 7).is_none(), "empty cache misses");
        store(&dir, 7, &summary);
        let loaded = load(&dir, 7).expect("stored entry loads");
        assert_eq!(loaded.total_us.to_bits(), summary.total_us.to_bits());
        assert_eq!(
            loaded.device_span_us.to_bits(),
            summary.device_span_us.to_bits()
        );
        assert_eq!(loaded.origin_cycles_total, summary.origin_cycles_total);
        assert_eq!(loaded.output_ints, summary.output_ints);
        assert_eq!(loaded.output_floats, summary.output_floats);
        assert!(loaded.from_cache);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_summary(label: &str) -> CellSummary {
        CellSummary {
            label: label.to_string(),
            total_us: 1.0,
            device_span_us: 1.0,
            parent_us: 0.0,
            child_us: 0.0,
            launch_us: 0.0,
            aggregation_us: 0.0,
            disaggregation_us: 0.0,
            warp_avg_total_us: 1.0,
            device_launches: 0,
            host_launches: 1,
            origin_cycles_total: 1,
            instructions: 1,
            output_ints: vec![1, 2, 3],
            output_floats: vec![],
            verified: true,
            from_cache: false,
        }
    }

    fn set_age(dir: &Path, key: u64, seconds_ago: u64) {
        let f = std::fs::File::options()
            .write(true)
            .open(cell_path(dir, key))
            .unwrap();
        f.set_modified(std::time::SystemTime::now() - std::time::Duration::from_secs(seconds_ago))
            .unwrap();
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-gc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for key in [1u64, 2, 3] {
            store(&dir, key, &sample_summary("x"));
        }
        // Ages: key 2 oldest, then 1, then 3 (freshest).
        set_age(&dir, 1, 200);
        set_age(&dir, 2, 400);
        set_age(&dir, 3, 10);
        let entry_len = std::fs::metadata(cell_path(&dir, 1)).unwrap().len();

        // Budget for exactly one entry: the two stalest go, freshest stays.
        let report = gc(&dir, entry_len).unwrap();
        assert_eq!(report.entries, 3);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.bytes_before, 3 * entry_len);
        assert_eq!(report.bytes_after, entry_len);
        assert!(load(&dir, 2).is_none(), "oldest entry evicted");
        assert!(load(&dir, 1).is_none(), "second-oldest evicted");
        assert!(load(&dir, 3).is_some(), "freshest entry survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_hits_refresh_the_lru_clock() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-touch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store(&dir, 10, &sample_summary("a"));
        store(&dir, 11, &sample_summary("b"));
        set_age(&dir, 10, 500);
        set_age(&dir, 11, 100);
        // A hit on the stale entry makes it the freshest.
        assert!(load(&dir, 10).is_some());
        let entry_len = std::fs::metadata(cell_path(&dir, 10)).unwrap().len();
        let report = gc(&dir, entry_len).unwrap();
        assert_eq!(report.evicted, 1);
        assert!(load(&dir, 10).is_some(), "touched entry survives GC");
        assert!(load(&dir, 11).is_none(), "untouched entry was the LRU");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_handles_missing_dir_under_budget_and_tmp_files() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-gc-edge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Missing directory is an empty cache.
        let report = gc(&dir, 0).unwrap();
        assert_eq!(report, GcReport::default());
        // Under budget: nothing evicted, torn tmp files still removed.
        store(&dir, 1, &sample_summary("x"));
        std::fs::write(dir.join("deadbeef.tmp.999"), "torn").unwrap();
        let report = gc(&dir, u64::MAX).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.evicted, 0);
        assert!(!dir.join("deadbeef.tmp.999").exists());
        assert!(load(&dir, 1).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_version_mismatch_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-ver-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{:016x}.json", 9u64)), "{\"version\":0}").unwrap();
        assert!(load(&dir, 9).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
