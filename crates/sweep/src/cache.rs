//! Content-addressed result cache.
//!
//! Every sweep cell is keyed by a stable 64-bit FNV-1a hash over a
//! canonical string of everything that determines its result:
//!
//! - the cache **format version** ([`CACHE_FORMAT_VERSION`] — bump when the
//!   summary schema, the VM/simulator semantics, or the cost-model meaning
//!   changes),
//! - the **source text** the variant executes (CDP or No-CDP version of the
//!   benchmark — editing a kernel invalidates exactly its cells),
//! - the **variant configuration** (thresholding/coarsening/aggregation),
//! - the **dataset identity** (Table-I id + scale + seed, or a content
//!   digest for caller-provided inputs),
//! - the **timing parameters** and **instruction cost model** (every field
//!   value participates, so any recalibration recomputes).
//!
//! Summaries are persisted as one JSON file per cell under the cache
//! directory (default `.dpopt-cache/`, override with `DPOPT_CACHE_DIR`).

use crate::json::{self, num, object, uint, Json};
use crate::{CellSummary, DatasetSpec};
use dp_core::{AggGranularity, OptConfig, TimingParams};
use dp_vm::bytecode::CostModel;
use dp_workloads::benchmarks::Variant;
use dp_workloads::BenchInput;
use std::path::{Path, PathBuf};

/// Bump to invalidate every cached summary (schema or semantics change).
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// 64-bit FNV-1a over a byte string — stable across builds and platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content digest of a caller-provided input (used when a sweep runs on an
/// in-memory dataset rather than a Table-I id).
pub fn digest_input(input: &BenchInput) -> u64 {
    // Each vector is written as `len[v0,v1,...];` so field boundaries are
    // unambiguous — without the length prefix, moving an element between
    // adjacent vectors would collide.
    fn field(canon: &mut String, values: &[i64]) {
        canon.push_str(&format!("{}[", values.len()));
        for v in values {
            canon.push_str(&format!("{v},"));
        }
        canon.push_str("];");
    }
    let mut canon = String::new();
    match input {
        BenchInput::Graph(g) => {
            canon.push_str("graph;");
            field(&mut canon, &g.offsets);
            field(&mut canon, &g.edges);
            field(&mut canon, &g.weights);
        }
        BenchInput::Sat(f) => {
            canon.push_str(&format!("sat;vars={};", f.num_vars));
            field(&mut canon, &f.clause_offsets);
            field(&mut canon, &f.lits);
            field(&mut canon, &f.signs);
            field(&mut canon, &f.var_offsets);
            field(&mut canon, &f.occ_clauses);
        }
        BenchInput::Bezier(b) => {
            canon.push_str(&format!(
                "bezier;tess={};curv={};",
                b.max_tess,
                b.curvature_scale.to_bits()
            ));
            canon.push_str(&format!("{}[", b.control_points.len()));
            for p in &b.control_points {
                canon.push_str(&format!("{},", p.to_bits()));
            }
            canon.push_str("];");
        }
    }
    fnv1a(canon.as_bytes())
}

fn canonical_granularity(g: AggGranularity) -> String {
    match g {
        AggGranularity::Warp => "warp".to_string(),
        AggGranularity::Block => "block".to_string(),
        AggGranularity::MultiBlock(n) => format!("multiblock:{n}"),
        AggGranularity::Grid => "grid".to_string(),
    }
}

/// Canonical string for an optimization configuration.
pub fn canonical_config(config: &OptConfig) -> String {
    let agg = match &config.aggregation {
        None => "none".to_string(),
        Some(a) => format!(
            "{}/{}",
            canonical_granularity(a.granularity),
            a.agg_threshold
                .map_or("none".to_string(), |t| t.to_string())
        ),
    };
    format!(
        "t={};c={};a={}",
        config
            .threshold
            .map_or("none".to_string(), |t| t.to_string()),
        config
            .coarsen_factor
            .map_or("none".to_string(), |c| c.to_string()),
        agg
    )
}

fn canonical_variant(variant: &Variant) -> String {
    match variant {
        Variant::NoCdp => "nocdp".to_string(),
        Variant::Cdp(config) => format!("cdp[{}]", canonical_config(config)),
    }
}

fn canonical_timing(t: &TimingParams) -> String {
    format!(
        "sms={};bps={};tps={};ghz={};issue={};hll={};hso={};pipe={};bd={}",
        t.num_sms,
        t.max_blocks_per_sm,
        t.max_threads_per_sm,
        t.clock_ghz,
        t.issue_slots_per_sm,
        t.host_launch_latency_us,
        t.host_sync_overhead_us,
        t.device_launch_pipe_us,
        t.block_dispatch_us
    )
}

fn canonical_cost(c: &CostModel) -> String {
    format!(
        "alu={};mul={};div={};mem={};br={};call={};launch={};sync={};fence={};atomic={};intr={};lpo={}",
        c.alu,
        c.mul,
        c.div,
        c.mem,
        c.branch,
        c.call,
        c.launch,
        c.sync,
        c.fence,
        c.atomic,
        c.intrinsic,
        c.launch_presence_overhead
    )
}

/// Canonical identity of a dataset spec (used both in cell keys and for
/// engine-side dataset dedup — one definition so they can never diverge).
pub fn canonical_dataset(dataset: &DatasetSpec) -> String {
    match dataset {
        DatasetSpec::Table { id, scale, seed } => {
            format!("table[{};scale={scale};seed={seed}]", id.name())
        }
        DatasetSpec::Provided { digest, .. } => format!("provided[{digest:016x}]"),
    }
}

/// Computes the content-addressed key of one cell.
pub fn cell_key(
    benchmark: &str,
    source: &str,
    variant: &Variant,
    dataset: &DatasetSpec,
    timing: &TimingParams,
    cost: &CostModel,
) -> u64 {
    let canon = format!(
        "v{CACHE_FORMAT_VERSION}|bench={benchmark}|src={:016x}|variant={}|dataset={}|timing={}|cost={}",
        fnv1a(source.as_bytes()),
        canonical_variant(variant),
        canonical_dataset(dataset),
        canonical_timing(timing),
        canonical_cost(cost),
    );
    fnv1a(canon.as_bytes())
}

/// Cache hit/miss counters for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells executed (and, when caching is on, then stored).
    pub misses: usize,
    /// Whether the cache was consulted at all.
    pub enabled: bool,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (`0` for an empty sweep).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache directory to use: explicit override, else `DPOPT_CACHE_DIR`,
/// else `.dpopt-cache` in the current directory.
pub fn resolve_cache_dir(explicit: Option<&Path>) -> PathBuf {
    if let Some(dir) = explicit {
        return dir.to_path_buf();
    }
    match std::env::var_os("DPOPT_CACHE_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(".dpopt-cache"),
    }
}

fn cell_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.json"))
}

/// Best-effort LRU touch: bumps a cache file's modification time so
/// [`gc`] treats recently *used* entries as recently *valuable*. Failure
/// is harmless (the entry just ages by its write time).
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().write(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

/// Loads a cached summary, if present and readable. Corrupt or
/// schema-mismatched entries are treated as misses. A *hit* (and only a
/// hit — stale-format or torn entries must keep aging toward eviction)
/// refreshes the entry's modification time, the LRU clock used by [`gc`].
pub fn load(dir: &Path, key: u64) -> Option<CellSummary> {
    let path = cell_path(dir, key);
    let text = std::fs::read_to_string(&path).ok()?;
    let v = json::parse(&text).ok()?;
    if v.get("version")?.as_u64()? != CACHE_FORMAT_VERSION as u64 {
        return None;
    }
    let f = |name: &str| v.get(name)?.as_f64();
    let u = |name: &str| v.get(name)?.as_u64();
    let summary = (|| {
        Some(CellSummary {
            label: String::new(),
            total_us: f("total_us")?,
            device_span_us: f("device_span_us")?,
            parent_us: f("parent_us")?,
            child_us: f("child_us")?,
            launch_us: f("launch_us")?,
            aggregation_us: f("aggregation_us")?,
            disaggregation_us: f("disaggregation_us")?,
            warp_avg_total_us: f("warp_avg_total_us")?,
            device_launches: u("device_launches")?,
            host_launches: u("host_launches")?,
            origin_cycles_total: u("origin_cycles_total")?,
            instructions: u("instructions")?,
            output_ints: v
                .get("output_ints")?
                .as_array()?
                .iter()
                .map(|x| x.as_i64())
                .collect::<Option<Vec<i64>>>()?,
            output_floats: v
                .get("output_floats")?
                .as_array()?
                .iter()
                .map(|x| x.as_f64())
                .collect::<Option<Vec<f64>>>()?,
            verified: true,
            from_cache: true,
        })
    })()?;
    touch(&path);
    Some(summary)
}

/// Persists a summary. Write errors are reported to stderr but do not fail
/// the sweep (the cache is an accelerator, not a correctness dependency).
pub fn store(dir: &Path, key: u64, summary: &CellSummary) {
    let value = object([
        ("version", uint(CACHE_FORMAT_VERSION as u64)),
        ("key", Json::Str(format!("{key:016x}"))),
        ("total_us", num(summary.total_us)),
        ("device_span_us", num(summary.device_span_us)),
        ("parent_us", num(summary.parent_us)),
        ("child_us", num(summary.child_us)),
        ("launch_us", num(summary.launch_us)),
        ("aggregation_us", num(summary.aggregation_us)),
        ("disaggregation_us", num(summary.disaggregation_us)),
        ("warp_avg_total_us", num(summary.warp_avg_total_us)),
        ("device_launches", uint(summary.device_launches)),
        ("host_launches", uint(summary.host_launches)),
        ("origin_cycles_total", uint(summary.origin_cycles_total)),
        ("instructions", uint(summary.instructions)),
        (
            "output_ints",
            Json::Array(summary.output_ints.iter().map(|&v| Json::Int(v)).collect()),
        ),
        (
            "output_floats",
            Json::Array(summary.output_floats.iter().map(|&v| num(v)).collect()),
        ),
    ]);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[dp-sweep] cannot create cache dir {}: {e}", dir.display());
        return;
    }
    let path = cell_path(dir, key);
    // Write-then-rename so concurrent workers and interrupted runs never
    // leave a torn file behind.
    let tmp = dir.join(format!("{key:016x}.tmp.{}", std::process::id()));
    if let Err(e) = std::fs::write(&tmp, value.to_string()) {
        eprintln!("[dp-sweep] cannot write {}: {e}", tmp.display());
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, &path) {
        eprintln!("[dp-sweep] cannot publish {}: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
    }
}

// ----------------------------------------------------------------------
// Cache eviction (GC)
// ----------------------------------------------------------------------

/// What [`gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Cell summaries found.
    pub entries: usize,
    /// Entries evicted (least recently used first).
    pub evicted: usize,
    /// Total bytes before eviction.
    pub bytes_before: u64,
    /// Total bytes after eviction.
    pub bytes_after: u64,
}

/// Prunes the cache directory down to `max_bytes`, evicting
/// **least-recently-used** cell summaries first (modification time is the
/// LRU clock: [`store`] stamps it and [`load`] refreshes it on every hit).
/// Ties break on file name so eviction order is deterministic. Stale
/// `*.tmp.*` files from interrupted writes are always removed. A missing
/// cache directory is an empty cache, not an error.
pub fn gc(dir: &Path, max_bytes: u64) -> std::io::Result<GcReport> {
    let mut report = GcReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let mut cells: Vec<(std::time::SystemTime, String, u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if !entry.file_type()?.is_file() {
            continue;
        }
        if name.contains(".tmp.") {
            // Torn write leftovers are garbage regardless of budget.
            let _ = std::fs::remove_file(&path);
            continue;
        }
        if !name.ends_with(".json") {
            continue;
        }
        let meta = entry.metadata()?;
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        cells.push((mtime, name, meta.len(), path));
    }
    report.entries = cells.len();
    report.bytes_before = cells.iter().map(|c| c.2).sum();
    report.bytes_after = report.bytes_before;
    if report.bytes_before <= max_bytes {
        return Ok(report);
    }
    // Oldest first; name tiebreak keeps eviction deterministic when a
    // filesystem's timestamps are coarse.
    cells.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    for (_, _, len, path) in cells {
        if report.bytes_after <= max_bytes {
            break;
        }
        std::fs::remove_file(&path)?;
        report.bytes_after -= len;
        report.evicted += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_workloads::datasets::DatasetId;

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    fn sample_dataset() -> DatasetSpec {
        DatasetSpec::Table {
            id: DatasetId::Kron,
            scale: 0.01,
            seed: 42,
        }
    }

    #[test]
    fn keys_separate_every_axis() {
        let base = cell_key(
            "BFS",
            "src",
            &Variant::Cdp(OptConfig::none()),
            &sample_dataset(),
            &TimingParams::default(),
            &CostModel::default(),
        );
        let variants: Vec<u64> = vec![
            cell_key(
                "BFS",
                "src2",
                &Variant::Cdp(OptConfig::none()),
                &sample_dataset(),
                &TimingParams::default(),
                &CostModel::default(),
            ),
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none().threshold(8)),
                &sample_dataset(),
                &TimingParams::default(),
                &CostModel::default(),
            ),
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none()),
                &DatasetSpec::Table {
                    id: DatasetId::Kron,
                    scale: 0.01,
                    seed: 43,
                },
                &TimingParams::default(),
                &CostModel::default(),
            ),
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none()),
                &sample_dataset(),
                &TimingParams {
                    device_launch_pipe_us: 0.0,
                    ..TimingParams::default()
                },
                &CostModel::default(),
            ),
            cell_key(
                "BFS",
                "src",
                &Variant::Cdp(OptConfig::none()),
                &sample_dataset(),
                &TimingParams::default(),
                &CostModel {
                    launch_presence_overhead: 0,
                    ..CostModel::default()
                },
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "axis {i} must invalidate the key");
        }
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let summary = CellSummary {
            label: "CDP".to_string(),
            total_us: 123.456789,
            device_span_us: 1.0 / 3.0,
            parent_us: 0.1,
            child_us: 0.2,
            launch_us: 0.3,
            aggregation_us: 0.0,
            disaggregation_us: 0.0,
            warp_avg_total_us: 99.5,
            device_launches: 12,
            host_launches: 3,
            origin_cycles_total: 9_007_199_254_740_993,
            instructions: 42,
            output_ints: vec![1, -2, 3],
            output_floats: vec![0.25, -1.5],
            verified: true,
            from_cache: false,
        };
        assert!(load(&dir, 7).is_none(), "empty cache misses");
        store(&dir, 7, &summary);
        let loaded = load(&dir, 7).expect("stored entry loads");
        assert_eq!(loaded.total_us.to_bits(), summary.total_us.to_bits());
        assert_eq!(
            loaded.device_span_us.to_bits(),
            summary.device_span_us.to_bits()
        );
        assert_eq!(loaded.origin_cycles_total, summary.origin_cycles_total);
        assert_eq!(loaded.output_ints, summary.output_ints);
        assert_eq!(loaded.output_floats, summary.output_floats);
        assert!(loaded.from_cache);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_summary(label: &str) -> CellSummary {
        CellSummary {
            label: label.to_string(),
            total_us: 1.0,
            device_span_us: 1.0,
            parent_us: 0.0,
            child_us: 0.0,
            launch_us: 0.0,
            aggregation_us: 0.0,
            disaggregation_us: 0.0,
            warp_avg_total_us: 1.0,
            device_launches: 0,
            host_launches: 1,
            origin_cycles_total: 1,
            instructions: 1,
            output_ints: vec![1, 2, 3],
            output_floats: vec![],
            verified: true,
            from_cache: false,
        }
    }

    fn set_age(dir: &Path, key: u64, seconds_ago: u64) {
        let f = std::fs::File::options()
            .write(true)
            .open(cell_path(dir, key))
            .unwrap();
        f.set_modified(std::time::SystemTime::now() - std::time::Duration::from_secs(seconds_ago))
            .unwrap();
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-gc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for key in [1u64, 2, 3] {
            store(&dir, key, &sample_summary("x"));
        }
        // Ages: key 2 oldest, then 1, then 3 (freshest).
        set_age(&dir, 1, 200);
        set_age(&dir, 2, 400);
        set_age(&dir, 3, 10);
        let entry_len = std::fs::metadata(cell_path(&dir, 1)).unwrap().len();

        // Budget for exactly one entry: the two stalest go, freshest stays.
        let report = gc(&dir, entry_len).unwrap();
        assert_eq!(report.entries, 3);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.bytes_before, 3 * entry_len);
        assert_eq!(report.bytes_after, entry_len);
        assert!(load(&dir, 2).is_none(), "oldest entry evicted");
        assert!(load(&dir, 1).is_none(), "second-oldest evicted");
        assert!(load(&dir, 3).is_some(), "freshest entry survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_hits_refresh_the_lru_clock() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-touch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store(&dir, 10, &sample_summary("a"));
        store(&dir, 11, &sample_summary("b"));
        set_age(&dir, 10, 500);
        set_age(&dir, 11, 100);
        // A hit on the stale entry makes it the freshest.
        assert!(load(&dir, 10).is_some());
        let entry_len = std::fs::metadata(cell_path(&dir, 10)).unwrap().len();
        let report = gc(&dir, entry_len).unwrap();
        assert_eq!(report.evicted, 1);
        assert!(load(&dir, 10).is_some(), "touched entry survives GC");
        assert!(load(&dir, 11).is_none(), "untouched entry was the LRU");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_handles_missing_dir_under_budget_and_tmp_files() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-gc-edge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Missing directory is an empty cache.
        let report = gc(&dir, 0).unwrap();
        assert_eq!(report, GcReport::default());
        // Under budget: nothing evicted, torn tmp files still removed.
        store(&dir, 1, &sample_summary("x"));
        std::fs::write(dir.join("deadbeef.tmp.999"), "torn").unwrap();
        let report = gc(&dir, u64::MAX).unwrap();
        assert_eq!(report.entries, 1);
        assert_eq!(report.evicted, 0);
        assert!(!dir.join("deadbeef.tmp.999").exists());
        assert!(load(&dir, 1).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_version_mismatch_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("dp-sweep-ver-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{:016x}.json", 9u64)), "{\"version\":0}").unwrap();
        assert!(load(&dir, 9).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
