//! A minimal JSON reader/writer for the result cache and sweep spec files.
//!
//! The build environment has no network access, so `serde_json` is not
//! available; this module implements exactly the subset the sweep engine
//! needs. Two properties matter beyond plain conformance:
//!
//! - **Exact float round-trips.** Floats are written with Rust's `{}`
//!   formatting, which emits the shortest decimal string that parses back
//!   to the identical bit pattern. Cached `CellSummary` values therefore
//!   reproduce cold-run output *byte for byte*.
//! - **Exact integers.** Number tokens without `.`/`e` parse as [`Json::Int`]
//!   (`i64`), so instruction and launch counters never pass through `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number token without a fraction or exponent.
    Int(i64),
    /// Any other number token.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Ordered map so output is deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an `f64` ([`Json::Int`] converts losslessly for the
    /// magnitudes the engine stores).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64` (exact non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// A member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                // `{}` is the shortest exact representation; integral floats
                // print without a fraction and would re-parse as Int, which
                // `as_f64` converts back losslessly — except -0.0, whose
                // `{}` form "-0" would reparse as integer 0 and lose the
                // sign bit, so it keeps an explicit fraction.
                assert!(v.is_finite(), "JSON cannot represent {v}");
                if v.to_bits() == (-0.0f64).to_bits() {
                    out.push_str("-0.0");
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization with deterministic member order
/// (`value.to_string()` comes from this impl).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Json::Object`] from key/value pairs.
pub fn object(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid token at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for the engine's
                        // ASCII-dominated payloads; reject rather than corrupt.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("unsupported \\u escape {hex}"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if float {
        token
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number `{token}`: {e}"))
    } else {
        token
            .parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad number `{token}`: {e}"))
    }
}

/// [`Json::Float`] from an `f64` (helper that keeps call sites short).
pub fn num(v: f64) -> Json {
    Json::Float(v)
}

/// [`Json::Int`] from a `u64`.
///
/// # Panics
///
/// Panics if the value exceeds `i64::MAX` (the engine's counters never do).
pub fn uint(v: u64) -> Json {
    Json::Int(i64::try_from(v).expect("counter fits i64"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a": [1, -2, 3.5], "b": {"c": true, "d": null}, "e": "x\"y\n"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1], Json::Int(-2));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y\n"));
        let reparsed = parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            123456.789012345,
            -2.2250738585072014e-308,
            9007199254740993.0,
            -0.0,
        ] {
            let text = Json::Float(x).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} → {text} → {back}");
        }
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = parse("[9007199254740993, -9007199254740993]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_i64(), Some(9_007_199_254_740_993));
        assert_eq!(items[1].as_i64(), Some(-9_007_199_254_740_993));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn object_builder_orders_members() {
        let v = object([("b", Json::Int(2)), ("a", Json::Int(1))]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":2}"#);
    }
}
