//! # dp-sim
//!
//! A trace-driven GPU timing simulator. `dp-vm` executes transformed
//! CUDA-subset programs functionally and records per-block warp cycles,
//! per-origin cycle attribution, and launch events; this crate replays that
//! trace against a V100-flavoured hardware model ([`TimingParams`]) to
//! produce end-to-end times and the execution-time breakdown of the paper's
//! Fig. 10.
//!
//! The three launch-path phenomena the paper's optimizations target all
//! emerge from the model rather than being hard-coded per optimization:
//!
//! 1. many concurrent device launches queue behind the grid-management
//!    pipe (congestion → thresholding and aggregation help),
//! 2. small grids occupy few resident-block slots (underutilization →
//!    aggregation helps),
//! 3. per-block dispatch and per-block disaggregation instructions scale
//!    with block count (→ coarsening helps).

pub mod model;
pub mod params;

pub use model::{simulate, Breakdown, GridTiming, HostEvent, SimResult};
pub use params::TimingParams;
