//! Hardware timing parameters (V100-flavoured defaults).

/// Timing model parameters.
///
/// Defaults approximate an NVIDIA V100 (the paper's evaluation GPU): 80
/// SMs, 2048 threads and 32 blocks per SM, ~1.38 GHz. The launch-path
/// constants are calibrated so the *relative* effects the paper reports
/// (launch congestion under many small grids, host round-trip cost of
/// grid-granularity aggregation) appear at comparable magnitudes; absolute
/// times are simulator time, not wall-clock measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Warp-instruction issue slots per SM per cycle (schedulers).
    pub issue_slots_per_sm: f64,
    /// Latency of a host-side kernel launch (µs).
    pub host_launch_latency_us: f64,
    /// Host↔device round-trip cost charged at each synchronization (µs).
    pub host_sync_overhead_us: f64,
    /// Service time of the grid-management unit per device-side launch
    /// (µs). Concurrent device launches queue behind this single pipe —
    /// the congestion effect central to the paper.
    pub device_launch_pipe_us: f64,
    /// Per-block dispatch cost of the work distribution engine (µs).
    pub block_dispatch_us: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            num_sms: 80,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            clock_ghz: 1.38,
            issue_slots_per_sm: 4.0,
            host_launch_latency_us: 6.5,
            host_sync_overhead_us: 4.0,
            device_launch_pipe_us: 1.1,
            block_dispatch_us: 0.02,
        }
    }
}

impl TimingParams {
    /// Converts device cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1000.0)
    }

    /// Total block slots on the device (each slot hosts
    /// `max_threads_per_sm / max_blocks_per_sm` threads).
    pub fn total_block_slots(&self) -> u64 {
        self.num_sms as u64 * self.max_blocks_per_sm as u64
    }

    /// Threads per block slot.
    pub fn threads_per_slot(&self) -> u64 {
        (self.max_threads_per_sm / self.max_blocks_per_sm) as u64
    }

    /// Slots a block of `threads` threads occupies.
    pub fn slots_for_block(&self, threads: u64) -> u64 {
        threads.div_ceil(self.threads_per_slot()).max(1)
    }

    /// Aggregate device issue throughput in cycles per µs (used to convert
    /// work-cycle totals into device-time for the breakdown bars).
    pub fn device_throughput_cycles_per_us(&self) -> f64 {
        self.num_sms as f64 * self.issue_slots_per_sm * self.clock_ghz * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_conversion() {
        let p = TimingParams {
            clock_ghz: 1.0,
            ..Default::default()
        };
        assert_eq!(p.cycles_to_us(1000), 1.0);
    }

    #[test]
    fn slot_math() {
        let p = TimingParams::default();
        assert_eq!(p.threads_per_slot(), 64);
        assert_eq!(p.slots_for_block(1), 1);
        assert_eq!(p.slots_for_block(64), 1);
        assert_eq!(p.slots_for_block(65), 2);
        assert_eq!(p.slots_for_block(1024), 16);
        assert_eq!(p.total_block_slots(), 80 * 32);
    }

    #[test]
    fn defaults_are_v100_scale() {
        let p = TimingParams::default();
        assert_eq!(p.num_sms, 80);
        assert!(p.device_launch_pipe_us > p.block_dispatch_us);
        assert!(p.host_launch_latency_us > p.device_launch_pipe_us);
    }
}
