//! Trace-driven discrete-event timing model.
//!
//! Replays an [`ExecutionTrace`] (plus the host-side event sequence)
//! against the hardware model in [`TimingParams`]:
//!
//! - **Block slots.** The device offers `num_sms × max_blocks_per_sm`
//!   resident-block slots; a block occupies slots proportional to its
//!   thread count. Small grids leave the device underutilized — the
//!   paper's second CDP pathology.
//! - **Launch pipe.** Device-side launches queue through a single
//!   grid-management pipe with fixed service time; tens of thousands of
//!   concurrent launches produce exactly the congestion the paper
//!   describes.
//! - **Block duration.** `max(critical warp cycles, total warp cycles /
//!   issue slots)` — the critical-warp term surfaces control divergence
//!   (e.g. over-serialization from a too-high threshold).
//! - **Host timeline.** Host launches and synchronizations advance a host
//!   clock; grid-granularity aggregation pays the host round trip here.

use crate::params::TimingParams;
use dp_frontend::ast::CodeOrigin;
use dp_vm::trace::{ExecutionTrace, LaunchOrigin};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Host-side actions in program order, recorded by the executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HostEvent {
    /// Host launched the grid with this trace id.
    Launch(usize),
    /// Host synchronized with the device (`cudaDeviceSynchronize`).
    Sync,
    /// Host performed the aggregated launch for a grid-granularity
    /// aggregation site (grid id of the aggregated child).
    AggLaunch(usize),
}

/// Timing of one grid.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GridTiming {
    /// When the grid became available to the block dispatcher (µs).
    pub ready_us: f64,
    /// When its first block started (µs).
    pub start_us: f64,
    /// When its last block finished (µs).
    pub end_us: f64,
}

/// Execution-time breakdown (paper Fig. 10 categories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Work executed by parent grids (including thresholding's serialized
    /// child work and threshold checks), in µs of device time.
    pub parent_us: f64,
    /// Work executed by child grids (including coarsening loop overhead).
    pub child_us: f64,
    /// Launch-path time: device launch pipe + host launch latencies +
    /// per-block dispatch.
    pub launch_us: f64,
    /// Aggregation logic (parent side).
    pub aggregation_us: f64,
    /// Disaggregation logic (child side).
    pub disaggregation_us: f64,
}

impl Breakdown {
    /// Sum of all categories.
    pub fn total(&self) -> f64 {
        self.parent_us
            + self.child_us
            + self.launch_us
            + self.aggregation_us
            + self.disaggregation_us
    }
}

/// Result of replaying a trace.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// End-to-end time from first host event to final completion (µs).
    pub total_us: f64,
    /// Sum of kernel-execution intervals (device busy span, µs).
    pub device_span_us: f64,
    /// Per-grid timings (indexed by grid id).
    pub grid_timings: Vec<GridTiming>,
    /// Work breakdown by category.
    pub breakdown: Breakdown,
    /// Number of device-side launches.
    pub device_launches: usize,
    /// Number of host-side launches.
    pub host_launches: usize,
}

/// Replays `trace` under `params`.
///
/// `host_events` must reference every host-launched grid in the trace in
/// program order; device-launched grids are timed from their parent block's
/// issue point through the launch pipe.
pub fn simulate(
    trace: &ExecutionTrace,
    host_events: &[HostEvent],
    params: &TimingParams,
) -> SimResult {
    let n = trace.grids.len();
    let mut timings = vec![GridTiming::default(); n];
    let mut scheduled = vec![false; n];

    // Resident-block slots as a min-heap of free times.
    let total_slots = params.total_block_slots() as usize;
    let mut slots: BinaryHeap<Reverse<OrderedF64>> = BinaryHeap::with_capacity(total_slots);
    for _ in 0..total_slots {
        slots.push(Reverse(OrderedF64(0.0)));
    }
    let mut dispatcher_free = 0.0f64;
    let mut pipe_free = 0.0f64;
    let mut host_clock = 0.0f64;
    let mut launch_pipe_busy_us = 0.0f64;
    let mut host_launch_us = 0.0f64;
    let mut dispatch_us = 0.0f64;

    // Grids must be scheduled in id order (parents before children); we
    // walk host events and schedule device-launched descendants eagerly.
    let mut pending_device: Vec<usize> = Vec::new();

    let schedule_grid = |gid: usize,
                         ready: f64,
                         timings: &mut Vec<GridTiming>,
                         slots: &mut BinaryHeap<Reverse<OrderedF64>>,
                         dispatcher_free: &mut f64,
                         dispatch_us: &mut f64| {
        let g = &trace.grids[gid];
        let threads = g.threads_per_block();
        let need = params.slots_for_block(threads).min(total_slots as u64) as usize;
        let mut start_min = ready;
        let mut grid_start = f64::INFINITY;
        let mut grid_end: f64 = ready;
        for block in &g.blocks {
            // Pop the `need` earliest-free slots.
            let mut popped = Vec::with_capacity(need);
            let mut avail: f64 = 0.0;
            for _ in 0..need {
                let Reverse(OrderedF64(t)) = slots.pop().expect("slot pool is non-empty");
                avail = avail.max(t);
                popped.push(t);
            }
            *dispatcher_free = dispatcher_free.max(start_min) + params.block_dispatch_us;
            *dispatch_us += params.block_dispatch_us;
            let start = start_min.max(avail).max(*dispatcher_free);
            let cycles = (block.critical_warp_cycles() as f64)
                .max(block.total_warp_cycles() as f64 / params.issue_slots_per_sm);
            let dur = cycles / (params.clock_ghz * 1000.0);
            let end = start + dur;
            for _ in 0..need {
                slots.push(Reverse(OrderedF64(end)));
            }
            grid_start = grid_start.min(start);
            grid_end = grid_end.max(end);
            start_min = ready; // blocks are independent once the grid is ready
        }
        if g.blocks.is_empty() {
            grid_start = ready;
        }
        timings[gid] = GridTiming {
            ready_us: ready,
            start_us: grid_start,
            end_us: grid_end,
        };
    };

    // Process: walk host events; after each host-scheduled grid, flush any
    // device-launched grids whose parents are scheduled (ids ascend, so a
    // single forward scan suffices).
    let flush = |pending: &mut Vec<usize>,
                 timings: &mut Vec<GridTiming>,
                 scheduled: &mut Vec<bool>,
                 slots: &mut BinaryHeap<Reverse<OrderedF64>>,
                 dispatcher_free: &mut f64,
                 pipe_free: &mut f64,
                 pipe_busy: &mut f64,
                 dispatch_us: &mut f64| {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < pending.len() {
                let gid = pending[i];
                let LaunchOrigin::Device {
                    parent_grid,
                    parent_block,
                    issue_cycles,
                } = trace.grids[gid].origin
                else {
                    unreachable!("pending grids are device-launched")
                };
                if scheduled[parent_grid] {
                    // Issue time: parent block start + offset within block.
                    let parent_timing = timings[parent_grid];
                    let block_start = parent_timing.start_us.max(parent_timing.ready_us);
                    let _ = parent_block;
                    let issue = block_start + params.cycles_to_us(issue_cycles);
                    *pipe_free = pipe_free.max(issue) + params.device_launch_pipe_us;
                    *pipe_busy += params.device_launch_pipe_us;
                    let ready = *pipe_free;
                    schedule_grid(gid, ready, timings, slots, dispatcher_free, dispatch_us);
                    scheduled[gid] = true;
                    pending.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
    };

    // Collect device-launched grids up front (in id order).
    for g in &trace.grids {
        if g.origin.is_device() {
            pending_device.push(g.id);
        }
    }

    let mut completed_max = 0.0f64;
    for event in host_events {
        match event {
            HostEvent::Launch(gid) | HostEvent::AggLaunch(gid) => {
                host_clock += params.host_launch_latency_us;
                host_launch_us += params.host_launch_latency_us;
                schedule_grid(
                    *gid,
                    host_clock,
                    &mut timings,
                    &mut slots,
                    &mut dispatcher_free,
                    &mut dispatch_us,
                );
                scheduled[*gid] = true;
                flush(
                    &mut pending_device,
                    &mut timings,
                    &mut scheduled,
                    &mut slots,
                    &mut dispatcher_free,
                    &mut pipe_free,
                    &mut launch_pipe_busy_us,
                    &mut dispatch_us,
                );
            }
            HostEvent::Sync => {
                flush(
                    &mut pending_device,
                    &mut timings,
                    &mut scheduled,
                    &mut slots,
                    &mut dispatcher_free,
                    &mut pipe_free,
                    &mut launch_pipe_busy_us,
                    &mut dispatch_us,
                );
                let device_done = timings
                    .iter()
                    .zip(&scheduled)
                    .filter(|(_, s)| **s)
                    .map(|(t, _)| t.end_us)
                    .fold(0.0f64, f64::max);
                host_clock = host_clock.max(device_done) + params.host_sync_overhead_us;
            }
        }
    }
    // Final flush for any grids launched after the last sync.
    flush(
        &mut pending_device,
        &mut timings,
        &mut scheduled,
        &mut slots,
        &mut dispatcher_free,
        &mut pipe_free,
        &mut launch_pipe_busy_us,
        &mut dispatch_us,
    );
    for t in &timings {
        completed_max = completed_max.max(t.end_us);
    }
    let total_us = host_clock.max(completed_max);

    // Work breakdown (device-throughput-normalized, plus launch path).
    let throughput = params.device_throughput_cycles_per_us();
    let mut breakdown = Breakdown {
        launch_us: launch_pipe_busy_us + host_launch_us + dispatch_us,
        ..Default::default()
    };
    for g in &trace.grids {
        let oc = g.origin_cycles();
        let is_child = g.origin.is_device() || g.kernel.ends_with("_agg");
        let original = oc.get(CodeOrigin::Original) as f64 / throughput;
        let coarsen = oc.get(CodeOrigin::CoarsenLoop) as f64 / throughput;
        if is_child {
            breakdown.child_us += original + coarsen;
        } else {
            breakdown.parent_us += original + coarsen;
        }
        breakdown.parent_us += (oc.get(CodeOrigin::ThresholdCheck)
            + oc.get(CodeOrigin::ThresholdSerial)) as f64
            / throughput;
        breakdown.aggregation_us += oc.get(CodeOrigin::AggLogic) as f64 / throughput;
        breakdown.disaggregation_us += oc.get(CodeOrigin::DisaggLogic) as f64 / throughput;
    }

    SimResult {
        total_us,
        device_span_us: completed_max,
        grid_timings: timings,
        breakdown,
        device_launches: trace.device_launches(),
        host_launches: trace.host_launches(),
    }
}

/// f64 wrapper with total ordering for the slot heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_vm::trace::*;

    fn block(cycles: u64) -> BlockTrace {
        BlockTrace {
            warp_cycles: vec![cycles],
            origin_cycles: {
                let mut oc = OriginCycles::default();
                oc.add(CodeOrigin::Original, cycles);
                oc
            },
            launches: vec![],
            instructions: cycles,
        }
    }

    fn host_grid(id: usize, blocks: usize, cycles: u64) -> GridTrace {
        GridTrace {
            id,
            kernel: "k".into(),
            grid_dim: [blocks as i64, 1, 1],
            block_dim: [32, 1, 1],
            origin: LaunchOrigin::Host,
            blocks: (0..blocks).map(|_| block(cycles)).collect(),
        }
    }

    fn device_grid(id: usize, parent: usize, blocks: usize, cycles: u64) -> GridTrace {
        GridTrace {
            id,
            kernel: "c".into(),
            grid_dim: [blocks as i64, 1, 1],
            block_dim: [32, 1, 1],
            origin: LaunchOrigin::Device {
                parent_grid: parent,
                parent_block: 0,
                issue_cycles: 100,
            },
            blocks: (0..blocks).map(|_| block(cycles)).collect(),
        }
    }

    #[test]
    fn single_grid_time_includes_launch_latency() {
        let trace = ExecutionTrace {
            grids: vec![host_grid(0, 1, 1380)],
        };
        let params = TimingParams::default();
        let r = simulate(&trace, &[HostEvent::Launch(0), HostEvent::Sync], &params);
        // 1380 cycles at 1.38GHz = 1µs, plus launch 6.5 + sync 4.
        assert!((r.total_us - 11.5).abs() < 0.2, "total: {}", r.total_us);
    }

    #[test]
    fn launch_pipe_congestion_grows_linearly() {
        // One parent block issuing many tiny child grids.
        let make_trace = |n_children: usize| {
            let mut grids = vec![host_grid(0, 1, 1000)];
            for i in 0..n_children {
                grids.push(device_grid(1 + i, 0, 1, 10));
            }
            ExecutionTrace { grids }
        };
        let params = TimingParams::default();
        let few = simulate(
            &make_trace(10),
            &[HostEvent::Launch(0), HostEvent::Sync],
            &params,
        );
        let many = simulate(
            &make_trace(1000),
            &[HostEvent::Launch(0), HostEvent::Sync],
            &params,
        );
        let ratio = many.total_us / few.total_us;
        assert!(
            ratio > 20.0,
            "1000 launches should be much slower than 10: {} vs {} (ratio {ratio})",
            many.total_us,
            few.total_us
        );
    }

    #[test]
    fn one_big_grid_beats_many_small_ones() {
        // Same total work: 1024 blocks in one grid vs 1024 grids of 1 block.
        let params = TimingParams::default();
        let one = {
            let mut grids = vec![host_grid(0, 1, 100)];
            grids.push(device_grid(1, 0, 1024, 1000));
            ExecutionTrace { grids }
        };
        let many = {
            let mut grids = vec![host_grid(0, 1, 100)];
            for i in 0..1024 {
                grids.push(device_grid(1 + i, 0, 1, 1000));
            }
            ExecutionTrace { grids }
        };
        let events = [HostEvent::Launch(0), HostEvent::Sync];
        let t_one = simulate(&one, &events, &params).total_us;
        let t_many = simulate(&many, &events, &params).total_us;
        assert!(
            t_many > 3.0 * t_one,
            "aggregated grid should be much faster: {t_one} vs {t_many}"
        );
    }

    #[test]
    fn device_capacity_limits_parallelism() {
        // 5120 blocks of 64 threads need 2 waves on 2560 slots.
        let params = TimingParams::default();
        let mk = |blocks: usize| ExecutionTrace {
            grids: vec![GridTrace {
                id: 0,
                kernel: "k".into(),
                grid_dim: [blocks as i64, 1, 1],
                block_dim: [64, 1, 1],
                origin: LaunchOrigin::Host,
                blocks: (0..blocks).map(|_| block(13_800)).collect(), // 10µs each
            }],
        };
        let events = [HostEvent::Launch(0), HostEvent::Sync];
        let half = simulate(&mk(2560), &events, &params).device_span_us;
        let full = simulate(&mk(5120), &events, &params).device_span_us;
        assert!(
            full > 1.7 * half,
            "two waves should take ~2x one wave: {half} vs {full}"
        );
    }

    #[test]
    fn sync_advances_host_clock() {
        let trace = ExecutionTrace {
            grids: vec![host_grid(0, 1, 1380), host_grid(1, 1, 1380)],
        };
        let params = TimingParams::default();
        let r = simulate(
            &trace,
            &[
                HostEvent::Launch(0),
                HostEvent::Sync,
                HostEvent::Launch(1),
                HostEvent::Sync,
            ],
            &params,
        );
        // Two sequential launch+run+sync rounds.
        assert!((r.total_us - 23.0).abs() < 0.5, "total: {}", r.total_us);
    }

    #[test]
    fn breakdown_attributes_categories() {
        let mut g = host_grid(0, 1, 1000);
        g.blocks[0].origin_cycles.add(CodeOrigin::AggLogic, 500);
        g.blocks[0]
            .origin_cycles
            .add(CodeOrigin::ThresholdSerial, 200);
        let mut c = device_grid(1, 0, 1, 300);
        c.kernel = "child_agg".into();
        c.blocks[0].origin_cycles.add(CodeOrigin::DisaggLogic, 100);
        let trace = ExecutionTrace { grids: vec![g, c] };
        let params = TimingParams::default();
        let r = simulate(&trace, &[HostEvent::Launch(0), HostEvent::Sync], &params);
        assert!(r.breakdown.parent_us > 0.0);
        assert!(r.breakdown.child_us > 0.0);
        assert!(r.breakdown.aggregation_us > 0.0);
        assert!(r.breakdown.disaggregation_us > 0.0);
        assert!(r.breakdown.launch_us > 0.0);
    }

    #[test]
    fn grid_timings_are_causally_ordered() {
        let trace = ExecutionTrace {
            grids: vec![host_grid(0, 4, 5000), device_grid(4, 0, 2, 100)],
        };
        // Fix ids: device grid id must be 1.
        let mut trace = trace;
        trace.grids[1].id = 1;
        let params = TimingParams::default();
        let r = simulate(&trace, &[HostEvent::Launch(0), HostEvent::Sync], &params);
        let parent = r.grid_timings[0];
        let child = r.grid_timings[1];
        assert!(child.ready_us > parent.start_us);
        assert!(child.end_us <= r.total_us);
    }
}
