//! Acceptance test for span-correlated tracing: a serve request's trace
//! must form a **connected** span tree — `serve.request` → `pool.job` →
//! `sweep.cell` / `vm.run` — even though those spans open on different
//! threads (the session thread, a request thread, and wherever the pool
//! runs the job, including the inline degrade on zero-worker pools).
//!
//! The tree is asserted from *start* events only: a start event carries
//! the span's parent id, and every start is on disk before the response
//! that depends on it is delivered, so the file is complete for our
//! purposes once the shutdown round-trip returns.

use dp_serve::proto::{bare_request, Endpoint};
use dp_serve::{Client, ServeOptions, Server};
use dp_sweep::json::{self, Json};
use std::collections::HashMap;

const SRC: &str = "__global__ void child(int* d, int n) { \
     int i = blockIdx.x * blockDim.x + threadIdx.x; \
     if (i < n) { atomicAdd(&d[i], 1); } }\n\
 __global__ void parent(int* d, int* offsets, int numV) { \
     int v = blockIdx.x * blockDim.x + threadIdx.x; \
     if (v < numV) { \
         int count = offsets[v + 1] - offsets[v]; \
         if (count > 0) { child<<<(count + 31) / 32, 32>>>(d, count); } } }";

fn execute_line(id: u64) -> String {
    let src = Json::Str(SRC.to_string()).to_string();
    format!(
        r#"{{"op":"execute","source":{src},"kernel":"parent","grid":2,"block":4,"buffers":[{{"name":"d","words":8}},{{"name":"offs","ints":[0,3,4,8,9,11,12]}}],"args":["@d","@offs",6],"read":[{{"buffer":"d","len":8}}],"id":{id}}}"#
    )
}

fn sweep_cell_line(id: u64) -> String {
    format!(
        r#"{{"op":"sweep-cell","benchmark":"BFS","dataset":{{"id":"KRON","scale":0.002,"seed":42}},"variant":{{"label":"CDP"}},"id":{id}}}"#
    )
}

/// A parsed start event: (name, parent id).
fn parse_starts(text: &str) -> HashMap<u64, (String, u64)> {
    let mut spans = HashMap::new();
    for line in text.lines() {
        let Ok(event) = json::parse(line) else {
            continue; // a live writer may leave one torn trailing line
        };
        if event.get("ev").and_then(Json::as_str) != Some("start") {
            continue;
        }
        let id = event.get("id").and_then(Json::as_u64).unwrap_or(0);
        let parent = event.get("parent").and_then(Json::as_u64).unwrap_or(0);
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        spans.insert(id, (name, parent));
    }
    spans
}

/// Walks ancestors of `id` and returns their names root-last.
fn ancestry(spans: &HashMap<u64, (String, u64)>, mut id: u64) -> Vec<String> {
    let mut names = Vec::new();
    let mut hops = 0;
    while id != 0 && hops < 64 {
        let Some((name, parent)) = spans.get(&id) else {
            break;
        };
        names.push(name.clone());
        id = *parent;
        hops += 1;
    }
    names
}

/// True if some span named `leaf` has `pool.job` and then `serve.request`
/// among its ancestors (in that order walking rootward).
fn has_connected_chain(spans: &HashMap<u64, (String, u64)>, leaf: &str) -> bool {
    spans.iter().any(|(&id, (name, _))| {
        if name != leaf {
            return false;
        }
        let chain = ancestry(spans, id);
        let job = chain.iter().position(|n| n == "pool.job");
        let request = chain.iter().position(|n| n == "serve.request");
        matches!((job, request), (Some(j), Some(r)) if j < r)
    })
}

#[test]
fn serve_request_trace_is_a_connected_tree() {
    let path = std::env::temp_dir().join(format!("dpopt-span-tree-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // Programmatic install must win over any DPOPT_TRACE in the ambient
    // environment: nothing in this binary has opened a span yet, so the
    // lazy env pickup has not run.
    dp_obs::trace::init_to(path.to_str().expect("utf-8 temp path")).expect("install trace sink");
    assert!(dp_obs::trace::active(), "sink installed");

    let server = Server::bind(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        &ServeOptions::default(),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let serving = std::thread::spawn(move || server.serve().expect("serve"));

    let mut client = Client::connect(&endpoint).expect("connect");
    let executed = client
        .roundtrip_line(&execute_line(1))
        .expect("round-trip")
        .expect("execute response");
    assert!(executed.contains(r#""ok":true"#), "{executed}");
    let cell = client
        .roundtrip_line(&sweep_cell_line(2))
        .expect("round-trip")
        .expect("sweep-cell response");
    assert!(cell.contains(r#""ok":true"#), "{cell}");
    client
        .request(&bare_request("shutdown"))
        .expect("shutdown drains in-flight work");
    serving.join().expect("server thread");

    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let spans = parse_starts(&text);
    assert!(
        spans.values().any(|(name, _)| name == "serve.request"),
        "no serve.request span in:\n{text}"
    );
    assert!(
        has_connected_chain(&spans, "vm.run"),
        "no vm.run → pool.job → serve.request chain in:\n{text}"
    );
    assert!(
        has_connected_chain(&spans, "sweep.cell"),
        "no sweep.cell → pool.job → serve.request chain in:\n{text}"
    );
    let _ = std::fs::remove_file(&path);
}
