//! The single stderr funnel for diagnostic logging.
//!
//! Every debug knob in the workspace (`DPOPT_PAR_DEBUG` overlap logs,
//! serve fault-arming notices, cache write warnings, bench progress
//! notes) routes through [`diag!`](crate::diag!) instead of a bare
//! `eprintln!`. The point is auditability of the determinism contracts:
//! stdout byte-identity is enforced by grep (one macro to look for) and
//! by the stdout-purity regression test (a sweep with every debug env var
//! set must print identical stdout) — neither works if diagnostics can
//! leak out through arbitrary call sites.
//!
//! Deliberately minimal: no levels, no filtering, no timestamps.
//! Diagnostics here are already opt-in behind their own env vars; the
//! helper's one job is *where* they go (stderr, always), not *whether*.

/// Writes one diagnostic line to stderr. Prefer the [`diag!`](crate::diag!)
/// macro, which formats in place.
pub fn emit(args: std::fmt::Arguments<'_>) {
    eprintln!("{args}");
}

/// `eprintln!`-compatible diagnostic logging that can only ever reach
/// stderr. `dp_obs::diag!("[dp-sweep] run {label}")`.
#[macro_export]
macro_rules! diag {
    ($($arg:tt)*) => {
        $crate::diag::emit(::std::format_args!($($arg)*))
    };
}
