//! `dp-obs` — the one observability layer for the whole workspace.
//!
//! Three surfaces, all **off the deterministic stdout/response paths**
//! (the standing invariant: instrumentation may write only to the
//! in-process registry, to stderr, or to the `DPOPT_TRACE` file — never
//! to stdout or into a response body):
//!
//! - [`metrics`] — a process-wide registry of lock-free sharded counters
//!   and fixed-bucket latency histograms. Off by default; when disabled
//!   every record call is a branch on a static. Enabled by
//!   `DPOPT_METRICS=1` (via [`metrics::init_from_env`]), programmatically
//!   by the serve daemon at bind, and by the bench binaries.
//! - [`trace`] — span-correlated structured tracing. `DPOPT_TRACE=<path>`
//!   appends JSONL start/end events; span ids flow across threads via
//!   [`trace::TraceCtx`] so a serve request's span parents the pool job
//!   that parents the sweep cell / VM grid it runs. Post-process with
//!   `dpopt trace-report`.
//! - [`diag`] — the single stderr funnel for diagnostic logging
//!   (`DPOPT_PAR_DEBUG` overlap logs, serve fault-arming notices, cache
//!   warnings). Routing every debug knob through one helper is what lets
//!   the stdout-purity regression test assert that no combination of
//!   debug env vars can ever pollute a byte-identical stdout contract.

pub mod diag;
pub mod metrics;
pub mod trace;

/// Appends `s` to `out` as a JSON string literal (quotes included),
/// escaping per RFC 8259. Shared by the metrics snapshot renderer and the
/// trace event writer so both emit parseable JSON without a serializer
/// dependency.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
