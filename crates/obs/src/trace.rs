//! Span-correlated structured tracing.
//!
//! Off unless a sink is installed — either `DPOPT_TRACE=<path>` in the
//! environment (picked up lazily on the first span) or a programmatic
//! [`init_to`]. While off, [`span`] is a relaxed load and returns an
//! inert guard; nothing allocates.
//!
//! While on, each [`span`] emits one JSONL *start* event when created and
//! one *end* event when dropped, to the trace file only (never stdout —
//! the byte-identity suites run with tracing fully enabled):
//!
//! ```json
//! {"ev":"start","id":7,"parent":3,"name":"pool.job","t_us":1042}
//! {"ev":"start","id":8,"parent":7,"name":"sweep.cell","t_us":1055,
//!  "attrs":{"benchmark":"bfs"}}
//! {"ev":"end","id":8,"t_us":2100}
//! ```
//!
//! `id` is unique per process run; `parent` is the span current on the
//! *creating* thread (0 = root); `t_us` is microseconds since the sink
//! was installed. The file opens in append mode, so several processes
//! (a test harness and its server child, a CI matrix) can share one path.
//!
//! Parentage crosses threads explicitly: capture [`current_ctx`] where
//! the work is *submitted*, [`TraceCtx::enter`] it where the work *runs*.
//! `dp-pool` does this for every job, which is how a serve request's span
//! parents the pool job that parents the sweep cell / VM grid.

use std::cell::Cell;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static SINK: OnceLock<Mutex<File>> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(path) = std::env::var("DPOPT_TRACE") {
            if !path.is_empty() {
                if let Err(e) = init_to(&path) {
                    crate::diag!("[dp-obs] cannot open DPOPT_TRACE={path}: {e}");
                }
            }
        }
    });
}

/// Installs the trace sink at `path` (created if missing, appended to if
/// present). First installation wins; later calls — including the lazy
/// `DPOPT_TRACE` pickup — are no-ops.
pub fn init_to(path: &str) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    if SINK.set(Mutex::new(file)).is_ok() {
        let _ = EPOCH.set(Instant::now());
        ACTIVE.store(true, Ordering::Release);
    }
    Ok(())
}

/// Whether a trace sink is installed (checking the environment on first
/// call).
#[inline]
pub fn active() -> bool {
    ensure_env_init();
    ACTIVE.load(Ordering::Relaxed)
}

fn t_us() -> u64 {
    EPOCH
        .get()
        .map(|e| e.elapsed().as_micros() as u64)
        .unwrap_or(0)
}

fn emit(line: &str) {
    if let Some(sink) = SINK.get() {
        let mut file = sink.lock().unwrap();
        // One write per line keeps appends from interleaving across
        // processes sharing the file.
        let _ = file.write_all(line.as_bytes());
    }
}

// ----------------------------------------------------------------------
// Spans
// ----------------------------------------------------------------------

/// An open span: emits its end event and restores the thread's previous
/// current span on drop. Inert (id 0) while tracing is off.
#[must_use = "dropping the span immediately ends it"]
pub struct Span {
    id: u64,
    prev: u64,
}

impl Span {
    /// The span's id, 0 if tracing is off — feed to nothing; spans
    /// propagate via [`current_ctx`], this accessor exists for tests.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        CURRENT.with(|c| c.set(self.prev));
        emit(&format!(
            "{{\"ev\":\"end\",\"id\":{},\"t_us\":{}}}\n",
            self.id,
            t_us()
        ));
    }
}

/// Opens a span named `name`, parented to the thread's current span, and
/// makes it current until the guard drops.
#[inline]
pub fn span(name: &str) -> Span {
    span_with(name, &[])
}

/// [`span`] with `attrs` rendered into the start event as a string map.
pub fn span_with(name: &str, attrs: &[(&str, &str)]) -> Span {
    if !active() {
        return Span { id: 0, prev: 0 };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.replace(id));
    let mut line = String::with_capacity(96);
    line.push_str("{\"ev\":\"start\",\"id\":");
    line.push_str(&id.to_string());
    line.push_str(",\"parent\":");
    line.push_str(&prev.to_string());
    line.push_str(",\"name\":");
    crate::push_json_str(&mut line, name);
    line.push_str(",\"t_us\":");
    line.push_str(&t_us().to_string());
    if !attrs.is_empty() {
        line.push_str(",\"attrs\":{");
        for (i, (k, v)) in attrs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            crate::push_json_str(&mut line, k);
            line.push(':');
            crate::push_json_str(&mut line, v);
        }
        line.push('}');
    }
    line.push_str("}\n");
    emit(&line);
    Span { id, prev }
}

// ----------------------------------------------------------------------
// Cross-thread propagation
// ----------------------------------------------------------------------

/// A captured span context — the submitting thread's current span id.
/// `Copy`, so closures capture it for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx(u64);

impl TraceCtx {
    /// The empty context (root parentage).
    pub const NONE: TraceCtx = TraceCtx(0);

    /// Makes this context the running thread's current span until the
    /// guard drops. Spans opened under the guard parent to the captured
    /// span even though they run on a different thread.
    pub fn enter(self) -> CtxGuard {
        CtxGuard {
            prev: CURRENT.with(|c| c.replace(self.0)),
        }
    }
}

/// Captures the current thread's span context for hand-off to another
/// thread. Cheap (a thread-local read) and always safe to call.
#[inline]
pub fn current_ctx() -> TraceCtx {
    if !ACTIVE.load(Ordering::Relaxed) {
        return TraceCtx::NONE;
    }
    TraceCtx(CURRENT.with(|c| c.get()))
}

/// Restores the previous current span on drop (see [`TraceCtx::enter`]).
#[must_use = "dropping the guard exits the context"]
pub struct CtxGuard {
    prev: u64,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_tracing_is_inert() {
        if active() {
            // Someone exported DPOPT_TRACE into this test run; the inert
            // path is not reachable.
            return;
        }
        // No sink installed: spans are id-0 and the thread-local stays
        // untouched.
        let outer = span("outer");
        assert_eq!(outer.id(), 0);
        assert_eq!(current_ctx(), TraceCtx::NONE);
        let _guard = current_ctx().enter();
        drop(outer);
    }
}
