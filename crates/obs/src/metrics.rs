//! The process-wide metrics registry: sharded counters and fixed-bucket
//! latency histograms.
//!
//! Design constraints (all load-bearing for the serve hot path):
//!
//! - **Disabled cost is a branch on a static.** Every record call starts
//!   with a relaxed load of one `AtomicBool`; until something calls
//!   [`enable`] (or `DPOPT_METRICS=1` via [`init_from_env`]) that is the
//!   entire cost.
//! - **No allocation on the hot path.** Handles are `static` items
//!   ([`Counter::new`] / [`Histogram::new`] are `const fn`); recording is
//!   a relaxed `fetch_add` on a pre-sized atomic. The only lock in the
//!   module guards *registration* — the first touch of each handle pushes
//!   it into the global registry, once, behind a [`Once`].
//! - **Sharded counters.** Each counter spreads increments over
//!   cache-line-padded shards indexed by a per-thread slot, so the serve
//!   session threads and pool workers do not bounce one line.
//! - **Fixed buckets.** Histograms bucket microseconds by powers of two
//!   (`le` = 1µs, 2µs, … 2^25µs ≈ 33.5s, plus an overflow bucket), so
//!   p50/p90/p99 are derivable from a snapshot without recording having
//!   ever allocated or sorted.
//!
//! Snapshots ([`snapshot`]) are read-side only and deterministic in
//! *shape*: names sort lexicographically, buckets render sparse
//! (`[le, count]` pairs, overflow `le` = -1). Values are live traffic —
//! which is exactly why the serve `metrics` op joins `stats` in the
//! determinism-contract exemption.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

// ----------------------------------------------------------------------
// Global enable switch
// ----------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is on. This is the branch every disabled-path record
/// call reduces to.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on for the rest of the process. Idempotent; there is
/// deliberately no `disable` (half-recorded histograms mislead).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Enables recording if `DPOPT_METRICS` is set to anything but `0` or the
/// empty string. Front-ends call this once at startup; the serve daemon
/// and the bench binaries call [`enable`] unconditionally instead.
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| match std::env::var("DPOPT_METRICS") {
        Ok(v) if !v.is_empty() && v != "0" => enable(),
        _ => {}
    });
}

/// `Some(Instant::now())` when recording is on, `None` otherwise — the
/// idiom for timing a region without paying for the clock when disabled:
///
/// ```ignore
/// let t = metrics::now();
/// do_work();
/// HIST.record_since(t);
/// ```
#[inline]
pub fn now() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
    })
}

/// Shards per counter. Eight covers the worker counts this system runs at
/// (the pool budget is per-CPU) without bloating every counter static.
const SHARDS: usize = 8;

/// Per-thread shard slot: threads round-robin over shards at first touch,
/// so two busy threads rarely share a cache line.
#[inline]
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SLOT.with(|s| *s)
}

/// One cache line per shard so `fetch_add`s from different threads do not
/// false-share.
#[repr(align(64))]
struct Pad(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)]
const PAD_ZERO: Pad = Pad(AtomicU64::new(0));

// ----------------------------------------------------------------------
// Counter
// ----------------------------------------------------------------------

/// A monotonically increasing, sharded counter. Declare as a `static` and
/// call [`Counter::add`] / [`Counter::incr`] from any thread.
pub struct Counter {
    name: &'static str,
    shards: [Pad; SHARDS],
    registered: Once,
}

impl Counter {
    /// A counter handle. `name` is its registry key — dotted lowercase by
    /// convention (`pool.jobs.queued`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            shards: [PAD_ZERO; SHARDS],
            registered: Once::new(),
        }
    }

    /// Adds `n`. A no-op branch while recording is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.registered
            .call_once(|| registry().counters.lock().unwrap().push(self));
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

// ----------------------------------------------------------------------
// Labeled counters
// ----------------------------------------------------------------------

/// A counter whose name is composed at runtime: `<base>.<label>.<suffix>`
/// with `label` sanitized to the registry's dotted-lowercase convention
/// (every character outside `[a-z0-9]` becomes `_`). The first call for a
/// given composed name leaks one `Counter` (and its name) to obtain the
/// `&'static` handle the recording API requires; subsequent calls return
/// the same handle from a dedup map. The leak is bounded by the number of
/// distinct labels the process ever sees — for the fleet scheduler that is
/// one handful per daemon endpoint.
pub fn labeled_counter(base: &str, label: &str, suffix: &str) -> &'static Counter {
    static BY_NAME: OnceLock<Mutex<BTreeMap<String, &'static Counter>>> = OnceLock::new();
    let name = format!("{base}.{}.{suffix}", sanitize_label(label));
    let mut map = BY_NAME
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap();
    if let Some(c) = map.get(&name) {
        return c;
    }
    let leaked_name: &'static str = Box::leak(name.clone().into_boxed_str());
    let counter: &'static Counter = Box::leak(Box::new(Counter::new(leaked_name)));
    map.insert(name, counter);
    counter
}

/// Lowercases `label` and folds everything outside `[a-z0-9]` to `_`, so
/// `127.0.0.1:7477` becomes `127_0_0_1_7477` — one dotted-name segment,
/// not five.
fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            let c = c.to_ascii_lowercase();
            if c.is_ascii_alphanumeric() {
                c
            } else {
                '_'
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// Histogram
// ----------------------------------------------------------------------

/// Power-of-two bucket upper bounds in microseconds: bucket `k` holds
/// samples in `(2^(k-1), 2^k]` (bucket 0 holds `0..=1`), bucket
/// [`OVERFLOW_BUCKET`] holds everything above `2^25`µs (~33.5s).
pub const NUM_BUCKETS: usize = 27;
const OVERFLOW_BUCKET: usize = NUM_BUCKETS - 1;

#[inline]
fn bucket_for(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        let ceil_log2 = 64 - (us - 1).leading_zeros() as usize;
        ceil_log2.min(OVERFLOW_BUCKET)
    }
}

/// The upper bound (`le`) of bucket `idx`, or `None` for the overflow
/// bucket.
pub fn bucket_bound_us(idx: usize) -> Option<u64> {
    if idx < OVERFLOW_BUCKET {
        Some(1u64 << idx)
    } else {
        None
    }
}

/// A fixed-bucket latency histogram in microseconds. Declare as a
/// `static`; record with [`Histogram::record_us`] or the
/// [`now`]/[`Histogram::record_since`] pair.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_us: AtomicU64,
    max_us: AtomicU64,
    registered: Once,
}

impl Histogram {
    /// A histogram handle; `name` conventionally ends in `_us`.
    pub const fn new(name: &'static str) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; NUM_BUCKETS],
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// Records one sample. A no-op branch while recording is disabled.
    #[inline]
    pub fn record_us(&'static self, us: u64) {
        if !enabled() {
            return;
        }
        self.registered
            .call_once(|| registry().histograms.lock().unwrap().push(self));
        self.buckets[bucket_for(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records the time since `start` (the [`now`] idiom). `None` — the
    /// disabled case — records nothing.
    #[inline]
    pub fn record_since(&'static self, start: Option<Instant>) {
        if let Some(t) = start {
            self.record_us(t.elapsed().as_micros() as u64);
        }
    }
}

// ----------------------------------------------------------------------
// Snapshots
// ----------------------------------------------------------------------

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_us: u64,
    /// Largest single sample in microseconds.
    pub max_us: u64,
    /// Sparse buckets: `(le_us, count)` for non-empty buckets, in bound
    /// order; the overflow bucket reports `le_us == u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding that rank — an over-estimate by at most one bucket width.
    /// The overflow bucket reports `max_us`. Zero samples → 0.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(le, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return if le == u64::MAX { self.max_us } else { le };
            }
        }
        self.max_us
    }
}

/// A point-in-time copy of the whole registry. Only handles that have
/// been touched while recording was enabled appear.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// A counter's value, or 0 if it has never been touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the snapshot as one line of deterministic-shape JSON:
    ///
    /// ```json
    /// {"counters":{"name":N,...},
    ///  "histograms":{"name":{"buckets":[[le_us,count],...],"count":N,
    ///                        "max_us":N,"p50_us":N,"p90_us":N,
    ///                        "p99_us":N,"sum_us":N},...}}
    /// ```
    ///
    /// Names sort lexicographically; buckets are sparse with the overflow
    /// bucket's `le_us` rendered as `-1`. The output parses with
    /// `dp_sweep::json` (it is the body of the serve `metrics` op).
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::push_json_str(&mut out, name);
            out.push_str(":{\"buckets\":[");
            for (j, &(le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                if le == u64::MAX {
                    out.push_str(&format!("[-1,{n}]"));
                } else {
                    out.push_str(&format!("[{le},{n}]"));
                }
            }
            out.push_str(&format!(
                "],\"count\":{},\"max_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"sum_us\":{}}}",
                h.count,
                h.max_us,
                h.quantile_us(0.50),
                h.quantile_us(0.90),
                h.quantile_us(0.99),
                h.sum_us,
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Snapshots every registered counter and histogram. Read-side only;
/// concurrent recording keeps going (totals are a consistent-enough relaxed
/// read, not a stop-the-world cut).
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut counters = BTreeMap::new();
    for c in reg.counters.lock().unwrap().iter() {
        counters.insert(c.name.to_string(), c.value());
    }
    let mut histograms = BTreeMap::new();
    for h in reg.histograms.lock().unwrap().iter() {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (idx, b) in h.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((bucket_bound_us(idx).unwrap_or(u64::MAX), n));
            }
        }
        histograms.insert(
            h.name.to_string(),
            HistogramSnapshot {
                count,
                sum_us: h.sum_us.load(Ordering::Relaxed),
                max_us: h.max_us.load(Ordering::Relaxed),
                buckets,
            },
        );
    }
    Snapshot {
        counters,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::new("test.metrics.counter");
    static TEST_HIST: Histogram = Histogram::new("test.metrics.hist_us");

    #[test]
    fn counters_and_histograms_roundtrip_through_snapshot() {
        enable();
        TEST_COUNTER.add(2);
        TEST_COUNTER.incr();
        for us in [0, 1, 2, 3, 1000, 70_000_000] {
            TEST_HIST.record_us(us);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("test.metrics.counter"), 3);
        let h = &snap.histograms["test.metrics.hist_us"];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum_us, 70_001_006);
        assert_eq!(h.max_us, 70_000_000);
        // 0 and 1 share bucket le=1; 2 is le=2; 3 is le=4; 1000 is le=1024;
        // 70s overflows (2^25µs ≈ 33.5s).
        assert_eq!(
            h.buckets,
            vec![(1, 2), (2, 1), (4, 1), (1024, 1), (u64::MAX, 1)]
        );
        // Quantiles are bucket upper bounds; the overflow bucket reports
        // the true max.
        assert_eq!(h.quantile_us(0.5), 2);
        assert_eq!(h.quantile_us(0.99), 70_000_000);
    }

    #[test]
    fn bucket_bounds_partition_the_axis() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 0);
        assert_eq!(bucket_for(2), 1);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(4), 2);
        assert_eq!(bucket_for(5), 3);
        assert_eq!(bucket_for(1 << 25), 25);
        assert_eq!(bucket_for((1 << 25) + 1), OVERFLOW_BUCKET);
        assert_eq!(bucket_for(u64::MAX), OVERFLOW_BUCKET);
        for idx in 0..OVERFLOW_BUCKET {
            let le = bucket_bound_us(idx).unwrap();
            assert_eq!(bucket_for(le), idx, "le itself lands in its bucket");
            assert_eq!(bucket_for(le + 1), idx + 1, "le+1 spills to the next");
        }
        assert_eq!(bucket_bound_us(OVERFLOW_BUCKET), None);
    }

    #[test]
    fn snapshot_json_is_valid_and_deterministic_in_shape() {
        enable();
        TEST_COUNTER.incr();
        TEST_HIST.record_us(10);
        let s = snapshot().to_json_string();
        assert!(s.starts_with("{\"counters\":{"));
        assert!(s.contains("\"test.metrics.counter\":"));
        assert!(s.contains("\"test.metrics.hist_us\":{\"buckets\":["));
        assert!(s.contains("\"p50_us\":"));
        assert!(s.ends_with("}}"));
        // Overflow bucket renders as le=-1 when present.
        TEST_HIST.record_us(u64::MAX / 2);
        assert!(snapshot().to_json_string().contains("[-1,"));
    }

    #[test]
    fn labeled_counters_dedup_and_sanitize() {
        enable();
        let a = labeled_counter("test.shard.daemon", "127.0.0.1:7477", "routed");
        let b = labeled_counter("test.shard.daemon", "127.0.0.1:7477", "routed");
        assert!(std::ptr::eq(a, b), "same label must return the same handle");
        a.add(2);
        b.incr();
        let snap = snapshot();
        assert_eq!(snap.counter("test.shard.daemon.127_0_0_1_7477.routed"), 3);
        let c = labeled_counter("test.shard.daemon", "unix:/tmp/Sock-1", "routed");
        assert!(!std::ptr::eq(a, c));
        c.incr();
        assert_eq!(
            snapshot().counter("test.shard.daemon.unix__tmp_sock_1.routed"),
            1
        );
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        let h = HistogramSnapshot {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: Vec::new(),
        };
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }
}
