//! Desired-thread-count extraction (paper Section III-D, Fig. 4).
//!
//! Thresholding needs the number of child threads the programmer *wanted*,
//! which is not what the launch provides: the launch carries a grid
//! dimension, usually computed as a ceiling-division of the desired thread
//! count `N` by the block dimension `b`. This module implements the paper's
//! heuristic: find the division, take the left-hand subexpression, strip
//! additions/subtractions of constants (including the divisor itself), and
//! treat what remains as `N`.
//!
//! Supported patterns (paper Fig. 4):
//!
//! | case | expression |
//! |------|------------|
//! | (a)  | `(N - 1)/b + 1` |
//! | (b)  | `(N + b - 1)/b` |
//! | (c)  | `N/b + (N%b == 0 ? 0 : 1)` |
//! | (d)  | `ceil((float)N/b)` |
//! | (e)  | `ceil(N/(float)b)` |
//! | (f)  | `dim3(...)` whose components are any of the above |
//!
//! All patterns also work when the expression is stored in an intermediate
//! local variable (possibly through a short chain of assignments).
//!
//! The extraction is *destructive by design*: the `N` occurrence is replaced
//! in place with a fresh variable so the expression is not duplicated — the
//! paper does this "just in case the expression has side effects".

use dp_frontend::ast::*;

/// Maximum length of a local `int gd = ...; ... k<<<gd, b>>>` definition
/// chain the extractor will follow.
const MAX_VAR_CHAIN: usize = 4;

/// Result of a successful thread-count extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadCount {
    /// The extracted `N` expression (moved out of the tree; an identifier
    /// referring to `replacement` now sits where it was).
    pub n: Expr,
    /// Index in the statement block before which `int <replacement> = N;`
    /// must be inserted so every variable in `N` is still in scope and the
    /// replacement identifier is defined before use.
    pub insert_before: usize,
}

/// Attempts to extract the desired thread count for the launch statement at
/// `block[launch_index]`, replacing the `N` occurrence with `replacement`.
///
/// On success the tree has been rewritten and the caller must insert
/// `int <replacement> = <returned N>;` before `insert_before`. On failure
/// the block is left untouched.
///
/// # Panics
///
/// Panics if `block[launch_index]` is not a launch statement.
pub fn extract_thread_count(
    block: &mut [Stmt],
    launch_index: usize,
    replacement: &str,
) -> Option<ThreadCount> {
    // Work on a clone so failure leaves the block untouched.
    let mut grid = match &block[launch_index].kind {
        StmtKind::Launch(launch) => launch.grid.clone(),
        other => panic!("extract_thread_count: not a launch statement: {other:?}"),
    };
    if let Some(n) = take_from_expr(&mut grid) {
        let n = finish(n, replacement, &mut grid);
        if let StmtKind::Launch(launch) = &mut block[launch_index].kind {
            launch.grid = grid;
        }
        return Some(ThreadCount {
            n,
            insert_before: launch_index,
        });
    }
    // dim3 constructor in the grid position: handle per-component.
    if let ExprKind::Dim3Ctor(_) = &grid.kind {
        if let Some(n) = take_from_dim3(&mut grid) {
            let n = finish(n, replacement, &mut grid);
            if let StmtKind::Launch(launch) = &mut block[launch_index].kind {
                launch.grid = grid;
            }
            return Some(ThreadCount {
                n,
                insert_before: launch_index,
            });
        }
    }
    // Variable indirection: `int gd = <pattern>; ... k<<<gd, b>>>`.
    if let ExprKind::Ident(var) = &grid.kind {
        let var = var.clone();
        return extract_via_variable(block, launch_index, &var, replacement, MAX_VAR_CHAIN);
    }
    None
}

/// Follows `var` back to its most recent definition before `launch_index`
/// in the same block and extracts from the defining expression.
fn extract_via_variable(
    block: &mut [Stmt],
    launch_index: usize,
    var: &str,
    replacement: &str,
    depth: usize,
) -> Option<ThreadCount> {
    if depth == 0 {
        return None;
    }
    let def_index = find_last_def(block, launch_index, var)?;
    let mut def_expr = def_expr_of(&block[def_index], var)?.clone();
    if let Some(n) = take_from_expr(&mut def_expr).or_else(|| {
        if matches!(def_expr.kind, ExprKind::Dim3Ctor(_)) {
            take_from_dim3(&mut def_expr)
        } else {
            None
        }
    }) {
        let n = finish(n, replacement, &mut def_expr);
        *def_expr_of_mut(&mut block[def_index], var)? = def_expr;
        return Some(ThreadCount {
            n,
            insert_before: def_index,
        });
    }
    // Chase one more level of indirection.
    if let ExprKind::Ident(inner) = &def_expr.kind {
        let inner = inner.clone();
        return extract_via_variable(block, def_index, &inner, replacement, depth - 1);
    }
    None
}

/// Finds the last statement before `before` that defines `var` (declaration
/// initializer or simple assignment at block level).
fn find_last_def(block: &[Stmt], before: usize, var: &str) -> Option<usize> {
    (0..before)
        .rev()
        .find(|&i| def_expr_of(&block[i], var).is_some())
}

fn def_expr_of<'s>(stmt: &'s Stmt, var: &str) -> Option<&'s Expr> {
    match &stmt.kind {
        StmtKind::Decl(decl) => decl
            .declarators
            .iter()
            .find(|d| d.name == var)
            .and_then(|d| d.init.as_ref()),
        StmtKind::Expr(e) => match &e.kind {
            ExprKind::Assign(AssignOp::Assign, lhs, rhs) if lhs.kind.as_ident() == Some(var) => {
                Some(rhs)
            }
            _ => None,
        },
        _ => None,
    }
}

fn def_expr_of_mut<'s>(stmt: &'s mut Stmt, var: &str) -> Option<&'s mut Expr> {
    match &mut stmt.kind {
        StmtKind::Decl(decl) => decl
            .declarators
            .iter_mut()
            .find(|d| d.name == var)
            .and_then(|d| d.init.as_mut()),
        StmtKind::Expr(e) => match &mut e.kind {
            ExprKind::Assign(AssignOp::Assign, lhs, rhs) if lhs.kind.as_ident() == Some(var) => {
                Some(rhs)
            }
            _ => None,
        },
        _ => None,
    }
}

/// Replaces the slot where `N` was found (already swapped for a placeholder
/// by `take_*`) with the replacement identifier, returning `n` unchanged.
fn finish(n: Expr, replacement: &str, tree: &mut Expr) -> Expr {
    rename_placeholder(tree, replacement);
    n
}

const PLACEHOLDER: &str = "__dpopt_n_slot__";

fn rename_placeholder(e: &mut Expr, replacement: &str) {
    dp_frontend::visit::walk_expr_mut(e, &mut |x| {
        if x.kind.as_ident() == Some(PLACEHOLDER) {
            x.kind = ExprKind::Ident(replacement.to_string());
        }
    });
}

/// Core pattern matcher. On success, the `N` subexpression inside `e` has
/// been replaced by a placeholder identifier and `N` itself is returned.
fn take_from_expr(e: &mut Expr) -> Option<Expr> {
    // Unwrap integer casts around the whole pattern, e.g. `(int)ceil(...)`.
    if let ExprKind::Cast(_, inner) = &mut e.kind {
        return take_from_expr(inner);
    }
    match &mut e.kind {
        // Case (a): D + 1  or  1 + D, and
        // case (c): D + (N % b == 0 ? 0 : 1)
        ExprKind::Binary(BinOp::Add, lhs, rhs) => {
            if is_div(lhs) && is_adjustment(rhs) {
                take_from_div(lhs)
            } else if is_div(rhs) && is_adjustment(lhs) {
                take_from_div(rhs)
            } else {
                None
            }
        }
        // Case (b): direct division.
        ExprKind::Binary(BinOp::Div, _, _) => take_from_div(e),
        // Cases (d)/(e): ceil(...)
        ExprKind::Call(name, args) if (name == "ceil" || name == "ceilf") && args.len() == 1 => {
            take_from_expr(&mut args[0])
        }
        _ => None,
    }
}

/// Handles `dim3(x, y, z)` grids: the x component must contain a pattern;
/// pure y/z components are multiplied into the returned `N`.
fn take_from_dim3(e: &mut Expr) -> Option<Expr> {
    let ExprKind::Dim3Ctor(args) = &mut e.kind else {
        return None;
    };
    // y/z components must be trivially pure (identifier or literal) to be
    // multiplied into the thread count without duplicating side effects.
    for extra in args.iter().skip(1) {
        if !is_pure_atom(extra) {
            return None;
        }
    }
    let n_x = take_from_expr(&mut args[0])?;
    let mut n = n_x;
    for extra in args.iter().skip(1) {
        if matches!(extra.kind, ExprKind::IntLit(1)) {
            continue;
        }
        n = Expr::bin(BinOp::Mul, n, extra.clone(), CodeOrigin::ThresholdCheck);
    }
    Some(n)
}

fn is_pure_atom(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Ident(_)
    ) || matches!(&e.kind, ExprKind::Member(base, _) if is_pure_atom(base))
}

/// `+1`-style adjustments accepted next to the division: integer literals
/// and the `(x % y == 0) ? 0 : 1` ternary of case (c).
fn is_adjustment(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit(_) => true,
        ExprKind::Ternary(_, t, f) => {
            matches!(t.kind, ExprKind::IntLit(_)) && matches!(f.kind, ExprKind::IntLit(_))
        }
        ExprKind::Cast(_, inner) => is_adjustment(inner),
        _ => false,
    }
}

fn is_div(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Binary(BinOp::Div, _, _) => true,
        ExprKind::Cast(_, inner) => is_div(inner),
        ExprKind::Call(name, args) if (name == "ceil" || name == "ceilf") && args.len() == 1 => {
            is_div(&args[0])
        }
        _ => false,
    }
}

/// Given a division (possibly wrapped in casts/ceil), strips constants from
/// the dividend and moves the remaining `N` out.
fn take_from_div(e: &mut Expr) -> Option<Expr> {
    match &mut e.kind {
        ExprKind::Cast(_, inner) => take_from_div(inner),
        ExprKind::Call(name, args) if (name == "ceil" || name == "ceilf") && args.len() == 1 => {
            take_from_div(&mut args[0])
        }
        ExprKind::Binary(BinOp::Div, lhs, rhs) => {
            let divisor = (**rhs).clone();
            let slot = n_slot(lhs, &divisor)?;
            let origin = slot.origin;
            let n = std::mem::replace(slot, Expr::ident(PLACEHOLDER, origin));
            // Refuse constants-as-N only if nothing meaningful remains:
            // a literal N like `(1000 + 31)/32` is still a valid count.
            Some(strip_casts(n))
        }
        _ => None,
    }
}

fn strip_casts(e: Expr) -> Expr {
    match e.kind {
        ExprKind::Cast(_, inner) => strip_casts(*inner),
        _ => e,
    }
}

/// Descends through `+ const` / `- const` / `+ divisor` / casts on the
/// dividend, returning the slot holding `N`.
fn n_slot<'e>(e: &'e mut Expr, divisor: &Expr) -> Option<&'e mut Expr> {
    match &e.kind {
        ExprKind::Binary(BinOp::Add | BinOp::Sub, _, rhs0) if is_constant_like(rhs0, divisor) => {
            let ExprKind::Binary(_, lhs, _) = &mut e.kind else {
                unreachable!()
            };
            n_slot(lhs, divisor)
        }
        ExprKind::Binary(BinOp::Add, lhs0, _) if is_constant_like(lhs0, divisor) => {
            let ExprKind::Binary(_, _, rhs) = &mut e.kind else {
                unreachable!()
            };
            n_slot(rhs, divisor)
        }
        ExprKind::Cast(_, _) => {
            let ExprKind::Cast(_, inner) = &mut e.kind else {
                unreachable!()
            };
            n_slot(inner, divisor)
        }
        _ => Some(e),
    }
}

/// A subexpression the stripping heuristic discards: integer literals and
/// anything structurally equal to the divisor (which "is usually a
/// constant" per the paper).
fn is_constant_like(e: &Expr, divisor: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit(_) => true,
        ExprKind::Cast(_, inner) => is_constant_like(inner, divisor),
        _ => structurally_eq(e, divisor),
    }
}

/// Structural expression equality ignoring spans and origins.
pub fn structurally_eq(a: &Expr, b: &Expr) -> bool {
    use ExprKind::*;
    match (&a.kind, &b.kind) {
        (IntLit(x), IntLit(y)) => x == y,
        (FloatLit(x), FloatLit(y)) => x == y,
        (BoolLit(x), BoolLit(y)) => x == y,
        (Ident(x), Ident(y)) => x == y,
        (Binary(op1, a1, b1), Binary(op2, a2, b2)) => {
            op1 == op2 && structurally_eq(a1, a2) && structurally_eq(b1, b2)
        }
        (Unary(op1, x), Unary(op2, y)) => op1 == op2 && structurally_eq(x, y),
        (
            IncDec {
                inc: i1,
                prefix: p1,
                operand: o1,
            },
            IncDec {
                inc: i2,
                prefix: p2,
                operand: o2,
            },
        ) => i1 == i2 && p1 == p2 && structurally_eq(o1, o2),
        (Assign(op1, a1, b1), Assign(op2, a2, b2)) => {
            op1 == op2 && structurally_eq(a1, a2) && structurally_eq(b1, b2)
        }
        (Ternary(c1, t1, e1), Ternary(c2, t2, e2)) => {
            structurally_eq(c1, c2) && structurally_eq(t1, t2) && structurally_eq(e1, e2)
        }
        (Call(n1, a1), Call(n2, a2)) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| structurally_eq(x, y))
        }
        (Index(b1, i1), Index(b2, i2)) => structurally_eq(b1, b2) && structurally_eq(i1, i2),
        (Member(b1, f1), Member(b2, f2)) => f1 == f2 && structurally_eq(b1, b2),
        (Cast(t1, x), Cast(t2, y)) => t1 == t2 && structurally_eq(x, y),
        (Dim3Ctor(a1), Dim3Ctor(a2)) => {
            a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| structurally_eq(x, y))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frontend::parser::{parse_expr, parse_stmt};
    use dp_frontend::printer::print_expr;

    /// Runs extraction over a tiny block `int gd = <def>; k<<<gd, b>>>(x);`
    /// or a direct-launch block, returning (N text, rewritten grid text).
    fn extract_direct(grid_src: &str) -> Option<(String, String)> {
        let launch = parse_stmt(&format!("k<<<{grid_src}, 32>>>(x);")).unwrap();
        let mut block = vec![launch];
        let tc = extract_thread_count(&mut block, 0, "_threads")?;
        let StmtKind::Launch(l) = &block[0].kind else {
            unreachable!()
        };
        Some((print_expr(&tc.n), print_expr(&l.grid)))
    }

    #[test]
    fn case_a_n_minus_1_div_b_plus_1() {
        let (n, grid) = extract_direct("(N - 1) / b + 1").unwrap();
        assert_eq!(n, "N");
        assert_eq!(grid, "(_threads - 1) / b + 1");
    }

    #[test]
    fn case_b_n_plus_b_minus_1_div_b() {
        let (n, grid) = extract_direct("(N + b - 1) / b").unwrap();
        assert_eq!(n, "N");
        assert_eq!(grid, "(_threads + b - 1) / b");
    }

    #[test]
    fn case_c_with_ternary() {
        let (n, grid) = extract_direct("N / b + (N % b == 0 ? 0 : 1)").unwrap();
        assert_eq!(n, "N");
        assert!(grid.starts_with("_threads / b"));
    }

    #[test]
    fn case_d_ceil_float_cast_dividend() {
        let (n, grid) = extract_direct("ceil((float)N / b)").unwrap();
        assert_eq!(n, "N");
        assert_eq!(grid, "ceil((float)_threads / b)");
    }

    #[test]
    fn case_e_ceil_float_cast_divisor() {
        let (n, grid) = extract_direct("ceil(N / (float)b)").unwrap();
        assert_eq!(n, "N");
        assert_eq!(grid, "ceil(_threads / (float)b)");
    }

    #[test]
    fn case_f_dim3_with_pattern_x() {
        let (n, grid) = extract_direct("dim3((N + 127) / 128, rows, 1)").unwrap();
        assert_eq!(n, "N * rows");
        assert_eq!(grid, "dim3((_threads + 127) / 128, rows, 1)");
    }

    #[test]
    fn dim3_with_impure_extra_component_fails() {
        assert!(extract_direct("dim3((N + 127) / 128, f(x), 1)").is_none());
    }

    #[test]
    fn complex_n_expression_survives() {
        let (n, _) = extract_direct("(offsets[v + 1] - offsets[v] - 1) / bDim + 1").unwrap();
        assert_eq!(n, "offsets[v + 1] - offsets[v]");
    }

    #[test]
    fn int_cast_of_ceil() {
        let (n, _) = extract_direct("(int)ceil((float)count / 256)").unwrap();
        assert_eq!(n, "count");
    }

    #[test]
    fn literal_n_is_accepted() {
        // `(1000 + 31) / 32`: stripping keeps the leftmost term.
        let (n, _) = extract_direct("(1000 + 31) / 32").unwrap();
        assert_eq!(n, "1000");
    }

    #[test]
    fn non_pattern_fails_cleanly() {
        assert!(extract_direct("numBlocks * 2").is_none());
        assert!(extract_direct("f(n)").is_none());
        assert!(extract_direct("32").is_none());
    }

    #[test]
    fn failure_leaves_block_untouched() {
        let launch = parse_stmt("k<<<numBlocks * 2, 32>>>(x);").unwrap();
        let mut block = vec![launch.clone()];
        assert!(extract_thread_count(&mut block, 0, "_threads").is_none());
        assert_eq!(block[0], launch);
    }

    #[test]
    fn variable_indirection_single_level() {
        let mut block = vec![
            parse_stmt("int gd = (n + 31) / 32;").unwrap(),
            parse_stmt("x = x + 1;").unwrap(),
            parse_stmt("k<<<gd, 32>>>(x);").unwrap(),
        ];
        let tc = extract_thread_count(&mut block, 2, "_threads").unwrap();
        assert_eq!(print_expr(&tc.n), "n");
        assert_eq!(tc.insert_before, 0);
        let StmtKind::Decl(d) = &block[0].kind else {
            unreachable!()
        };
        assert_eq!(
            print_expr(d.declarators[0].init.as_ref().unwrap()),
            "(_threads + 31) / 32"
        );
    }

    #[test]
    fn variable_indirection_via_assignment() {
        let mut block = vec![
            parse_stmt("int gd;").unwrap(),
            parse_stmt("gd = (count - 1) / bs + 1;").unwrap(),
            parse_stmt("k<<<gd, bs>>>(x);").unwrap(),
        ];
        let tc = extract_thread_count(&mut block, 2, "_t").unwrap();
        assert_eq!(print_expr(&tc.n), "count");
        assert_eq!(tc.insert_before, 1);
    }

    #[test]
    fn variable_chain_two_levels() {
        let mut block = vec![
            parse_stmt("int a = (n + 255) / 256;").unwrap(),
            parse_stmt("int gd = a;").unwrap(),
            parse_stmt("k<<<gd, 256>>>(x);").unwrap(),
        ];
        let tc = extract_thread_count(&mut block, 2, "_t").unwrap();
        assert_eq!(print_expr(&tc.n), "n");
        assert_eq!(tc.insert_before, 0);
    }

    #[test]
    fn latest_definition_wins() {
        let mut block = vec![
            parse_stmt("int gd = (n + 31) / 32;").unwrap(),
            parse_stmt("gd = (m + 63) / 64;").unwrap(),
            parse_stmt("k<<<gd, 64>>>(x);").unwrap(),
        ];
        let tc = extract_thread_count(&mut block, 2, "_t").unwrap();
        assert_eq!(print_expr(&tc.n), "m");
        assert_eq!(tc.insert_before, 1);
    }

    #[test]
    fn undefined_variable_fails() {
        let mut block = vec![parse_stmt("k<<<gd, 32>>>(x);").unwrap()];
        assert!(extract_thread_count(&mut block, 0, "_t").is_none());
    }

    #[test]
    fn structural_eq_ignores_spans() {
        let a = parse_expr("x + y * 2").unwrap();
        let b = parse_expr("x  +  y*2").unwrap();
        assert!(structurally_eq(&a, &b));
        let c = parse_expr("x + y * 3").unwrap();
        assert!(!structurally_eq(&a, &c));
    }
}
