//! Kernel registry, launch-site discovery, and the device call graph.

use dp_frontend::ast::*;
use dp_frontend::visit::{for_each_stmt, for_each_stmt_expr};
use std::collections::{HashMap, HashSet};

/// A dynamic-parallelism launch site found in a function body.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchSite {
    /// Function containing the launch.
    pub parent: String,
    /// Kernel being launched.
    pub kernel: String,
    /// Whether the parent is itself a `__global__` kernel (a *dynamic*
    /// launch) as opposed to a host-side launch.
    pub from_device: bool,
    /// Source span of the launch statement.
    pub span: dp_frontend::Span,
}

/// Finds every launch statement in the program.
///
/// # Examples
///
/// ```
/// use dp_analysis::registry::launch_sites;
/// let p = dp_frontend::parse(
///     "__global__ void c(int n) { }\n\
///      __global__ void p(int n) { c<<<n, 32>>>(n); }").unwrap();
/// let sites = launch_sites(&p);
/// assert_eq!(sites.len(), 1);
/// assert!(sites[0].from_device);
/// assert_eq!(sites[0].kernel, "c");
/// ```
pub fn launch_sites(program: &Program) -> Vec<LaunchSite> {
    let mut sites = Vec::new();
    for func in program.functions() {
        for stmt in &func.body {
            for_each_stmt(stmt, &mut |s| {
                if let StmtKind::Launch(launch) = &s.kind {
                    sites.push(LaunchSite {
                        parent: func.name.clone(),
                        kernel: launch.kernel.clone(),
                        from_device: func.qual == FnQual::Global || func.qual == FnQual::Device,
                        span: s.span,
                    });
                }
            });
        }
    }
    sites
}

/// Returns the set of function names `func` calls directly (plain calls,
/// not launches), restricted to functions defined in the program.
pub fn direct_callees(program: &Program, func: &Function) -> HashSet<String> {
    let defined: HashSet<&str> = program.functions().map(|f| f.name.as_str()).collect();
    let mut callees = HashSet::new();
    for stmt in &func.body {
        for_each_stmt_expr(stmt, &mut |e| {
            if let ExprKind::Call(name, _) = &e.kind {
                if defined.contains(name.as_str()) {
                    callees.insert(name.clone());
                }
            }
        });
    }
    callees
}

/// The call graph over functions defined in the program (direct calls only;
/// launches are not edges).
pub fn call_graph(program: &Program) -> HashMap<String, HashSet<String>> {
    program
        .functions()
        .map(|f| (f.name.clone(), direct_callees(program, f)))
        .collect()
}

/// All functions transitively reachable from `root` through direct calls,
/// including `root` itself.
pub fn reachable_functions<'p>(program: &'p Program, root: &str) -> Vec<&'p Function> {
    let graph = call_graph(program);
    let mut seen = HashSet::new();
    let mut stack = vec![root.to_string()];
    let mut result = Vec::new();
    while let Some(name) = stack.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(func) = program.function(&name) {
            result.push(func);
            if let Some(callees) = graph.get(&name) {
                stack.extend(callees.iter().cloned());
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frontend::parse;

    const SRC: &str = "\
__device__ int helper(int x) { return x + 1; }
__device__ int chain(int x) { return helper(x); }
__global__ void child(int* d, int n) { d[0] = chain(n); }
__global__ void parent(int* d, int n) {
    child<<<n, 32>>>(d, n);
}
void host_main(int* d, int n) {
    parent<<<1, 1>>>(d, n);
}
";

    #[test]
    fn finds_device_and_host_launches() {
        let p = parse(SRC).unwrap();
        let sites = launch_sites(&p);
        assert_eq!(sites.len(), 2);
        let device = sites.iter().find(|s| s.parent == "parent").unwrap();
        assert!(device.from_device);
        assert_eq!(device.kernel, "child");
        let host = sites.iter().find(|s| s.parent == "host_main").unwrap();
        assert!(!host.from_device);
    }

    #[test]
    fn call_graph_has_direct_edges_only() {
        let p = parse(SRC).unwrap();
        let g = call_graph(&p);
        assert!(g["chain"].contains("helper"));
        assert!(g["child"].contains("chain"));
        assert!(
            !g["child"].contains("helper"),
            "transitive edge should be absent"
        );
        // Launches are not call edges.
        assert!(g["parent"].is_empty());
    }

    #[test]
    fn reachability_is_transitive() {
        let p = parse(SRC).unwrap();
        let names: Vec<&str> = reachable_functions(&p, "child")
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert!(names.contains(&"child"));
        assert!(names.contains(&"chain"));
        assert!(names.contains(&"helper"));
        assert!(!names.contains(&"parent"));
    }

    #[test]
    fn unknown_root_yields_empty() {
        let p = parse(SRC).unwrap();
        assert!(reachable_functions(&p, "nope").is_empty());
    }

    #[test]
    fn nested_launches_are_found() {
        let p = parse(
            "__global__ void c(int n) { }\n\
             __global__ void p(int n) { if (n > 0) { for (int i = 0; i < n; ++i) { c<<<i, 32>>>(i); } } }",
        )
        .unwrap();
        assert_eq!(launch_sites(&p).len(), 1);
    }
}
