//! Transformability analysis for the thresholding pass (paper Section III-C).
//!
//! A child kernel can be serialized in its parent thread only if it
//! (transitively) performs no barrier/warp synchronization and uses no
//! shared memory. Kernels that fail the check are left untouched and the
//! reason is reported as a [`Blocker`].

use crate::registry::reachable_functions;
use dp_frontend::ast::*;
use dp_frontend::visit::{for_each_stmt, for_each_stmt_expr};
use std::fmt;

/// Why a child kernel cannot be serialized by thresholding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blocker {
    /// The kernel (or a device function it calls) uses a synchronization
    /// intrinsic such as `__syncthreads` or a warp-level primitive.
    SyncIntrinsic {
        /// The intrinsic name.
        intrinsic: String,
        /// The function that contains the call.
        in_function: String,
    },
    /// The kernel (or a device function it calls) declares `__shared__`
    /// memory.
    SharedMemory {
        /// The function that declares it.
        in_function: String,
    },
    /// The kernel definition was not found in the translation unit.
    MissingDefinition {
        /// The missing kernel name.
        kernel: String,
    },
}

impl fmt::Display for Blocker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Blocker::SyncIntrinsic {
                intrinsic,
                in_function,
            } => write!(f, "uses `{intrinsic}` in `{in_function}`"),
            Blocker::SharedMemory { in_function } => {
                write!(f, "declares __shared__ memory in `{in_function}`")
            }
            Blocker::MissingDefinition { kernel } => {
                write!(
                    f,
                    "kernel `{kernel}` is not defined in this translation unit"
                )
            }
        }
    }
}

/// Collects every reason `kernel` cannot be serialized (empty means
/// transformable).
///
/// The check is transitive through direct device-function calls, matching
/// the paper's restriction: serializing a kernel that synchronizes between
/// its threads (directly or in a callee) is rejected, as is one that uses
/// shared memory.
///
/// # Examples
///
/// ```
/// use dp_analysis::transformable::serialization_blockers;
/// let p = dp_frontend::parse(
///     "__global__ void c(int* d) { __syncthreads(); d[0] = 1; }").unwrap();
/// let blockers = serialization_blockers(&p, "c");
/// assert_eq!(blockers.len(), 1);
/// ```
pub fn serialization_blockers(program: &Program, kernel: &str) -> Vec<Blocker> {
    if program.function(kernel).is_none() {
        return vec![Blocker::MissingDefinition {
            kernel: kernel.to_string(),
        }];
    }
    let mut blockers = Vec::new();
    for func in reachable_functions(program, kernel) {
        for stmt in &func.body {
            for_each_stmt(stmt, &mut |s| {
                if let StmtKind::Decl(decl) = &s.kind {
                    if decl.shared {
                        let blocker = Blocker::SharedMemory {
                            in_function: func.name.clone(),
                        };
                        if !blockers.contains(&blocker) {
                            blockers.push(blocker);
                        }
                    }
                }
            });
            for_each_stmt_expr(stmt, &mut |e| {
                if let ExprKind::Call(name, _) = &e.kind {
                    if SYNC_INTRINSICS.contains(&name.as_str()) {
                        let blocker = Blocker::SyncIntrinsic {
                            intrinsic: name.clone(),
                            in_function: func.name.clone(),
                        };
                        if !blockers.contains(&blocker) {
                            blockers.push(blocker);
                        }
                    }
                }
            });
        }
    }
    blockers
}

/// `true` when [`serialization_blockers`] finds nothing.
pub fn is_serializable(program: &Program, kernel: &str) -> bool {
    serialization_blockers(program, kernel).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frontend::parse;

    #[test]
    fn plain_kernel_is_serializable() {
        let p = parse(
            "__global__ void c(int* d, int n) { \
                 int i = blockIdx.x * blockDim.x + threadIdx.x; \
                 if (i < n) { d[i] = i; } }",
        )
        .unwrap();
        assert!(is_serializable(&p, "c"));
    }

    #[test]
    fn syncthreads_blocks() {
        let p = parse("__global__ void c(int* d) { __syncthreads(); }").unwrap();
        let b = serialization_blockers(&p, "c");
        assert_eq!(
            b,
            vec![Blocker::SyncIntrinsic {
                intrinsic: "__syncthreads".into(),
                in_function: "c".into()
            }]
        );
    }

    #[test]
    fn warp_primitives_block() {
        for intr in ["__syncwarp", "__shfl_down_sync", "__ballot_sync"] {
            let src = format!("__global__ void c(int* d) {{ int x = {intr}(); d[0] = x; }}");
            let p = parse(&src).unwrap();
            assert!(!is_serializable(&p, "c"), "{intr} should block");
        }
    }

    #[test]
    fn shared_memory_blocks() {
        let p = parse("__global__ void c(int* d) { __shared__ int tile[32]; d[0] = tile[0]; }")
            .unwrap();
        assert_eq!(
            serialization_blockers(&p, "c"),
            vec![Blocker::SharedMemory {
                in_function: "c".into()
            }]
        );
    }

    #[test]
    fn blocker_in_callee_is_transitive() {
        let p = parse(
            "__device__ void helper() { __syncthreads(); }\n\
             __global__ void c(int* d) { helper(); d[0] = 1; }",
        )
        .unwrap();
        let b = serialization_blockers(&p, "c");
        assert_eq!(b.len(), 1);
        assert!(
            matches!(&b[0], Blocker::SyncIntrinsic { in_function, .. } if in_function == "helper")
        );
    }

    #[test]
    fn missing_definition_is_reported() {
        let p = parse("__global__ void p(int n) { c<<<n, 32>>>(n); }").unwrap();
        assert_eq!(
            serialization_blockers(&p, "c"),
            vec![Blocker::MissingDefinition { kernel: "c".into() }]
        );
    }

    #[test]
    fn multiple_blockers_are_deduplicated() {
        let p = parse(
            "__global__ void c(int* d) { \
                 __syncthreads(); __syncthreads(); \
                 __shared__ int t[4]; d[0] = t[0]; }",
        )
        .unwrap();
        let b = serialization_blockers(&p, "c");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn blocker_display_is_informative() {
        let b = Blocker::SyncIntrinsic {
            intrinsic: "__syncwarp".into(),
            in_function: "k".into(),
        };
        assert_eq!(b.to_string(), "uses `__syncwarp` in `k`");
    }
}
