//! # dp-analysis
//!
//! Static analyses supporting the dynamic-parallelism optimization passes:
//!
//! - [`registry`] — kernels, launch sites, and the device call graph,
//! - [`transformable`] — can a child kernel be serialized? (paper §III-C),
//! - [`threads`] — desired-thread-count extraction from ceiling-division
//!   grid-dimension expressions (paper §III-D, Fig. 4).
//!
//! All analyses operate on the `dp-frontend` AST and are purely syntactic,
//! matching the paper's source-to-source Clang implementation.

pub mod registry;
pub mod threads;
pub mod transformable;

pub use registry::{call_graph, launch_sites, reachable_functions, LaunchSite};
pub use threads::{extract_thread_count, structurally_eq, ThreadCount};
pub use transformable::{is_serializable, serialization_blockers, Blocker};
