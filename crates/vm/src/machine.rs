//! The GPU execution machine: global memory, grids, blocks, threads,
//! barriers, atomics, and device-side launches.
//!
//! Execution is *functionally deterministic*: grids run in FIFO launch
//! order; within a block, threads run in index order between barriers.
//! Timing is not modelled here — the machine produces an
//! [`ExecutionTrace`](crate::trace::ExecutionTrace) that `dp-sim` replays
//! against a hardware model.

use crate::bytecode::*;
use crate::error::ExecError;
use crate::trace::*;
use crate::value::{Value, SHARED_SPACE_BASE};
use dp_frontend::ast::{CodeOrigin, FnQual, Type};
use std::collections::VecDeque;

/// Execution limits (to keep tests and runaway kernels bounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum dynamic instructions per `run_to_quiescence` call.
    pub max_instructions: u64,
    /// Maximum pending (not yet executed) grids, modelling CUDA's pending
    /// launch buffer (the paper sets `cudaLimitDevRuntimePendingLaunchCount`
    /// to avoid overflowing it; we default to a large pool).
    pub max_pending: usize,
    /// Maximum threads per block (hardware limit).
    pub max_threads_per_block: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_instructions: u64::MAX,
            max_pending: 1 << 22,
            max_threads_per_block: 1024,
        }
    }
}

/// Simulated device global memory (word-addressed).
#[derive(Debug, Default)]
pub struct Memory {
    data: Vec<Value>,
    bump: usize,
}

impl Memory {
    fn new() -> Self {
        // Address 0 is reserved as a null pointer.
        Memory {
            data: vec![Value::Int(0)],
            bump: 1,
        }
    }

    /// Allocates `words` words, returning the base address.
    pub fn alloc(&mut self, words: usize) -> i64 {
        let base = self.bump;
        self.bump += words;
        if self.data.len() < self.bump {
            self.data.resize(self.bump, Value::Int(0));
        }
        base as i64
    }

    fn check(&self, addr: i64) -> Result<usize, ExecError> {
        let a = addr as usize;
        if addr <= 0 || a >= self.bump {
            return Err(ExecError::new(format!(
                "memory access out of bounds: address {addr} (allocated up to {})",
                self.bump
            )));
        }
        Ok(a)
    }

    /// Bounds-checks `words` words starting at `addr` in one comparison,
    /// returning the base index. `words` must be non-zero.
    fn check_range(&self, addr: i64, words: usize) -> Result<usize, ExecError> {
        let a = addr as usize;
        if addr <= 0 || words > self.bump || a > self.bump - words {
            return Err(ExecError::new(format!(
                "memory access out of bounds: range {addr}..{} (allocated up to {})",
                addr.saturating_add(words as i64),
                self.bump
            )));
        }
        Ok(a)
    }

    /// Reads one word.
    pub fn read(&self, addr: i64) -> Result<Value, ExecError> {
        Ok(self.data[self.check(addr)?])
    }

    /// Writes one word.
    pub fn write(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        let a = self.check(addr)?;
        self.data[a] = value;
        Ok(())
    }

    /// Reads `words` consecutive words as a slice (single bounds check).
    pub fn read_range(&self, addr: i64, words: usize) -> Result<&[Value], ExecError> {
        if words == 0 {
            return Ok(&[]);
        }
        let a = self.check_range(addr, words)?;
        Ok(&self.data[a..a + words])
    }

    /// Writes `values` consecutively starting at `addr` (single bounds
    /// check + `copy_from_slice`).
    pub fn write_range(&mut self, addr: i64, values: &[Value]) -> Result<(), ExecError> {
        if values.is_empty() {
            return Ok(());
        }
        let a = self.check_range(addr, values.len())?;
        self.data[a..a + values.len()].copy_from_slice(values);
        Ok(())
    }

    /// Mutable view of `words` consecutive words (single bounds check).
    pub fn slice_mut(&mut self, addr: i64, words: usize) -> Result<&mut [Value], ExecError> {
        if words == 0 {
            return Ok(&mut []);
        }
        let a = self.check_range(addr, words)?;
        Ok(&mut self.data[a..a + words])
    }

    /// Fills a range with a value (buffer zeroing): one bounds check plus a
    /// `slice::fill`, not a checked store per word.
    pub fn fill(&mut self, addr: i64, words: usize, value: Value) -> Result<(), ExecError> {
        self.slice_mut(addr, words)?.fill(value);
        Ok(())
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> usize {
        self.bump
    }
}

struct Frame {
    func: FuncId,
    pc: usize,
    locals: Vec<Value>,
}

enum ThreadStatus {
    Running,
    AtBarrier,
    Done,
}

struct Thread {
    frames: Vec<Frame>,
    stack: Vec<Value>,
    status: ThreadStatus,
    cycles: u64,
    instructions: u64,
    origin_cycles: OriginCycles,
    tidx: [i64; 3],
    /// Locals vectors of popped frames, reused by later calls so steady-state
    /// call/return traffic allocates nothing.
    spare_locals: Vec<Vec<Value>>,
}

impl Thread {
    fn new() -> Self {
        Thread {
            frames: Vec::new(),
            stack: Vec::with_capacity(16),
            status: ThreadStatus::Running,
            cycles: 0,
            instructions: 0,
            origin_cycles: OriginCycles::default(),
            tidx: [0; 3],
            spare_locals: Vec::new(),
        }
    }

    /// Re-arms a (possibly previously used) thread for a new block,
    /// reusing its frame/locals/stack allocations.
    fn reset(&mut self, kernel: FuncId, n_locals: u16, args: &[Value], tidx: [i64; 3]) {
        while self.frames.len() > 1 {
            let f = self.frames.pop().expect("len checked");
            self.spare_locals.push(f.locals);
        }
        let frame = match self.frames.last_mut() {
            Some(f) => f,
            None => {
                let locals = self.spare_locals.pop().unwrap_or_default();
                self.frames.push(Frame {
                    func: kernel,
                    pc: 0,
                    locals,
                });
                self.frames.last_mut().expect("just pushed")
            }
        };
        frame.func = kernel;
        frame.pc = 0;
        frame.locals.clear();
        frame.locals.resize(n_locals as usize, Value::Int(0));
        frame.locals[..args.len()].copy_from_slice(args);
        self.stack.clear();
        self.status = ThreadStatus::Running;
        self.cycles = 0;
        self.instructions = 0;
        self.origin_cycles = OriginCycles::default();
        self.tidx = tidx;
    }
}

/// Per-block execution state pooled across the blocks of a grid (and across
/// grids): thread structs with their frame/locals/stack vectors, and the
/// shared-memory buffer. Reuse turns per-block setup from O(threads)
/// allocations into O(threads) resets of already-sized buffers.
#[derive(Default)]
struct BlockArena {
    threads: Vec<Thread>,
    shared: Vec<Value>,
}

/// Precomputed per-instruction accounting: total cycles and original
/// (pre-fusion) instruction count. Built once per function at machine
/// construction so the dispatch loop does a table load instead of a cost
/// match per instruction.
#[derive(Clone, Copy)]
struct CostEntry {
    cycles: u64,
    width: u32,
}

fn build_cost_table(module: &Module, cost: &CostModel) -> Vec<Box<[CostEntry]>> {
    module
        .functions
        .iter()
        .map(|f| {
            f.code
                .iter()
                .map(|i| CostEntry {
                    cycles: i.cost(cost),
                    width: i.width(),
                })
                .collect()
        })
        .collect()
}

struct PendingGrid {
    kernel: FuncId,
    grid: [i64; 3],
    block: [i64; 3],
    args: Vec<Value>,
    origin: LaunchOrigin,
    id: usize,
}

/// Runtime statistics for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Grids executed.
    pub grids_executed: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Device-side launch instructions that created a grid.
    pub device_launches: u64,
    /// Launches skipped because the grid size was zero.
    pub empty_launches: u64,
}

/// The simulated GPU: compiled module + memory + launch queue.
pub struct Machine {
    module: Module,
    /// Global device memory.
    pub mem: Memory,
    cost: CostModel,
    cost_table: Vec<Box<[CostEntry]>>,
    limits: ExecLimits,
    pending: VecDeque<PendingGrid>,
    next_grid_id: usize,
    trace: ExecutionTrace,
    stats: MachineStats,
    instr_budget: u64,
    arena: BlockArena,
    reuse_state: bool,
}

impl Machine {
    /// Creates a machine for a compiled module with default cost model and
    /// limits.
    pub fn new(module: Module) -> Self {
        Machine::with_config(module, CostModel::default(), ExecLimits::default())
    }

    /// Creates a machine with an explicit cost model and limits.
    pub fn with_config(module: Module, cost: CostModel, limits: ExecLimits) -> Self {
        let cost_table = build_cost_table(&module, &cost);
        Machine {
            module,
            mem: Memory::new(),
            cost,
            cost_table,
            limits,
            pending: VecDeque::new(),
            next_grid_id: 0,
            trace: ExecutionTrace::default(),
            stats: MachineStats::default(),
            instr_budget: limits.max_instructions,
            arena: BlockArena::default(),
            reuse_state: true,
        }
    }

    /// Enables or disables pooling of per-block execution state (on by
    /// default). Disabling forces every block to allocate fresh thread
    /// state, reproducing the pre-arena executor — a benchmarking knob for
    /// `vmbench`'s baseline, not something callers should normally touch.
    pub fn set_state_reuse(&mut self, on: bool) {
        self.reuse_state = on;
    }

    /// The compiled module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Statistics so far.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Allocates device memory.
    pub fn alloc(&mut self, words: usize) -> i64 {
        self.mem.alloc(words)
    }

    /// Allocates and writes a slice of integers (one bounds check).
    pub fn alloc_i64s(&mut self, values: &[i64]) -> i64 {
        let base = self.mem.alloc(values.len().max(1));
        let dst = self
            .mem
            .slice_mut(base, values.len())
            .expect("freshly allocated");
        for (d, v) in dst.iter_mut().zip(values) {
            *d = Value::Int(*v);
        }
        base
    }

    /// Allocates and writes a slice of floats (one bounds check).
    pub fn alloc_f64s(&mut self, values: &[f64]) -> i64 {
        let base = self.mem.alloc(values.len().max(1));
        let dst = self
            .mem
            .slice_mut(base, values.len())
            .expect("freshly allocated");
        for (d, v) in dst.iter_mut().zip(values) {
            *d = Value::Float(*v);
        }
        base
    }

    /// Reads `len` integers starting at `ptr` (one bounds check).
    pub fn read_i64s(&self, ptr: i64, len: usize) -> Result<Vec<i64>, ExecError> {
        Ok(self
            .mem
            .read_range(ptr, len)?
            .iter()
            .map(|v| v.as_int())
            .collect())
    }

    /// Reads `len` floats starting at `ptr` (one bounds check).
    pub fn read_f64s(&self, ptr: i64, len: usize) -> Result<Vec<f64>, ExecError> {
        Ok(self
            .mem
            .read_range(ptr, len)?
            .iter()
            .map(|v| v.as_float())
            .collect())
    }

    /// Enqueues a host-side kernel launch. Returns the grid id.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown, not `__global__`, or the
    /// configuration violates hardware limits.
    pub fn launch_host(
        &mut self,
        kernel: &str,
        grid: impl Into<Value>,
        block: impl Into<Value>,
        args: &[Value],
    ) -> Result<usize, ExecError> {
        let id = self
            .module
            .id_of(kernel)
            .ok_or_else(|| ExecError::new(format!("unknown kernel `{kernel}`")))?;
        self.enqueue(
            id,
            grid.into().as_dim3(),
            block.into().as_dim3(),
            args.to_vec(),
            LaunchOrigin::Host,
        )
    }

    fn enqueue(
        &mut self,
        kernel: FuncId,
        grid: [i64; 3],
        block: [i64; 3],
        args: Vec<Value>,
        origin: LaunchOrigin,
    ) -> Result<usize, ExecError> {
        enqueue_grid(
            &self.module,
            &self.limits,
            &mut self.pending,
            &mut self.next_grid_id,
            kernel,
            grid,
            block,
            args,
            origin,
        )
    }

    /// Runs every pending grid (and everything they launch) to completion —
    /// the equivalent of `cudaDeviceSynchronize()`.
    pub fn run_to_quiescence(&mut self) -> Result<(), ExecError> {
        while let Some(grid) = self.pending.pop_front() {
            self.execute_grid(grid)?;
        }
        Ok(())
    }

    /// Takes the accumulated execution trace, leaving an empty one.
    pub fn take_trace(&mut self) -> ExecutionTrace {
        std::mem::take(&mut self.trace)
    }

    /// Read-only view of the trace so far.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    fn execute_grid(&mut self, grid: PendingGrid) -> Result<(), ExecError> {
        let num_blocks = grid.grid[0] * grid.grid[1] * grid.grid[2];
        let func = self.module.function(grid.kernel);
        // Coerce kernel arguments to their declared parameter types once per
        // grid — every block (and thread) starts from the same locals image.
        let coerced_args: Vec<Value> = grid
            .args
            .iter()
            .zip(&func.param_types)
            .map(|(arg, ty)| coerce(*arg, ty))
            .collect();
        let mut gtrace = GridTrace {
            id: grid.id,
            kernel: func.name.clone(),
            grid_dim: grid.grid,
            block_dim: grid.block,
            origin: grid.origin,
            blocks: Vec::with_capacity(num_blocks as usize),
        };
        for linear in 0..num_blocks {
            let bx = linear % grid.grid[0];
            let by = (linear / grid.grid[0]) % grid.grid[1];
            let bz = linear / (grid.grid[0] * grid.grid[1]);
            let btrace = self.execute_block(&grid, &coerced_args, [bx, by, bz], linear as u64)?;
            gtrace.blocks.push(btrace);
        }
        self.stats.grids_executed += 1;
        // Grid ids are assigned at enqueue time in FIFO order, so the
        // executed order matches id order.
        debug_assert_eq!(gtrace.id, self.trace.grids.len());
        self.trace.grids.push(gtrace);
        Ok(())
    }

    fn execute_block(
        &mut self,
        grid: &PendingGrid,
        coerced_args: &[Value],
        block_idx: [i64; 3],
        linear_block: u64,
    ) -> Result<BlockTrace, ExecError> {
        // Split the machine into disjoint borrows: the run loop reads the
        // module/cost tables while mutating memory, the launch queue, and
        // thread state.
        let Machine {
            module,
            mem,
            cost,
            cost_table,
            limits,
            pending,
            next_grid_id,
            stats,
            instr_budget,
            arena,
            reuse_state,
            ..
        } = self;
        let func = module.function(grid.kernel);
        let contains_launch = func.contains_launch;
        let n_locals = func.n_locals;
        let n_threads = (grid.block[0] * grid.block[1] * grid.block[2]) as usize;
        let shared_words = func.shared_words as usize;

        if !*reuse_state {
            // Benchmarking baseline: behave like the pre-arena executor and
            // allocate everything fresh for this block.
            arena.threads.clear();
            arena.shared = Vec::new();
        }
        arena.shared.clear();
        arena.shared.resize(shared_words, Value::Int(0));
        arena.threads.truncate(n_threads);
        while arena.threads.len() < n_threads {
            arena.threads.push(Thread::new());
        }
        for (t, thread) in arena.threads.iter_mut().enumerate() {
            let t = t as i64;
            let tx = t % grid.block[0];
            let ty = (t / grid.block[0]) % grid.block[1];
            let tz = t / (grid.block[0] * grid.block[1]);
            thread.reset(grid.kernel, n_locals, coerced_args, [tx, ty, tz]);
        }
        let threads = &mut arena.threads;
        let shared = &mut arena.shared;

        let mut btrace = BlockTrace::default();
        let ctx = BlockCtx {
            grid_dim: grid.grid,
            block_dim: grid.block,
            block_idx,
            grid_id: grid.id,
            linear_block,
        };
        let mut env = ExecEnv {
            module,
            cost_table,
            limits,
            mem,
            pending,
            next_grid_id,
            stats,
            instr_budget,
        };

        loop {
            let mut all_done = true;
            for thread in threads.iter_mut() {
                if matches!(thread.status, ThreadStatus::Running) {
                    run_thread(&mut env, thread, &ctx, shared, &mut btrace)?;
                }
                if !matches!(thread.status, ThreadStatus::Done) {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            // Every live thread is at the barrier: release them.
            for thread in threads.iter_mut() {
                if matches!(thread.status, ThreadStatus::AtBarrier) {
                    thread.status = ThreadStatus::Running;
                }
            }
        }

        // Per-warp cost: max thread cycles within each 32-thread group.
        let presence = if contains_launch {
            cost.launch_presence_overhead
        } else {
            0
        };
        for chunk in threads.chunks(32) {
            let max = chunk.iter().map(|t| t.cycles + presence).max().unwrap_or(0);
            btrace.warp_cycles.push(max);
        }
        for thread in threads.iter() {
            btrace.origin_cycles.merge(&thread.origin_cycles);
            btrace.instructions += thread.instructions;
        }
        if presence > 0 {
            btrace
                .origin_cycles
                .add(CodeOrigin::Original, presence * n_threads as u64);
        }
        stats.instructions += btrace.instructions;
        Ok(btrace)
    }
}

/// The disjoint machine borrows the execution loop needs: read-only code
/// and cost tables, mutable memory / launch queue / statistics.
struct ExecEnv<'m> {
    module: &'m Module,
    cost_table: &'m [Box<[CostEntry]>],
    limits: &'m ExecLimits,
    mem: &'m mut Memory,
    pending: &'m mut VecDeque<PendingGrid>,
    next_grid_id: &'m mut usize,
    stats: &'m mut MachineStats,
    instr_budget: &'m mut u64,
}

impl ExecEnv<'_> {
    fn load(&self, addr: i64, shared: &[Value]) -> Result<Value, ExecError> {
        if addr >= SHARED_SPACE_BASE {
            let off = (addr - SHARED_SPACE_BASE) as usize;
            shared.get(off).copied().ok_or_else(|| {
                ExecError::new(format!("shared memory access out of bounds: offset {off}"))
            })
        } else {
            self.mem.read(addr)
        }
    }

    fn store(&mut self, addr: i64, value: Value, shared: &mut [Value]) -> Result<(), ExecError> {
        if addr >= SHARED_SPACE_BASE {
            let off = (addr - SHARED_SPACE_BASE) as usize;
            match shared.get_mut(off) {
                Some(slot) => {
                    *slot = value;
                    Ok(())
                }
                None => Err(ExecError::new(format!(
                    "shared memory access out of bounds: offset {off}"
                ))),
            }
        } else {
            self.mem.write(addr, value)
        }
    }
}

/// Runs one thread until it returns, reaches a barrier, or errors.
///
/// The outer loop re-derives the current function's code/origin/cost slices
/// only when the frame stack changes (call, return, launch of execution);
/// the inner loop dispatches straight-line instructions against cached
/// slices. Fused superinstructions are charged their expansion's summed
/// cycles and original instruction count from the precomputed cost table,
/// keeping accounting identical to unfused execution.
fn run_thread(
    env: &mut ExecEnv<'_>,
    thread: &mut Thread,
    ctx: &BlockCtx,
    shared: &mut [Value],
    btrace: &mut BlockTrace,
) -> Result<(), ExecError> {
    'frames: loop {
        let Some(frame) = thread.frames.last_mut() else {
            thread.status = ThreadStatus::Done;
            return Ok(());
        };
        let func = &env.module.functions[frame.func as usize];
        let code: &[Instr] = &func.code;
        let origins: &[CodeOrigin] = &func.origins;
        let costs: &[CostEntry] = &env.cost_table[frame.func as usize];

        loop {
            let pc = frame.pc;
            if pc >= code.len() {
                // Fell off the end of a void function.
                let done = thread.frames.pop().expect("frame exists");
                thread.spare_locals.push(done.locals);
                if thread.frames.is_empty() {
                    thread.status = ThreadStatus::Done;
                    return Ok(());
                }
                thread.stack.push(Value::Int(0));
                continue 'frames;
            }
            let instr = code[pc];
            let origin = origins[pc];
            let entry = costs[pc];
            frame.pc = pc + 1;

            let cycles = entry.cycles;
            let width = entry.width as u64;
            thread.cycles += cycles;
            thread.instructions += width;
            thread.origin_cycles.add(origin, cycles);
            if *env.instr_budget < width {
                return Err(ExecError::new(
                    "instruction budget exhausted (possible infinite loop; raise ExecLimits::max_instructions)",
                ));
            }
            *env.instr_budget -= width;

            match instr {
                Instr::PushInt(v) => thread.stack.push(Value::Int(v)),
                Instr::PushFloat(v) => thread.stack.push(Value::Float(v)),
                Instr::LoadLocal(slot) => {
                    let v = frame.locals[slot as usize];
                    thread.stack.push(v);
                }
                Instr::StoreLocal(slot) => {
                    let v = pop(&mut thread.stack)?;
                    frame.locals[slot as usize] = v;
                }
                Instr::LoadMem => {
                    let addr = pop(&mut thread.stack)?.as_int();
                    let v = env.load(addr, shared)?;
                    thread.stack.push(v);
                }
                Instr::StoreMem => {
                    let v = pop(&mut thread.stack)?;
                    let addr = pop(&mut thread.stack)?.as_int();
                    env.store(addr, v, shared)?;
                }
                Instr::Bin(kind) => {
                    let b = pop(&mut thread.stack)?;
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(bin_op(kind, a, b)?);
                }
                Instr::Un(kind) => {
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(un_op(kind, a));
                }
                Instr::CastInt => {
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(Value::Int(a.as_int()));
                }
                Instr::CastFloat => {
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(Value::Float(a.as_float()));
                }
                Instr::Jump(t) => frame.pc = t as usize,
                Instr::JumpIfZero(t) => {
                    if !pop(&mut thread.stack)?.is_truthy() {
                        frame.pc = t as usize;
                    }
                }
                Instr::JumpIfNonZero(t) => {
                    if pop(&mut thread.stack)?.is_truthy() {
                        frame.pc = t as usize;
                    }
                }
                Instr::Call(id, nargs) => {
                    let callee = &env.module.functions[id as usize];
                    let mut locals = thread.spare_locals.pop().unwrap_or_default();
                    locals.clear();
                    locals.resize(callee.n_locals as usize, Value::Int(0));
                    for i in (0..nargs as usize).rev() {
                        let v = pop(&mut thread.stack)?;
                        locals[i] = coerce(v, &callee.param_types[i]);
                    }
                    if thread.frames.len() > 512 {
                        return Err(ExecError::new("device call stack overflow"));
                    }
                    thread.frames.push(Frame {
                        func: id,
                        pc: 0,
                        locals,
                    });
                    continue 'frames;
                }
                Instr::Ret => {
                    let v = pop(&mut thread.stack)?;
                    let done = thread.frames.pop().expect("frame exists");
                    thread.spare_locals.push(done.locals);
                    if thread.frames.is_empty() {
                        thread.status = ThreadStatus::Done;
                        return Ok(());
                    }
                    thread.stack.push(v);
                    continue 'frames;
                }
                Instr::RetVoid => {
                    let done = thread.frames.pop().expect("frame exists");
                    thread.spare_locals.push(done.locals);
                    if thread.frames.is_empty() {
                        thread.status = ThreadStatus::Done;
                        return Ok(());
                    }
                    thread.stack.push(Value::Int(0));
                    continue 'frames;
                }
                Instr::Launch(id, nargs) => {
                    let mut args = vec![Value::Int(0); nargs as usize];
                    for i in (0..nargs as usize).rev() {
                        args[i] = pop(&mut thread.stack)?;
                    }
                    let block = pop(&mut thread.stack)?.as_dim3();
                    let grid = pop(&mut thread.stack)?.as_dim3();
                    let total_blocks = grid[0] * grid[1] * grid[2];
                    if total_blocks <= 0 {
                        env.stats.empty_launches += 1;
                    } else {
                        let child = enqueue_grid(
                            env.module,
                            env.limits,
                            env.pending,
                            env.next_grid_id,
                            id,
                            grid,
                            block,
                            args,
                            LaunchOrigin::Device {
                                parent_grid: ctx.grid_id,
                                parent_block: ctx.linear_block,
                                issue_cycles: thread.cycles,
                            },
                        )?;
                        btrace.launches.push(LaunchRecord {
                            child_grid: child,
                            issue_cycles: thread.cycles,
                        });
                        env.stats.device_launches += 1;
                    }
                }
                Instr::Sync => {
                    thread.status = ThreadStatus::AtBarrier;
                    return Ok(());
                }
                Instr::Fence => {
                    // Sequential block execution makes fences functional
                    // no-ops; the cycle cost was already charged.
                }
                Instr::Atomic(op) => {
                    let old = match op {
                        AtomicOp::Cas => {
                            let val = pop(&mut thread.stack)?;
                            let cmp = pop(&mut thread.stack)?;
                            let addr = pop(&mut thread.stack)?.as_int();
                            let old = env.load(addr, shared)?;
                            let new = if old == cmp { val } else { old };
                            env.store(addr, new, shared)?;
                            old
                        }
                        _ => {
                            let operand = pop(&mut thread.stack)?;
                            let addr = pop(&mut thread.stack)?.as_int();
                            let old = env.load(addr, shared)?;
                            let new = atomic_apply(op, old, operand)?;
                            env.store(addr, new, shared)?;
                            old
                        }
                    };
                    thread.stack.push(old);
                }
                Instr::Intrinsic(i) => {
                    let v = match i {
                        Intrinsic::Min | Intrinsic::Max | Intrinsic::Pow => {
                            let b = pop(&mut thread.stack)?;
                            let a = pop(&mut thread.stack)?;
                            intrinsic2(i, a, b)
                        }
                        _ => {
                            let a = pop(&mut thread.stack)?;
                            intrinsic1(i, a)
                        }
                    };
                    thread.stack.push(v);
                }
                Instr::ReadSpecial(s) => {
                    let d = match s {
                        Special::ThreadIdx => thread.tidx,
                        Special::BlockIdx => ctx.block_idx,
                        Special::BlockDim => ctx.block_dim,
                        Special::GridDim => ctx.grid_dim,
                    };
                    thread.stack.push(Value::Dim3(d));
                }
                Instr::ReadSpecialComp(s, lane) => {
                    let d = match s {
                        Special::ThreadIdx => thread.tidx,
                        Special::BlockIdx => ctx.block_idx,
                        Special::BlockDim => ctx.block_dim,
                        Special::GridDim => ctx.grid_dim,
                    };
                    thread.stack.push(Value::Int(d[lane as usize]));
                }
                Instr::MakeDim3 => {
                    let z = pop(&mut thread.stack)?.as_int();
                    let y = pop(&mut thread.stack)?.as_int();
                    let x = pop(&mut thread.stack)?.as_int();
                    thread.stack.push(Value::Dim3([x, y, z]));
                }
                Instr::Dim3Member(lane) => {
                    let d = pop(&mut thread.stack)?.as_dim3();
                    thread.stack.push(Value::Int(d[lane as usize]));
                }
                Instr::Dim3SetMember(lane) => {
                    let v = pop(&mut thread.stack)?.as_int();
                    let mut d = pop(&mut thread.stack)?.as_dim3();
                    d[lane as usize] = v;
                    thread.stack.push(Value::Dim3(d));
                }
                Instr::Pop => {
                    pop(&mut thread.stack)?;
                }
                Instr::Dup => {
                    let v = *thread
                        .stack
                        .last()
                        .ok_or_else(|| ExecError::new("stack underflow on dup"))?;
                    thread.stack.push(v);
                }
                Instr::Swap => {
                    let n = thread.stack.len();
                    if n < 2 {
                        return Err(ExecError::new("stack underflow on swap"));
                    }
                    thread.stack.swap(n - 1, n - 2);
                }

                // Fused superinstructions: each arm replicates the exact
                // observable semantics (including error cases) of its
                // expansion — see `Instr::expansion`. Accounting was already
                // charged from the cost table above.
                Instr::BinLocals(kind, a, b) => {
                    let a = frame.locals[a as usize];
                    let b = frame.locals[b as usize];
                    thread.stack.push(bin_op(kind, a, b)?);
                }
                Instr::BinImm(kind, v) => {
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(bin_op(kind, a, Value::Int(v))?);
                }
                Instr::IncLocal(slot, delta) => {
                    let old = frame.locals[slot as usize];
                    frame.locals[slot as usize] = bin_op(BinKind::Add, old, Value::Int(delta))?;
                }
                Instr::LoadLocalMem(slot) => {
                    let addr = frame.locals[slot as usize].as_int();
                    let v = env.load(addr, shared)?;
                    thread.stack.push(v);
                }
                Instr::CmpBranchLocals(kind, a, b, t) => {
                    let a = frame.locals[a as usize];
                    let b = frame.locals[b as usize];
                    if !bin_op(kind, a, b)?.is_truthy() {
                        frame.pc = t as usize;
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn enqueue_grid(
    module: &Module,
    limits: &ExecLimits,
    pending: &mut VecDeque<PendingGrid>,
    next_grid_id: &mut usize,
    kernel: FuncId,
    grid: [i64; 3],
    block: [i64; 3],
    args: Vec<Value>,
    origin: LaunchOrigin,
) -> Result<usize, ExecError> {
    let func = module.function(kernel);
    if func.qual != FnQual::Global {
        return Err(ExecError::new(format!(
            "`{}` is not a __global__ kernel",
            func.name
        )));
    }
    if args.len() != func.param_types.len() {
        return Err(ExecError::new(format!(
            "kernel `{}` takes {} arguments, got {}",
            func.name,
            func.param_types.len(),
            args.len()
        )));
    }
    let threads = block[0] * block[1] * block[2];
    if threads <= 0 || threads > limits.max_threads_per_block as i64 {
        return Err(ExecError::new(format!(
            "invalid block size {threads} for kernel `{}`",
            func.name
        )));
    }
    if grid.iter().any(|&d| d < 0) {
        return Err(ExecError::new(format!(
            "negative grid dimension for kernel `{}`",
            func.name
        )));
    }
    if pending.len() >= limits.max_pending {
        return Err(ExecError::new(
            "pending launch buffer overflow (raise ExecLimits::max_pending)",
        ));
    }
    let id = *next_grid_id;
    *next_grid_id += 1;
    pending.push_back(PendingGrid {
        kernel,
        grid,
        block,
        args,
        origin,
        id,
    });
    Ok(id)
}

struct BlockCtx {
    grid_dim: [i64; 3],
    block_dim: [i64; 3],
    block_idx: [i64; 3],
    grid_id: usize,
    linear_block: u64,
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, ExecError> {
    stack
        .pop()
        .ok_or_else(|| ExecError::new("operand stack underflow"))
}

fn coerce(v: Value, ty: &Type) -> Value {
    match ty {
        Type::Int | Type::UInt | Type::Long | Type::ULong | Type::Bool => Value::Int(v.as_int()),
        Type::Float | Type::Double => Value::Float(v.as_float()),
        Type::Dim3 => Value::Dim3(v.as_dim3()),
        Type::Ptr(_) | Type::Void => v,
    }
}

fn bin_op(kind: BinKind, a: Value, b: Value) -> Result<Value, ExecError> {
    use BinKind::*;
    if a.is_float() || b.is_float() {
        let (x, y) = (a.as_float(), b.as_float());
        let v = match kind {
            Add => Value::Float(x + y),
            Sub => Value::Float(x - y),
            Mul => Value::Float(x * y),
            Div => Value::Float(x / y),
            Rem => Value::Float(x % y),
            Lt => Value::from(x < y),
            Le => Value::from(x <= y),
            Gt => Value::from(x > y),
            Ge => Value::from(x >= y),
            Eq => Value::from(x == y),
            Ne => Value::from(x != y),
            BitAnd | BitOr | BitXor | Shl | Shr => {
                return Err(ExecError::new("bitwise operation on float"))
            }
        };
        return Ok(v);
    }
    let (x, y) = (a.as_int(), b.as_int());
    let v = match kind {
        Add => Value::Int(x.wrapping_add(y)),
        Sub => Value::Int(x.wrapping_sub(y)),
        Mul => Value::Int(x.wrapping_mul(y)),
        Div => {
            if y == 0 {
                return Err(ExecError::new("integer division by zero"));
            }
            Value::Int(x.wrapping_div(y))
        }
        Rem => {
            if y == 0 {
                return Err(ExecError::new("integer remainder by zero"));
            }
            Value::Int(x.wrapping_rem(y))
        }
        Lt => Value::from(x < y),
        Le => Value::from(x <= y),
        Gt => Value::from(x > y),
        Ge => Value::from(x >= y),
        Eq => Value::from(x == y),
        Ne => Value::from(x != y),
        BitAnd => Value::Int(x & y),
        BitOr => Value::Int(x | y),
        BitXor => Value::Int(x ^ y),
        Shl => Value::Int(x.wrapping_shl((y & 63) as u32)),
        Shr => Value::Int(x.wrapping_shr((y & 63) as u32)),
    };
    Ok(v)
}

fn un_op(kind: UnKind, a: Value) -> Value {
    match kind {
        UnKind::Neg => match a {
            Value::Float(f) => Value::Float(-f),
            other => Value::Int(-other.as_int()),
        },
        UnKind::Not => Value::from(!a.is_truthy()),
        UnKind::BitNot => Value::Int(!a.as_int()),
    }
}

fn atomic_apply(op: AtomicOp, old: Value, operand: Value) -> Result<Value, ExecError> {
    let v = match op {
        AtomicOp::Add => bin_op(BinKind::Add, old, operand)?,
        AtomicOp::Sub => bin_op(BinKind::Sub, old, operand)?,
        AtomicOp::Max => {
            if old.is_float() || operand.is_float() {
                Value::Float(old.as_float().max(operand.as_float()))
            } else {
                Value::Int(old.as_int().max(operand.as_int()))
            }
        }
        AtomicOp::Min => {
            if old.is_float() || operand.is_float() {
                Value::Float(old.as_float().min(operand.as_float()))
            } else {
                Value::Int(old.as_int().min(operand.as_int()))
            }
        }
        AtomicOp::Exch => operand,
        AtomicOp::Or => Value::Int(old.as_int() | operand.as_int()),
        AtomicOp::And => Value::Int(old.as_int() & operand.as_int()),
        AtomicOp::Cas => unreachable!("handled separately"),
    };
    Ok(v)
}

fn intrinsic1(i: Intrinsic, a: Value) -> Value {
    match i {
        Intrinsic::Abs => match a {
            Value::Float(f) => Value::Float(f.abs()),
            other => Value::Int(other.as_int().abs()),
        },
        Intrinsic::Sqrt => Value::Float(a.as_float().sqrt()),
        Intrinsic::Ceil => Value::Float(a.as_float().ceil()),
        Intrinsic::Floor => Value::Float(a.as_float().floor()),
        Intrinsic::Exp => Value::Float(a.as_float().exp()),
        Intrinsic::Log => Value::Float(a.as_float().ln()),
        _ => unreachable!("binary intrinsic"),
    }
}

fn intrinsic2(i: Intrinsic, a: Value, b: Value) -> Value {
    match i {
        Intrinsic::Min => {
            if a.is_float() || b.is_float() {
                Value::Float(a.as_float().min(b.as_float()))
            } else {
                Value::Int(a.as_int().min(b.as_int()))
            }
        }
        Intrinsic::Max => {
            if a.is_float() || b.is_float() {
                Value::Float(a.as_float().max(b.as_float()))
            } else {
                Value::Int(a.as_int().max(b.as_int()))
            }
        }
        Intrinsic::Pow => Value::Float(a.as_float().powf(b.as_float())),
        _ => unreachable!("unary intrinsic"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile_program;

    fn machine(src: &str) -> Machine {
        let p = dp_frontend::parse(src).unwrap();
        Machine::new(compile_program(&p).unwrap())
    }

    #[test]
    fn simple_kernel_writes_memory() {
        let mut m = machine("__global__ void k(int* d) { d[threadIdx.x] = threadIdx.x * 2; }");
        let buf = m.alloc(8);
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(
            m.read_i64s(buf, 8).unwrap(),
            vec![0, 2, 4, 6, 8, 10, 12, 14]
        );
    }

    #[test]
    fn grid_and_block_indexing() {
        let mut m = machine(
            "__global__ void k(int* d, int n) { \
                 int i = blockIdx.x * blockDim.x + threadIdx.x; \
                 if (i < n) { d[i] = i; } }",
        );
        let buf = m.alloc(100);
        m.launch_host("k", 4, 32, &[Value::Int(buf), Value::Int(100)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        let data = m.read_i64s(buf, 100).unwrap();
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn loops_and_floats() {
        let mut m = machine(
            "__global__ void k(float* out, int n) { \
                 float sum = 0.0; \
                 for (int i = 0; i < n; ++i) { sum += (float)i * 0.5; } \
                 out[0] = sum; }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf), Value::Int(10)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_f64s(buf, 1).unwrap()[0], 22.5);
    }

    #[test]
    fn device_function_calls() {
        let mut m = machine(
            "__device__ int square(int x) { return x * x; }\n\
             __global__ void k(int* d) { d[threadIdx.x] = square(threadIdx.x); }",
        );
        let buf = m.alloc(4);
        m.launch_host("k", 1, 4, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 4).unwrap(), vec![0, 1, 4, 9]);
    }

    #[test]
    fn recursion_works() {
        let mut m = machine(
            "__device__ int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n\
             __global__ void k(int* d) { d[0] = fact(6); }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 720);
    }

    #[test]
    fn atomics_are_deterministic() {
        let mut m = machine("__global__ void k(int* counter) { atomicAdd(&counter[0], 1); }");
        let buf = m.alloc(1);
        m.launch_host("k", 4, 64, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 256);
    }

    #[test]
    fn atomic_max_min_cas() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 atomicMax(&d[0], threadIdx.x); \
                 atomicMin(&d[1], threadIdx.x); \
                 atomicCAS(&d[2], 0, threadIdx.x + 100); }",
        );
        let buf = m.alloc(3);
        m.mem.write(buf + 1, Value::Int(999)).unwrap();
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let d = m.read_i64s(buf, 3).unwrap();
        assert_eq!(d[0], 7);
        assert_eq!(d[1], 0);
        assert_eq!(d[2], 100, "only thread 0's CAS succeeds");
    }

    #[test]
    fn syncthreads_orders_phases() {
        // Thread 0 writes after the barrier what thread 7 wrote before it.
        let mut m = machine(
            "__global__ void k(int* d) { \
                 __shared__ int tile[8]; \
                 tile[threadIdx.x] = threadIdx.x * 10; \
                 __syncthreads(); \
                 d[threadIdx.x] = tile[7 - threadIdx.x]; }",
        );
        let buf = m.alloc(8);
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(
            m.read_i64s(buf, 8).unwrap(),
            vec![70, 60, 50, 40, 30, 20, 10, 0]
        );
    }

    #[test]
    fn dynamic_launch_executes_child() {
        let mut m = machine(
            "__global__ void child(int* d, int base) { d[base + threadIdx.x] = 1; }\n\
             __global__ void parent(int* d) { child<<<1, 4>>>(d, threadIdx.x * 4); }",
        );
        let buf = m.alloc(16);
        m.launch_host("parent", 1, 4, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 16).unwrap(), vec![1; 16]);
        assert_eq!(m.stats().device_launches, 4);
        let trace = m.take_trace();
        assert_eq!(trace.grids.len(), 5);
        assert_eq!(trace.device_launches(), 4);
    }

    #[test]
    fn zero_sized_launch_is_noop() {
        let mut m = machine(
            "__global__ void child(int* d) { d[0] = 99; }\n\
             __global__ void parent(int* d, int n) { child<<<n, 32>>>(d); }",
        );
        let buf = m.alloc(1);
        m.launch_host("parent", 1, 1, &[Value::Int(buf), Value::Int(0)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 0);
        assert_eq!(m.stats().empty_launches, 1);
        assert_eq!(m.stats().device_launches, 0);
    }

    #[test]
    fn nested_launches_two_levels() {
        let mut m = machine(
            "__global__ void leaf(int* d) { atomicAdd(&d[0], 1); }\n\
             __global__ void mid(int* d) { leaf<<<1, 2>>>(d); }\n\
             __global__ void root(int* d) { mid<<<2, 1>>>(d); }",
        );
        let buf = m.alloc(1);
        m.launch_host("root", 1, 1, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        // root → 2 mid blocks × 1 thread → 2 leaf launches × 2 threads.
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 4);
    }

    #[test]
    fn dim3_launch_configuration() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 int i = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x + threadIdx.x; \
                 d[i] = blockIdx.y; }",
        );
        let buf = m.alloc(24);
        m.launch_host("k", Value::Dim3([3, 2, 1]), 4, &[Value::Int(buf)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        let d = m.read_i64s(buf, 24).unwrap();
        assert_eq!(d[0], 0);
        assert_eq!(d[23], 1);
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let mut m = machine("__global__ void k(int* d) { d[1000000] = 1; }");
        let buf = m.alloc(4);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        let err = m.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn division_by_zero_errors() {
        let mut m = machine("__global__ void k(int* d, int z) { d[0] = 5 / z; }");
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf), Value::Int(0)])
            .unwrap();
        assert!(m.run_to_quiescence().is_err());
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let p =
            dp_frontend::parse("__global__ void k(int* d) { while (true) { d[0] = 1; } }").unwrap();
        let module = compile_program(&p).unwrap();
        let limits = ExecLimits {
            max_instructions: 10_000,
            ..Default::default()
        };
        let mut m = Machine::with_config(module, CostModel::default(), limits);
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        let err = m.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("instruction budget"));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut m = machine("__global__ void k(int* d) { d[0] = 1; }");
        let buf = m.alloc(1);
        assert!(m.launch_host("k", 1, 2048, &[Value::Int(buf)]).is_err());
    }

    #[test]
    fn trace_records_warp_cycles_and_divergence() {
        // Thread 31 does far more work; warp max must reflect it.
        let mut m = machine(
            "__global__ void k(int* d) { \
                 if (threadIdx.x == 31) { \
                     int s = 0; \
                     for (int i = 0; i < 1000; ++i) { s += i; } \
                     d[0] = s; \
                 } }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 64, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let trace = m.take_trace();
        let block = &trace.grids[0].blocks[0];
        assert_eq!(block.warp_cycles.len(), 2);
        assert!(
            block.warp_cycles[0] > 10 * block.warp_cycles[1],
            "divergent warp should dominate: {:?}",
            block.warp_cycles
        );
    }

    #[test]
    fn launch_presence_overhead_is_charged() {
        let src_with = "__global__ void c(int* d) { d[0] = 1; }\n\
                        __global__ void k(int* d, int n) { if (n > 1000) { c<<<1, 1>>>(d); } d[1] = 2; }";
        let src_without = "__global__ void k(int* d, int n) { d[1] = 2; }";
        let run = |src: &str| {
            let mut m = machine(src);
            let buf = m.alloc(2);
            m.launch_host("k", 1, 32, &[Value::Int(buf), Value::Int(0)])
                .unwrap();
            m.run_to_quiescence().unwrap();
            let t = m.take_trace();
            t.grids[0].blocks[0].warp_cycles[0]
        };
        let with = run(src_with);
        let without = run(src_without);
        assert!(
            with > without + CostModel::default().launch_presence_overhead / 2,
            "kernel containing a (never-executed) launch must be slower: {with} vs {without}"
        );
    }

    #[test]
    fn fusion_is_trace_transparent() {
        // Fused and unfused execution of the same program must agree on
        // results, statistics, and the entire execution trace (warp cycles,
        // per-origin attribution, launch records).
        let src = "__global__ void child(int* d, int n) { \
                       int i = blockIdx.x * blockDim.x + threadIdx.x; \
                       if (i < n) { atomicAdd(&d[i], i * 3 + 1); } }\n\
                   __global__ void parent(int* d, int* deg, int numV) { \
                       int v = blockIdx.x * blockDim.x + threadIdx.x; \
                       if (v < numV) { \
                           int count = deg[v]; \
                           float acc = 0.0; \
                           for (int j = 0; j < count; ++j) { acc += (float)j * 0.5; } \
                           d[numV + v] = (int)acc; \
                           if (count > 0) { child<<<(count + 3) / 4, 4>>>(d, count); } } }";
        let run = |fuse: bool| {
            let p = dp_frontend::parse(src).unwrap();
            let module =
                crate::lower::compile_program_with(&p, crate::lower::LowerOptions { fuse })
                    .unwrap();
            let mut m = Machine::new(module);
            let d = m.alloc(32);
            let deg = m.alloc_i64s(&[3, 0, 7, 1, 5, 2]);
            m.launch_host(
                "parent",
                2,
                4,
                &[Value::Int(d), Value::Int(deg), Value::Int(6)],
            )
            .unwrap();
            m.run_to_quiescence().unwrap();
            let out = m.read_i64s(d, 32).unwrap();
            let stats = m.stats();
            (out, stats, m.take_trace())
        };
        let (out_f, stats_f, trace_f) = run(true);
        let (out_u, stats_u, trace_u) = run(false);
        assert_eq!(out_f, out_u);
        assert_eq!(stats_f, stats_u, "stats count original instruction units");
        assert_eq!(trace_f, trace_u, "traces must be byte-identical");
        assert!(stats_f.instructions > 0, "stats.instructions is populated");
        assert_eq!(stats_f.instructions, trace_f.instructions());
    }

    #[test]
    fn huge_custom_cost_models_are_supported() {
        // CostModel fields are public u64s; per-instruction costs beyond
        // u32 must accumulate, not panic at machine construction.
        let p = dp_frontend::parse("__global__ void k(int* d) { d[0] = d[0] + 1; }").unwrap();
        let cost = CostModel {
            mem: 5_000_000_000,
            ..CostModel::default()
        };
        let mut m = Machine::with_config(compile_program(&p).unwrap(), cost, ExecLimits::default());
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let trace = m.take_trace();
        assert!(trace.grids[0].blocks[0].critical_warp_cycles() > 10_000_000_000);
    }

    #[test]
    fn state_reuse_knob_does_not_change_results() {
        let src = "__global__ void k(int* d) { \
                       __shared__ int tile[8]; \
                       tile[threadIdx.x] = threadIdx.x + blockIdx.x; \
                       __syncthreads(); \
                       d[blockIdx.x * 8 + threadIdx.x] = tile[7 - threadIdx.x]; }";
        let run = |reuse: bool| {
            let mut m = machine(src);
            m.set_state_reuse(reuse);
            let d = m.alloc(64);
            m.launch_host("k", 8, 8, &[Value::Int(d)]).unwrap();
            m.run_to_quiescence().unwrap();
            (m.read_i64s(d, 64).unwrap(), m.take_trace())
        };
        let (out_pool, trace_pool) = run(true);
        let (out_fresh, trace_fresh) = run(false);
        assert_eq!(out_pool, out_fresh);
        assert_eq!(trace_pool, trace_fresh);
    }

    #[test]
    fn bulk_memory_ops_match_scalar_semantics() {
        let mut mem = Memory::new();
        let base = mem.alloc(8);
        mem.fill(base, 8, Value::Int(7)).unwrap();
        assert_eq!(mem.read(base + 3).unwrap(), Value::Int(7));
        mem.write_range(base + 1, &[Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(
            mem.read_range(base, 4).unwrap(),
            &[Value::Int(7), Value::Int(1), Value::Int(2), Value::Int(7)]
        );
        // Empty operations succeed anywhere, as the scalar loop did.
        mem.fill(base + 8, 0, Value::Int(0)).unwrap();
        assert_eq!(mem.read_range(base, 0).unwrap(), &[]);
        // One-past-the-end and null ranges fail with a single check.
        assert!(mem.fill(base, 9, Value::Int(0)).is_err());
        assert!(mem.read_range(0, 1).is_err());
        assert!(mem
            .write_range(base + 7, &[Value::Int(0), Value::Int(0)])
            .is_err());
        assert!(mem.fill(-4, 2, Value::Int(0)).is_err());
    }

    #[test]
    fn origin_cycles_sum_to_block_totals() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 for (int i = 0; i < 10; ++i) { d[threadIdx.x] += i; } }",
        );
        let buf = m.alloc(32);
        m.launch_host("k", 1, 32, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let trace = m.take_trace();
        let block = &trace.grids[0].blocks[0];
        assert!(block.origin_cycles.total() > 0);
        assert_eq!(
            block.origin_cycles.get(CodeOrigin::Original),
            block.origin_cycles.total(),
            "untransformed code is all Original"
        );
    }
}
