//! The GPU execution machine: global memory, grids, blocks, threads,
//! barriers, atomics, and device-side launches.
//!
//! Execution is *functionally deterministic*: grids run in FIFO launch
//! order; within a block, threads run in index order between barriers.
//! Timing is not modelled here — the machine produces an
//! [`ExecutionTrace`](crate::trace::ExecutionTrace) that `dp-sim` replays
//! against a hardware model.

use crate::bytecode::*;
use crate::error::ExecError;
use crate::trace::*;
use crate::value::{Value, SHARED_SPACE_BASE};
use dp_frontend::ast::{CodeOrigin, FnQual, Type};
use std::collections::VecDeque;

/// Execution limits (to keep tests and runaway kernels bounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum dynamic instructions per `run_to_quiescence` call.
    pub max_instructions: u64,
    /// Maximum pending (not yet executed) grids, modelling CUDA's pending
    /// launch buffer (the paper sets `cudaLimitDevRuntimePendingLaunchCount`
    /// to avoid overflowing it; we default to a large pool).
    pub max_pending: usize,
    /// Maximum threads per block (hardware limit).
    pub max_threads_per_block: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_instructions: u64::MAX,
            max_pending: 1 << 22,
            max_threads_per_block: 1024,
        }
    }
}

/// Simulated device global memory (word-addressed).
#[derive(Debug, Default)]
pub struct Memory {
    data: Vec<Value>,
    bump: usize,
}

impl Memory {
    fn new() -> Self {
        // Address 0 is reserved as a null pointer.
        Memory {
            data: vec![Value::Int(0)],
            bump: 1,
        }
    }

    /// Allocates `words` words, returning the base address.
    pub fn alloc(&mut self, words: usize) -> i64 {
        let base = self.bump;
        self.bump += words;
        if self.data.len() < self.bump {
            self.data.resize(self.bump, Value::Int(0));
        }
        base as i64
    }

    fn check(&self, addr: i64) -> Result<usize, ExecError> {
        let a = addr as usize;
        if addr <= 0 || a >= self.bump {
            return Err(ExecError::new(format!(
                "memory access out of bounds: address {addr} (allocated up to {})",
                self.bump
            )));
        }
        Ok(a)
    }

    /// Reads one word.
    pub fn read(&self, addr: i64) -> Result<Value, ExecError> {
        Ok(self.data[self.check(addr)?])
    }

    /// Writes one word.
    pub fn write(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        let a = self.check(addr)?;
        self.data[a] = value;
        Ok(())
    }

    /// Fills a range with a value (buffer zeroing).
    pub fn fill(&mut self, addr: i64, words: usize, value: Value) -> Result<(), ExecError> {
        for i in 0..words {
            self.write(addr + i as i64, value)?;
        }
        Ok(())
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> usize {
        self.bump
    }
}

struct Frame {
    func: FuncId,
    pc: usize,
    locals: Vec<Value>,
}

enum ThreadStatus {
    Running,
    AtBarrier,
    Done,
}

struct Thread {
    frames: Vec<Frame>,
    stack: Vec<Value>,
    status: ThreadStatus,
    cycles: u64,
    instructions: u64,
    origin_cycles: OriginCycles,
    tidx: [i64; 3],
}

struct PendingGrid {
    kernel: FuncId,
    grid: [i64; 3],
    block: [i64; 3],
    args: Vec<Value>,
    origin: LaunchOrigin,
    id: usize,
}

/// Runtime statistics for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Grids executed.
    pub grids_executed: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Device-side launch instructions that created a grid.
    pub device_launches: u64,
    /// Launches skipped because the grid size was zero.
    pub empty_launches: u64,
}

/// The simulated GPU: compiled module + memory + launch queue.
pub struct Machine {
    module: Module,
    /// Global device memory.
    pub mem: Memory,
    cost: CostModel,
    limits: ExecLimits,
    pending: VecDeque<PendingGrid>,
    next_grid_id: usize,
    trace: ExecutionTrace,
    stats: MachineStats,
    instr_budget: u64,
}

impl Machine {
    /// Creates a machine for a compiled module with default cost model and
    /// limits.
    pub fn new(module: Module) -> Self {
        Machine::with_config(module, CostModel::default(), ExecLimits::default())
    }

    /// Creates a machine with an explicit cost model and limits.
    pub fn with_config(module: Module, cost: CostModel, limits: ExecLimits) -> Self {
        Machine {
            module,
            mem: Memory::new(),
            cost,
            limits,
            pending: VecDeque::new(),
            next_grid_id: 0,
            trace: ExecutionTrace::default(),
            stats: MachineStats::default(),
            instr_budget: limits.max_instructions,
        }
    }

    /// The compiled module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Statistics so far.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Allocates device memory.
    pub fn alloc(&mut self, words: usize) -> i64 {
        self.mem.alloc(words)
    }

    /// Allocates and writes a slice of integers.
    pub fn alloc_i64s(&mut self, values: &[i64]) -> i64 {
        let base = self.mem.alloc(values.len().max(1));
        for (i, v) in values.iter().enumerate() {
            self.mem
                .write(base + i as i64, Value::Int(*v))
                .expect("freshly allocated");
        }
        base
    }

    /// Allocates and writes a slice of floats.
    pub fn alloc_f64s(&mut self, values: &[f64]) -> i64 {
        let base = self.mem.alloc(values.len().max(1));
        for (i, v) in values.iter().enumerate() {
            self.mem
                .write(base + i as i64, Value::Float(*v))
                .expect("freshly allocated");
        }
        base
    }

    /// Reads `len` integers starting at `ptr`.
    pub fn read_i64s(&self, ptr: i64, len: usize) -> Result<Vec<i64>, ExecError> {
        (0..len)
            .map(|i| self.mem.read(ptr + i as i64).map(|v| v.as_int()))
            .collect()
    }

    /// Reads `len` floats starting at `ptr`.
    pub fn read_f64s(&self, ptr: i64, len: usize) -> Result<Vec<f64>, ExecError> {
        (0..len)
            .map(|i| self.mem.read(ptr + i as i64).map(|v| v.as_float()))
            .collect()
    }

    /// Enqueues a host-side kernel launch. Returns the grid id.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown, not `__global__`, or the
    /// configuration violates hardware limits.
    pub fn launch_host(
        &mut self,
        kernel: &str,
        grid: impl Into<Value>,
        block: impl Into<Value>,
        args: &[Value],
    ) -> Result<usize, ExecError> {
        let id = self
            .module
            .id_of(kernel)
            .ok_or_else(|| ExecError::new(format!("unknown kernel `{kernel}`")))?;
        self.enqueue(id, grid.into().as_dim3(), block.into().as_dim3(), args.to_vec(), LaunchOrigin::Host)
    }

    fn enqueue(
        &mut self,
        kernel: FuncId,
        grid: [i64; 3],
        block: [i64; 3],
        args: Vec<Value>,
        origin: LaunchOrigin,
    ) -> Result<usize, ExecError> {
        let func = self.module.function(kernel);
        if func.qual != FnQual::Global {
            return Err(ExecError::new(format!(
                "`{}` is not a __global__ kernel",
                func.name
            )));
        }
        if args.len() != func.param_types.len() {
            return Err(ExecError::new(format!(
                "kernel `{}` takes {} arguments, got {}",
                func.name,
                func.param_types.len(),
                args.len()
            )));
        }
        let threads = block[0] * block[1] * block[2];
        if threads <= 0 || threads > self.limits.max_threads_per_block as i64 {
            return Err(ExecError::new(format!(
                "invalid block size {threads} for kernel `{}`",
                func.name
            )));
        }
        if grid.iter().any(|&d| d < 0) {
            return Err(ExecError::new(format!(
                "negative grid dimension for kernel `{}`",
                func.name
            )));
        }
        if self.pending.len() >= self.limits.max_pending {
            return Err(ExecError::new(
                "pending launch buffer overflow (raise ExecLimits::max_pending)",
            ));
        }
        let id = self.next_grid_id;
        self.next_grid_id += 1;
        self.pending.push_back(PendingGrid {
            kernel,
            grid,
            block,
            args,
            origin,
            id,
        });
        Ok(id)
    }

    /// Runs every pending grid (and everything they launch) to completion —
    /// the equivalent of `cudaDeviceSynchronize()`.
    pub fn run_to_quiescence(&mut self) -> Result<(), ExecError> {
        while let Some(grid) = self.pending.pop_front() {
            self.execute_grid(grid)?;
        }
        Ok(())
    }

    /// Takes the accumulated execution trace, leaving an empty one.
    pub fn take_trace(&mut self) -> ExecutionTrace {
        std::mem::take(&mut self.trace)
    }

    /// Read-only view of the trace so far.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    fn execute_grid(&mut self, grid: PendingGrid) -> Result<(), ExecError> {
        let num_blocks = grid.grid[0] * grid.grid[1] * grid.grid[2];
        let mut gtrace = GridTrace {
            id: grid.id,
            kernel: self.module.function(grid.kernel).name.clone(),
            grid_dim: grid.grid,
            block_dim: grid.block,
            origin: grid.origin,
            blocks: Vec::with_capacity(num_blocks as usize),
        };
        for linear in 0..num_blocks {
            let bx = linear % grid.grid[0];
            let by = (linear / grid.grid[0]) % grid.grid[1];
            let bz = linear / (grid.grid[0] * grid.grid[1]);
            let btrace = self.execute_block(&grid, [bx, by, bz], linear as u64)?;
            gtrace.blocks.push(btrace);
        }
        self.stats.grids_executed += 1;
        // Grid ids are assigned at enqueue time in FIFO order, so the
        // executed order matches id order.
        debug_assert_eq!(gtrace.id, self.trace.grids.len());
        self.trace.grids.push(gtrace);
        Ok(())
    }

    fn execute_block(
        &mut self,
        grid: &PendingGrid,
        block_idx: [i64; 3],
        linear_block: u64,
    ) -> Result<BlockTrace, ExecError> {
        let func = self.module.function(grid.kernel);
        let contains_launch = func.contains_launch;
        let n_locals = func.n_locals;
        let param_types = func.param_types.clone();
        let n_threads = (grid.block[0] * grid.block[1] * grid.block[2]) as usize;
        let shared_words = func.shared_words as usize;
        let mut shared: Vec<Value> = vec![Value::Int(0); shared_words];

        let mut threads: Vec<Thread> = (0..n_threads)
            .map(|t| {
                let t = t as i64;
                let tx = t % grid.block[0];
                let ty = (t / grid.block[0]) % grid.block[1];
                let tz = t / (grid.block[0] * grid.block[1]);
                let mut locals = vec![Value::Int(0); n_locals as usize];
                for (i, (arg, ty_)) in grid.args.iter().zip(&param_types).enumerate() {
                    locals[i] = coerce(*arg, ty_);
                }
                Thread {
                    frames: vec![Frame {
                        func: grid.kernel,
                        pc: 0,
                        locals,
                    }],
                    stack: Vec::with_capacity(16),
                    status: ThreadStatus::Running,
                    cycles: 0,
                    instructions: 0,
                    origin_cycles: OriginCycles::default(),
                    tidx: [tx, ty, tz],
                }
            })
            .collect();

        let mut btrace = BlockTrace::default();
        let ctx = BlockCtx {
            grid_dim: grid.grid,
            block_dim: grid.block,
            block_idx,
            grid_id: grid.id,
            linear_block,
        };

        loop {
            let mut all_done = true;
            for thread in threads.iter_mut() {
                if matches!(thread.status, ThreadStatus::Running) {
                    self.run_thread(thread, &ctx, &mut shared, &mut btrace)?;
                }
                if !matches!(thread.status, ThreadStatus::Done) {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            // Every live thread is at the barrier: release them.
            for thread in threads.iter_mut() {
                if matches!(thread.status, ThreadStatus::AtBarrier) {
                    thread.status = ThreadStatus::Running;
                }
            }
        }

        // Per-warp cost: max thread cycles within each 32-thread group.
        let presence = if contains_launch {
            self.cost.launch_presence_overhead
        } else {
            0
        };
        for chunk in threads.chunks(32) {
            let max = chunk.iter().map(|t| t.cycles + presence).max().unwrap_or(0);
            btrace.warp_cycles.push(max);
        }
        for thread in &threads {
            btrace.origin_cycles.merge(&thread.origin_cycles);
            btrace.instructions += thread.instructions;
        }
        if presence > 0 {
            btrace
                .origin_cycles
                .add(CodeOrigin::Original, presence * n_threads as u64);
        }
        Ok(btrace)
    }

    fn run_thread(
        &mut self,
        thread: &mut Thread,
        ctx: &BlockCtx,
        shared: &mut [Value],
        btrace: &mut BlockTrace,
    ) -> Result<(), ExecError> {
        loop {
            let Some(frame) = thread.frames.last_mut() else {
                thread.status = ThreadStatus::Done;
                return Ok(());
            };
            let func = &self.module.functions[frame.func as usize];
            if frame.pc >= func.code.len() {
                // Fell off the end of a void function.
                thread.frames.pop();
                if thread.frames.is_empty() {
                    thread.status = ThreadStatus::Done;
                    return Ok(());
                }
                thread.stack.push(Value::Int(0));
                continue;
            }
            let instr = func.code[frame.pc];
            let origin = func.origins[frame.pc];
            frame.pc += 1;

            let cycles = self.cost.cycles(instr.cost_class());
            thread.cycles += cycles;
            thread.instructions += 1;
            thread.origin_cycles.add(origin, cycles);
            if self.instr_budget == 0 {
                return Err(ExecError::new(
                    "instruction budget exhausted (possible infinite loop; raise ExecLimits::max_instructions)",
                ));
            }
            self.instr_budget -= 1;

            match instr {
                Instr::PushInt(v) => thread.stack.push(Value::Int(v)),
                Instr::PushFloat(v) => thread.stack.push(Value::Float(v)),
                Instr::LoadLocal(slot) => {
                    let v = thread.frames.last().unwrap().locals[slot as usize];
                    thread.stack.push(v);
                }
                Instr::StoreLocal(slot) => {
                    let v = pop(&mut thread.stack)?;
                    thread.frames.last_mut().unwrap().locals[slot as usize] = v;
                }
                Instr::LoadMem => {
                    let addr = pop(&mut thread.stack)?.as_int();
                    let v = self.load(addr, shared)?;
                    thread.stack.push(v);
                }
                Instr::StoreMem => {
                    let v = pop(&mut thread.stack)?;
                    let addr = pop(&mut thread.stack)?.as_int();
                    self.store(addr, v, shared)?;
                }
                Instr::Bin(kind) => {
                    let b = pop(&mut thread.stack)?;
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(bin_op(kind, a, b)?);
                }
                Instr::Un(kind) => {
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(un_op(kind, a));
                }
                Instr::CastInt => {
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(Value::Int(a.as_int()));
                }
                Instr::CastFloat => {
                    let a = pop(&mut thread.stack)?;
                    thread.stack.push(Value::Float(a.as_float()));
                }
                Instr::Jump(t) => thread.frames.last_mut().unwrap().pc = t as usize,
                Instr::JumpIfZero(t) => {
                    if !pop(&mut thread.stack)?.is_truthy() {
                        thread.frames.last_mut().unwrap().pc = t as usize;
                    }
                }
                Instr::JumpIfNonZero(t) => {
                    if pop(&mut thread.stack)?.is_truthy() {
                        thread.frames.last_mut().unwrap().pc = t as usize;
                    }
                }
                Instr::Call(id, nargs) => {
                    let callee = &self.module.functions[id as usize];
                    let mut locals = vec![Value::Int(0); callee.n_locals as usize];
                    for i in (0..nargs as usize).rev() {
                        let v = pop(&mut thread.stack)?;
                        locals[i] = coerce(v, &callee.param_types[i]);
                    }
                    if thread.frames.len() > 512 {
                        return Err(ExecError::new("device call stack overflow"));
                    }
                    thread.frames.push(Frame {
                        func: id,
                        pc: 0,
                        locals,
                    });
                }
                Instr::Ret => {
                    let v = pop(&mut thread.stack)?;
                    thread.frames.pop();
                    if thread.frames.is_empty() {
                        thread.status = ThreadStatus::Done;
                        return Ok(());
                    }
                    thread.stack.push(v);
                }
                Instr::RetVoid => {
                    thread.frames.pop();
                    if thread.frames.is_empty() {
                        thread.status = ThreadStatus::Done;
                        return Ok(());
                    }
                    thread.stack.push(Value::Int(0));
                }
                Instr::Launch(id, nargs) => {
                    let mut args = vec![Value::Int(0); nargs as usize];
                    for i in (0..nargs as usize).rev() {
                        args[i] = pop(&mut thread.stack)?;
                    }
                    let block = pop(&mut thread.stack)?.as_dim3();
                    let grid = pop(&mut thread.stack)?.as_dim3();
                    let total_blocks = grid[0] * grid[1] * grid[2];
                    if total_blocks <= 0 {
                        self.stats.empty_launches += 1;
                    } else {
                        let child = self.enqueue(
                            id,
                            grid,
                            block,
                            args,
                            LaunchOrigin::Device {
                                parent_grid: ctx.grid_id,
                                parent_block: ctx.linear_block,
                                issue_cycles: thread.cycles,
                            },
                        )?;
                        btrace.launches.push(LaunchRecord {
                            child_grid: child,
                            issue_cycles: thread.cycles,
                        });
                        self.stats.device_launches += 1;
                    }
                }
                Instr::Sync => {
                    thread.status = ThreadStatus::AtBarrier;
                    return Ok(());
                }
                Instr::Fence => {
                    // Sequential block execution makes fences functional
                    // no-ops; the cycle cost was already charged.
                }
                Instr::Atomic(op) => {
                    let (old, new) = match op {
                        AtomicOp::Cas => {
                            let val = pop(&mut thread.stack)?;
                            let cmp = pop(&mut thread.stack)?;
                            let addr = pop(&mut thread.stack)?.as_int();
                            let old = self.load(addr, shared)?;
                            let new = if old == cmp { val } else { old };
                            self.store(addr, new, shared)?;
                            thread.stack.push(old);
                            continue;
                        }
                        _ => {
                            let operand = pop(&mut thread.stack)?;
                            let addr = pop(&mut thread.stack)?.as_int();
                            let old = self.load(addr, shared)?;
                            let new = atomic_apply(op, old, operand)?;
                            self.store(addr, new, shared)?;
                            (old, (addr, new))
                        }
                    };
                    let _ = new;
                    thread.stack.push(old);
                }
                Instr::Intrinsic(i) => {
                    let v = match i {
                        Intrinsic::Min | Intrinsic::Max | Intrinsic::Pow => {
                            let b = pop(&mut thread.stack)?;
                            let a = pop(&mut thread.stack)?;
                            intrinsic2(i, a, b)
                        }
                        _ => {
                            let a = pop(&mut thread.stack)?;
                            intrinsic1(i, a)
                        }
                    };
                    thread.stack.push(v);
                }
                Instr::ReadSpecial(s) => {
                    let d = match s {
                        Special::ThreadIdx => thread.tidx,
                        Special::BlockIdx => ctx.block_idx,
                        Special::BlockDim => ctx.block_dim,
                        Special::GridDim => ctx.grid_dim,
                    };
                    thread.stack.push(Value::Dim3(d));
                }
                Instr::ReadSpecialComp(s, lane) => {
                    let d = match s {
                        Special::ThreadIdx => thread.tidx,
                        Special::BlockIdx => ctx.block_idx,
                        Special::BlockDim => ctx.block_dim,
                        Special::GridDim => ctx.grid_dim,
                    };
                    thread.stack.push(Value::Int(d[lane as usize]));
                }
                Instr::MakeDim3 => {
                    let z = pop(&mut thread.stack)?.as_int();
                    let y = pop(&mut thread.stack)?.as_int();
                    let x = pop(&mut thread.stack)?.as_int();
                    thread.stack.push(Value::Dim3([x, y, z]));
                }
                Instr::Dim3Member(lane) => {
                    let d = pop(&mut thread.stack)?.as_dim3();
                    thread.stack.push(Value::Int(d[lane as usize]));
                }
                Instr::Dim3SetMember(lane) => {
                    let v = pop(&mut thread.stack)?.as_int();
                    let mut d = pop(&mut thread.stack)?.as_dim3();
                    d[lane as usize] = v;
                    thread.stack.push(Value::Dim3(d));
                }
                Instr::Pop => {
                    pop(&mut thread.stack)?;
                }
                Instr::Dup => {
                    let v = *thread
                        .stack
                        .last()
                        .ok_or_else(|| ExecError::new("stack underflow on dup"))?;
                    thread.stack.push(v);
                }
                Instr::Swap => {
                    let n = thread.stack.len();
                    if n < 2 {
                        return Err(ExecError::new("stack underflow on swap"));
                    }
                    thread.stack.swap(n - 1, n - 2);
                }
            }
        }
    }

    fn load(&self, addr: i64, shared: &[Value]) -> Result<Value, ExecError> {
        if addr >= SHARED_SPACE_BASE {
            let off = (addr - SHARED_SPACE_BASE) as usize;
            shared.get(off).copied().ok_or_else(|| {
                ExecError::new(format!("shared memory access out of bounds: offset {off}"))
            })
        } else {
            self.mem.read(addr)
        }
    }

    fn store(&mut self, addr: i64, value: Value, shared: &mut [Value]) -> Result<(), ExecError> {
        if addr >= SHARED_SPACE_BASE {
            let off = (addr - SHARED_SPACE_BASE) as usize;
            match shared.get_mut(off) {
                Some(slot) => {
                    *slot = value;
                    Ok(())
                }
                None => Err(ExecError::new(format!(
                    "shared memory access out of bounds: offset {off}"
                ))),
            }
        } else {
            self.mem.write(addr, value)
        }
    }
}

struct BlockCtx {
    grid_dim: [i64; 3],
    block_dim: [i64; 3],
    block_idx: [i64; 3],
    grid_id: usize,
    linear_block: u64,
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, ExecError> {
    stack
        .pop()
        .ok_or_else(|| ExecError::new("operand stack underflow"))
}

fn coerce(v: Value, ty: &Type) -> Value {
    match ty {
        Type::Int | Type::UInt | Type::Long | Type::ULong | Type::Bool => Value::Int(v.as_int()),
        Type::Float | Type::Double => Value::Float(v.as_float()),
        Type::Dim3 => Value::Dim3(v.as_dim3()),
        Type::Ptr(_) | Type::Void => v,
    }
}

fn bin_op(kind: BinKind, a: Value, b: Value) -> Result<Value, ExecError> {
    use BinKind::*;
    if a.is_float() || b.is_float() {
        let (x, y) = (a.as_float(), b.as_float());
        let v = match kind {
            Add => Value::Float(x + y),
            Sub => Value::Float(x - y),
            Mul => Value::Float(x * y),
            Div => Value::Float(x / y),
            Rem => Value::Float(x % y),
            Lt => Value::from(x < y),
            Le => Value::from(x <= y),
            Gt => Value::from(x > y),
            Ge => Value::from(x >= y),
            Eq => Value::from(x == y),
            Ne => Value::from(x != y),
            BitAnd | BitOr | BitXor | Shl | Shr => {
                return Err(ExecError::new("bitwise operation on float"))
            }
        };
        return Ok(v);
    }
    let (x, y) = (a.as_int(), b.as_int());
    let v = match kind {
        Add => Value::Int(x.wrapping_add(y)),
        Sub => Value::Int(x.wrapping_sub(y)),
        Mul => Value::Int(x.wrapping_mul(y)),
        Div => {
            if y == 0 {
                return Err(ExecError::new("integer division by zero"));
            }
            Value::Int(x.wrapping_div(y))
        }
        Rem => {
            if y == 0 {
                return Err(ExecError::new("integer remainder by zero"));
            }
            Value::Int(x.wrapping_rem(y))
        }
        Lt => Value::from(x < y),
        Le => Value::from(x <= y),
        Gt => Value::from(x > y),
        Ge => Value::from(x >= y),
        Eq => Value::from(x == y),
        Ne => Value::from(x != y),
        BitAnd => Value::Int(x & y),
        BitOr => Value::Int(x | y),
        BitXor => Value::Int(x ^ y),
        Shl => Value::Int(x.wrapping_shl((y & 63) as u32)),
        Shr => Value::Int(x.wrapping_shr((y & 63) as u32)),
    };
    Ok(v)
}

fn un_op(kind: UnKind, a: Value) -> Value {
    match kind {
        UnKind::Neg => match a {
            Value::Float(f) => Value::Float(-f),
            other => Value::Int(-other.as_int()),
        },
        UnKind::Not => Value::from(!a.is_truthy()),
        UnKind::BitNot => Value::Int(!a.as_int()),
    }
}

fn atomic_apply(op: AtomicOp, old: Value, operand: Value) -> Result<Value, ExecError> {
    let v = match op {
        AtomicOp::Add => bin_op(BinKind::Add, old, operand)?,
        AtomicOp::Sub => bin_op(BinKind::Sub, old, operand)?,
        AtomicOp::Max => {
            if old.is_float() || operand.is_float() {
                Value::Float(old.as_float().max(operand.as_float()))
            } else {
                Value::Int(old.as_int().max(operand.as_int()))
            }
        }
        AtomicOp::Min => {
            if old.is_float() || operand.is_float() {
                Value::Float(old.as_float().min(operand.as_float()))
            } else {
                Value::Int(old.as_int().min(operand.as_int()))
            }
        }
        AtomicOp::Exch => operand,
        AtomicOp::Or => Value::Int(old.as_int() | operand.as_int()),
        AtomicOp::And => Value::Int(old.as_int() & operand.as_int()),
        AtomicOp::Cas => unreachable!("handled separately"),
    };
    Ok(v)
}

fn intrinsic1(i: Intrinsic, a: Value) -> Value {
    match i {
        Intrinsic::Abs => match a {
            Value::Float(f) => Value::Float(f.abs()),
            other => Value::Int(other.as_int().abs()),
        },
        Intrinsic::Sqrt => Value::Float(a.as_float().sqrt()),
        Intrinsic::Ceil => Value::Float(a.as_float().ceil()),
        Intrinsic::Floor => Value::Float(a.as_float().floor()),
        Intrinsic::Exp => Value::Float(a.as_float().exp()),
        Intrinsic::Log => Value::Float(a.as_float().ln()),
        _ => unreachable!("binary intrinsic"),
    }
}

fn intrinsic2(i: Intrinsic, a: Value, b: Value) -> Value {
    match i {
        Intrinsic::Min => {
            if a.is_float() || b.is_float() {
                Value::Float(a.as_float().min(b.as_float()))
            } else {
                Value::Int(a.as_int().min(b.as_int()))
            }
        }
        Intrinsic::Max => {
            if a.is_float() || b.is_float() {
                Value::Float(a.as_float().max(b.as_float()))
            } else {
                Value::Int(a.as_int().max(b.as_int()))
            }
        }
        Intrinsic::Pow => Value::Float(a.as_float().powf(b.as_float())),
        _ => unreachable!("unary intrinsic"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile_program;

    fn machine(src: &str) -> Machine {
        let p = dp_frontend::parse(src).unwrap();
        Machine::new(compile_program(&p).unwrap())
    }

    #[test]
    fn simple_kernel_writes_memory() {
        let mut m = machine("__global__ void k(int* d) { d[threadIdx.x] = threadIdx.x * 2; }");
        let buf = m.alloc(8);
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 8).unwrap(), vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn grid_and_block_indexing() {
        let mut m = machine(
            "__global__ void k(int* d, int n) { \
                 int i = blockIdx.x * blockDim.x + threadIdx.x; \
                 if (i < n) { d[i] = i; } }",
        );
        let buf = m.alloc(100);
        m.launch_host("k", 4, 32, &[Value::Int(buf), Value::Int(100)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        let data = m.read_i64s(buf, 100).unwrap();
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn loops_and_floats() {
        let mut m = machine(
            "__global__ void k(float* out, int n) { \
                 float sum = 0.0; \
                 for (int i = 0; i < n; ++i) { sum += (float)i * 0.5; } \
                 out[0] = sum; }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf), Value::Int(10)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_f64s(buf, 1).unwrap()[0], 22.5);
    }

    #[test]
    fn device_function_calls() {
        let mut m = machine(
            "__device__ int square(int x) { return x * x; }\n\
             __global__ void k(int* d) { d[threadIdx.x] = square(threadIdx.x); }",
        );
        let buf = m.alloc(4);
        m.launch_host("k", 1, 4, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 4).unwrap(), vec![0, 1, 4, 9]);
    }

    #[test]
    fn recursion_works() {
        let mut m = machine(
            "__device__ int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n\
             __global__ void k(int* d) { d[0] = fact(6); }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 720);
    }

    #[test]
    fn atomics_are_deterministic() {
        let mut m = machine(
            "__global__ void k(int* counter) { atomicAdd(&counter[0], 1); }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 4, 64, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 256);
    }

    #[test]
    fn atomic_max_min_cas() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 atomicMax(&d[0], threadIdx.x); \
                 atomicMin(&d[1], threadIdx.x); \
                 atomicCAS(&d[2], 0, threadIdx.x + 100); }",
        );
        let buf = m.alloc(3);
        m.mem.write(buf + 1, Value::Int(999)).unwrap();
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let d = m.read_i64s(buf, 3).unwrap();
        assert_eq!(d[0], 7);
        assert_eq!(d[1], 0);
        assert_eq!(d[2], 100, "only thread 0's CAS succeeds");
    }

    #[test]
    fn syncthreads_orders_phases() {
        // Thread 0 writes after the barrier what thread 7 wrote before it.
        let mut m = machine(
            "__global__ void k(int* d) { \
                 __shared__ int tile[8]; \
                 tile[threadIdx.x] = threadIdx.x * 10; \
                 __syncthreads(); \
                 d[threadIdx.x] = tile[7 - threadIdx.x]; }",
        );
        let buf = m.alloc(8);
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(
            m.read_i64s(buf, 8).unwrap(),
            vec![70, 60, 50, 40, 30, 20, 10, 0]
        );
    }

    #[test]
    fn dynamic_launch_executes_child() {
        let mut m = machine(
            "__global__ void child(int* d, int base) { d[base + threadIdx.x] = 1; }\n\
             __global__ void parent(int* d) { child<<<1, 4>>>(d, threadIdx.x * 4); }",
        );
        let buf = m.alloc(16);
        m.launch_host("parent", 1, 4, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 16).unwrap(), vec![1; 16]);
        assert_eq!(m.stats().device_launches, 4);
        let trace = m.take_trace();
        assert_eq!(trace.grids.len(), 5);
        assert_eq!(trace.device_launches(), 4);
    }

    #[test]
    fn zero_sized_launch_is_noop() {
        let mut m = machine(
            "__global__ void child(int* d) { d[0] = 99; }\n\
             __global__ void parent(int* d, int n) { child<<<n, 32>>>(d); }",
        );
        let buf = m.alloc(1);
        m.launch_host("parent", 1, 1, &[Value::Int(buf), Value::Int(0)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 0);
        assert_eq!(m.stats().empty_launches, 1);
        assert_eq!(m.stats().device_launches, 0);
    }

    #[test]
    fn nested_launches_two_levels() {
        let mut m = machine(
            "__global__ void leaf(int* d) { atomicAdd(&d[0], 1); }\n\
             __global__ void mid(int* d) { leaf<<<1, 2>>>(d); }\n\
             __global__ void root(int* d) { mid<<<2, 1>>>(d); }",
        );
        let buf = m.alloc(1);
        m.launch_host("root", 1, 1, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        // root → 2 mid blocks × 1 thread → 2 leaf launches × 2 threads.
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 4);
    }

    #[test]
    fn dim3_launch_configuration() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 int i = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x + threadIdx.x; \
                 d[i] = blockIdx.y; }",
        );
        let buf = m.alloc(24);
        m.launch_host("k", Value::Dim3([3, 2, 1]), 4, &[Value::Int(buf)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        let d = m.read_i64s(buf, 24).unwrap();
        assert_eq!(d[0], 0);
        assert_eq!(d[23], 1);
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let mut m = machine("__global__ void k(int* d) { d[1000000] = 1; }");
        let buf = m.alloc(4);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        let err = m.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn division_by_zero_errors() {
        let mut m = machine("__global__ void k(int* d, int z) { d[0] = 5 / z; }");
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf), Value::Int(0)])
            .unwrap();
        assert!(m.run_to_quiescence().is_err());
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let p = dp_frontend::parse("__global__ void k(int* d) { while (true) { d[0] = 1; } }")
            .unwrap();
        let module = compile_program(&p).unwrap();
        let limits = ExecLimits {
            max_instructions: 10_000,
            ..Default::default()
        };
        let mut m = Machine::with_config(module, CostModel::default(), limits);
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        let err = m.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("instruction budget"));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut m = machine("__global__ void k(int* d) { d[0] = 1; }");
        let buf = m.alloc(1);
        assert!(m.launch_host("k", 1, 2048, &[Value::Int(buf)]).is_err());
    }

    #[test]
    fn trace_records_warp_cycles_and_divergence() {
        // Thread 31 does far more work; warp max must reflect it.
        let mut m = machine(
            "__global__ void k(int* d) { \
                 if (threadIdx.x == 31) { \
                     int s = 0; \
                     for (int i = 0; i < 1000; ++i) { s += i; } \
                     d[0] = s; \
                 } }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 64, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let trace = m.take_trace();
        let block = &trace.grids[0].blocks[0];
        assert_eq!(block.warp_cycles.len(), 2);
        assert!(
            block.warp_cycles[0] > 10 * block.warp_cycles[1],
            "divergent warp should dominate: {:?}",
            block.warp_cycles
        );
    }

    #[test]
    fn launch_presence_overhead_is_charged() {
        let src_with = "__global__ void c(int* d) { d[0] = 1; }\n\
                        __global__ void k(int* d, int n) { if (n > 1000) { c<<<1, 1>>>(d); } d[1] = 2; }";
        let src_without = "__global__ void k(int* d, int n) { d[1] = 2; }";
        let run = |src: &str| {
            let mut m = machine(src);
            let buf = m.alloc(2);
            m.launch_host("k", 1, 32, &[Value::Int(buf), Value::Int(0)])
                .unwrap();
            m.run_to_quiescence().unwrap();
            let t = m.take_trace();
            t.grids[0].blocks[0].warp_cycles[0]
        };
        let with = run(src_with);
        let without = run(src_without);
        assert!(
            with > without + CostModel::default().launch_presence_overhead / 2,
            "kernel containing a (never-executed) launch must be slower: {with} vs {without}"
        );
    }

    #[test]
    fn origin_cycles_sum_to_block_totals() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 for (int i = 0; i < 10; ++i) { d[threadIdx.x] += i; } }",
        );
        let buf = m.alloc(32);
        m.launch_host("k", 1, 32, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let trace = m.take_trace();
        let block = &trace.grids[0].blocks[0];
        assert!(block.origin_cycles.total() > 0);
        assert_eq!(
            block.origin_cycles.get(CodeOrigin::Original),
            block.origin_cycles.total(),
            "untransformed code is all Original"
        );
    }
}
