//! The GPU execution machine: global memory, grids, blocks, threads,
//! barriers, atomics, and device-side launches.
//!
//! Execution is *functionally deterministic*: grids run in FIFO launch
//! order; within a block, threads run in index order between barriers.
//! Timing is not modelled here — the machine produces an
//! [`ExecutionTrace`](crate::trace::ExecutionTrace) that `dp-sim` replays
//! against a hardware model.
//!
//! ## Dispatch
//!
//! The interpreter is **direct-threaded**: at machine construction every
//! function's instruction stream is decoded into a table of
//! [`ThreadedOp`]s — a function pointer per opcode plus pre-resolved
//! operands, cycles, width, and origin — so the hot loop is an indirect
//! call per instruction instead of a `match` over the whole opcode space.
//! The original `match` dispatcher is kept behind
//! [`DispatchMode::Match`] as the reference semantics for differential
//! tests and as `vmbench`'s baseline.
//!
//! ## Parallel block execution
//!
//! Blocks of a grid are independent by construction (the premise the
//! paper's aggregation/coarsening passes exploit), so grids with enough
//! blocks execute across the shared persistent worker pool
//! ([`dp_pool::Pool::shared`], sized once from the `DPOPT_JOBS` budget —
//! no per-grid thread spawns). Workers run blocks
//! *speculatively* against a snapshot of global memory, recording
//! word-granular read/write sets; the parent then validates blocks **in
//! linear block order** — a block is valid iff it read nothing an
//! earlier block wrote — applies valid blocks' writes, and transparently
//! re-executes conflicting blocks sequentially against live memory.
//! Device launches are collected per block and enqueued in block order
//! with ids assigned at merge time. The result: traces, statistics,
//! memory, and launch order are **bit-identical to sequential execution
//! at any worker count**, the same determinism contract the sweep engine
//! enforces across cells. Kernels whose grids keep conflicting (e.g.
//! cross-block atomic reductions) are adaptively marked serial so
//! speculation overhead is not paid twice.

use crate::bytecode::*;
use crate::error::ExecError;
use crate::trace::*;
use crate::value::{Value, SHARED_SPACE_BASE};
use dp_frontend::ast::{CodeOrigin, FnQual, Type};
use dp_obs::metrics::{Counter, Histogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

// Registry mirrors of the speculation outcomes in
// [`Machine::parallel_stats`] — like `ParallelStats`, these live outside
// the determinism contract (they are observability, not results).
static VM_PAR_GRIDS: Counter = Counter::new("vm.spec.parallel_grids");
static VM_SPEC_BLOCKS: Counter = Counter::new("vm.spec.speculated_blocks");
static VM_CONFLICT_BLOCKS: Counter = Counter::new("vm.spec.conflict_blocks");
static VM_SERIALIZED: Counter = Counter::new("vm.spec.serialized_kernels");
/// Wall time of one `run_to_quiescence` call (a host launch's full
/// device-side cascade).
static VM_RUN_US: Histogram = Histogram::new("vm.run_us");

/// Grids below this many blocks always run sequentially (thread spawn and
/// merge bookkeeping would dominate).
const MIN_PARALLEL_BLOCKS: u64 = 4;

/// Per-block instruction budget during *speculative* execution. A block
/// that reads stale pre-grid state can loop where sequential execution
/// would not; exceeding this budget aborts the speculation and falls back
/// to (unbounded) sequential re-execution, so parallel runs can never hang
/// on programs that terminate sequentially.
const SPEC_BLOCK_BUDGET: u64 = 1 << 26;

/// `DPOPT_PAR_DEBUG=1` logs every speculation conflict (kernel, block,
/// reason) — the debug-mode overlap detector for workloads that are
/// expected to obey the disjoint-region discipline.
fn par_debug() -> bool {
    static DEBUG: OnceLock<bool> = OnceLock::new();
    *DEBUG.get_or_init(|| {
        std::env::var_os("DPOPT_PAR_DEBUG").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// Execution limits (to keep tests and runaway kernels bounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum dynamic instructions per `run_to_quiescence` call.
    pub max_instructions: u64,
    /// Maximum pending (not yet executed) grids, modelling CUDA's pending
    /// launch buffer (the paper sets `cudaLimitDevRuntimePendingLaunchCount`
    /// to avoid overflowing it; we default to a large pool).
    pub max_pending: usize,
    /// Maximum threads per block (hardware limit).
    pub max_threads_per_block: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_instructions: u64::MAX,
            max_pending: 1 << 22,
            max_threads_per_block: 1024,
        }
    }
}

/// Simulated device global memory (word-addressed).
#[derive(Debug, Default)]
pub struct Memory {
    data: Vec<Value>,
    bump: usize,
}

impl Memory {
    fn new() -> Self {
        // Address 0 is reserved as a null pointer.
        Memory {
            data: vec![Value::Int(0)],
            bump: 1,
        }
    }

    /// Allocates `words` words, returning the base address.
    pub fn alloc(&mut self, words: usize) -> i64 {
        let base = self.bump;
        self.bump += words;
        if self.data.len() < self.bump {
            self.data.resize(self.bump, Value::Int(0));
        }
        base as i64
    }

    fn check(&self, addr: i64) -> Result<usize, ExecError> {
        let a = addr as usize;
        if addr <= 0 || a >= self.bump {
            return Err(ExecError::new(format!(
                "memory access out of bounds: address {addr} (allocated up to {})",
                self.bump
            )));
        }
        Ok(a)
    }

    /// Bounds-checks `words` words starting at `addr` in one comparison,
    /// returning the base index. `words` must be non-zero.
    fn check_range(&self, addr: i64, words: usize) -> Result<usize, ExecError> {
        let a = addr as usize;
        if addr <= 0 || words > self.bump || a > self.bump - words {
            return Err(ExecError::new(format!(
                "memory access out of bounds: range {addr}..{} (allocated up to {})",
                addr.saturating_add(words as i64),
                self.bump
            )));
        }
        Ok(a)
    }

    /// Reads one word.
    pub fn read(&self, addr: i64) -> Result<Value, ExecError> {
        Ok(self.data[self.check(addr)?])
    }

    /// Writes one word.
    pub fn write(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        let a = self.check(addr)?;
        self.data[a] = value;
        Ok(())
    }

    /// Reads `words` consecutive words as a slice (single bounds check).
    pub fn read_range(&self, addr: i64, words: usize) -> Result<&[Value], ExecError> {
        if words == 0 {
            return Ok(&[]);
        }
        let a = self.check_range(addr, words)?;
        Ok(&self.data[a..a + words])
    }

    /// Writes `values` consecutively starting at `addr` (single bounds
    /// check + `copy_from_slice`).
    pub fn write_range(&mut self, addr: i64, values: &[Value]) -> Result<(), ExecError> {
        if values.is_empty() {
            return Ok(());
        }
        let a = self.check_range(addr, values.len())?;
        self.data[a..a + values.len()].copy_from_slice(values);
        Ok(())
    }

    /// Mutable view of `words` consecutive words (single bounds check).
    pub fn slice_mut(&mut self, addr: i64, words: usize) -> Result<&mut [Value], ExecError> {
        if words == 0 {
            return Ok(&mut []);
        }
        let a = self.check_range(addr, words)?;
        Ok(&mut self.data[a..a + words])
    }

    /// Fills a range with a value (buffer zeroing): one bounds check plus a
    /// `slice::fill`, not a checked store per word.
    pub fn fill(&mut self, addr: i64, words: usize, value: Value) -> Result<(), ExecError> {
        self.slice_mut(addr, words)?.fill(value);
        Ok(())
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> usize {
        self.bump
    }
}

struct Frame {
    func: FuncId,
    pc: usize,
    locals: Vec<Value>,
}

enum ThreadStatus {
    Running,
    AtBarrier,
    Done,
}

/// One simulated GPU thread. The *current* frame is a direct field (not
/// the top of a `Vec`), so the dispatch loops and op handlers reach
/// `pc`/`locals` without an indirection or `last_mut` check; suspended
/// caller frames live in `callers`.
struct Thread {
    frame: Frame,
    callers: Vec<Frame>,
    stack: Vec<Value>,
    status: ThreadStatus,
    cycles: u64,
    instructions: u64,
    origin_cycles: OriginCycles,
    tidx: [i64; 3],
    /// Locals vectors of popped frames, reused by later calls so steady-state
    /// call/return traffic allocates nothing.
    spare_locals: Vec<Vec<Value>>,
}

impl Thread {
    fn new() -> Self {
        Thread {
            frame: Frame {
                func: 0,
                pc: 0,
                locals: Vec::new(),
            },
            callers: Vec::new(),
            stack: Vec::with_capacity(16),
            status: ThreadStatus::Running,
            cycles: 0,
            instructions: 0,
            origin_cycles: OriginCycles::default(),
            tidx: [0; 3],
            spare_locals: Vec::new(),
        }
    }

    /// Re-arms a (possibly previously used) thread for a new block,
    /// reusing its frame/locals/stack allocations.
    fn reset(&mut self, kernel: FuncId, n_locals: u16, args: &[Value], tidx: [i64; 3]) {
        while let Some(f) = self.callers.pop() {
            self.spare_locals.push(f.locals);
        }
        self.frame.func = kernel;
        self.frame.pc = 0;
        self.frame.locals.clear();
        self.frame.locals.resize(n_locals as usize, Value::Int(0));
        self.frame.locals[..args.len()].copy_from_slice(args);
        self.stack.clear();
        self.status = ThreadStatus::Running;
        self.cycles = 0;
        self.instructions = 0;
        self.origin_cycles = OriginCycles::default();
        self.tidx = tidx;
    }

    /// Pops the current frame, resuming the caller. Returns `false` when
    /// the kernel frame itself returned (the thread is done; the frame and
    /// its locals are kept for reuse by the next `reset`).
    fn pop_frame(&mut self) -> bool {
        match self.callers.pop() {
            Some(caller) => {
                let done = std::mem::replace(&mut self.frame, caller);
                self.spare_locals.push(done.locals);
                true
            }
            None => false,
        }
    }
}

/// Shared per-instruction return helper: pops the current frame after a
/// (value-less) function end. `true` → resume the caller (`continue
/// 'frames`), `false` → the thread is done.
fn fall_off_end(thread: &mut Thread) -> bool {
    if thread.pop_frame() {
        thread.stack.push(Value::Int(0));
        true
    } else {
        thread.status = ThreadStatus::Done;
        false
    }
}

/// Per-block execution state pooled across the blocks of a grid (and across
/// grids): thread structs with their frame/locals/stack vectors, and the
/// shared-memory buffer. Reuse turns per-block setup from O(threads)
/// allocations into O(threads) resets of already-sized buffers.
#[derive(Default)]
struct BlockArena {
    threads: Vec<Thread>,
    shared: Vec<Value>,
}
// ----------------------------------------------------------------------
// Direct-threaded dispatch
// ----------------------------------------------------------------------

/// How the interpreter dispatches instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Precomputed function-pointer table per instruction (the default).
    #[default]
    Threaded,
    /// The classic `match (opcode)` loop — reference semantics for
    /// differential tests and the `vmbench` baseline.
    Match,
}

/// Outcome of one op handler.
enum Flow {
    /// Fall through to the next instruction.
    Next,
    /// The frame stack changed (call/return) — re-enter the frame loop.
    Frame,
    /// The thread yielded (barrier) or finished.
    Yield,
}

type OpResult = Result<Flow, ExecError>;
type OpFn = fn(&ThreadedOp, &mut StepCtx<'_, '_>) -> OpResult;

/// One decoded instruction slot: handler pointer, pre-resolved operands,
/// and the accounting (cycles in the machine's cost model, original
/// instruction width, origin tag) that dispatch charges before calling the
/// handler. Built once per function at machine construction.
#[derive(Clone, Copy)]
struct ThreadedOp {
    exec: OpFn,
    /// The original instruction — used by the `Match` dispatcher and by
    /// handlers with cold or many-variant payloads (atomics, intrinsics).
    instr: Instr,
    cycles: u64,
    /// Integer immediate / float bits / branch target (CmpBranchLocals).
    imm: i64,
    /// First operand: local slot, jump target, FuncId, special index, lane.
    a: u32,
    /// Second operand: local slot, argument count, lane.
    b: u32,
    width: u32,
    origin: CodeOrigin,
}

/// Borrow bundle passed to op handlers — the whole mutable per-step state,
/// split so handlers can touch disjoint fields without re-borrowing.
struct StepCtx<'a, 'm> {
    env: &'a mut ExecEnv<'m>,
    thread: &'a mut Thread,
    block: &'a BlockCtx,
    shared: &'a mut [Value],
    btrace: &'a mut BlockTrace,
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, ExecError> {
    stack
        .pop()
        .ok_or_else(|| ExecError::new("operand stack underflow"))
}

/// Maps a const-generic discriminant back to its [`BinKind`] — handlers
/// specialized per kind constant-fold `bin_op` into a single operation.
const fn bk(k: u8) -> BinKind {
    match k {
        0 => BinKind::Add,
        1 => BinKind::Sub,
        2 => BinKind::Mul,
        3 => BinKind::Div,
        4 => BinKind::Rem,
        5 => BinKind::Lt,
        6 => BinKind::Le,
        7 => BinKind::Gt,
        8 => BinKind::Ge,
        9 => BinKind::Eq,
        10 => BinKind::Ne,
        11 => BinKind::BitAnd,
        12 => BinKind::BitOr,
        13 => BinKind::BitXor,
        14 => BinKind::Shl,
        _ => BinKind::Shr,
    }
}

/// Selects the per-kind specialization of a const-generic handler.
macro_rules! select_bin {
    ($kind:expr, $f:ident) => {
        match $kind {
            BinKind::Add => $f::<0>,
            BinKind::Sub => $f::<1>,
            BinKind::Mul => $f::<2>,
            BinKind::Div => $f::<3>,
            BinKind::Rem => $f::<4>,
            BinKind::Lt => $f::<5>,
            BinKind::Le => $f::<6>,
            BinKind::Gt => $f::<7>,
            BinKind::Ge => $f::<8>,
            BinKind::Eq => $f::<9>,
            BinKind::Ne => $f::<10>,
            BinKind::BitAnd => $f::<11>,
            BinKind::BitOr => $f::<12>,
            BinKind::BitXor => $f::<13>,
            BinKind::Shl => $f::<14>,
            BinKind::Shr => $f::<15>,
        }
    };
}

fn op_push_int(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    s.thread.stack.push(Value::Int(op.imm));
    Ok(Flow::Next)
}

fn op_push_float(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    s.thread
        .stack
        .push(Value::Float(f64::from_bits(op.imm as u64)));
    Ok(Flow::Next)
}

fn op_load_local(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let v = s.thread.frame.locals[op.a as usize];
    s.thread.stack.push(v);
    Ok(Flow::Next)
}

fn op_store_local(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let v = pop(&mut s.thread.stack)?;
    s.thread.frame.locals[op.a as usize] = v;
    Ok(Flow::Next)
}

fn op_load_mem(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let addr = pop(&mut s.thread.stack)?.as_int();
    let v = s.env.load(addr, s.shared)?;
    s.thread.stack.push(v);
    Ok(Flow::Next)
}

fn op_store_mem(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let v = pop(&mut s.thread.stack)?;
    let addr = pop(&mut s.thread.stack)?.as_int();
    s.env.store(addr, v, s.shared)?;
    Ok(Flow::Next)
}

fn op_bin<const K: u8>(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let b = pop(&mut s.thread.stack)?;
    let a = pop(&mut s.thread.stack)?;
    s.thread.stack.push(bin_op(bk(K), a, b)?);
    Ok(Flow::Next)
}

fn op_un(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let Instr::Un(kind) = op.instr else {
        unreachable!("op_un bound to non-Un instruction")
    };
    let a = pop(&mut s.thread.stack)?;
    s.thread.stack.push(un_op(kind, a));
    Ok(Flow::Next)
}

fn op_cast_int(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let a = pop(&mut s.thread.stack)?;
    s.thread.stack.push(Value::Int(a.as_int()));
    Ok(Flow::Next)
}

fn op_cast_float(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let a = pop(&mut s.thread.stack)?;
    s.thread.stack.push(Value::Float(a.as_float()));
    Ok(Flow::Next)
}

fn op_jump(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    s.thread.frame.pc = op.a as usize;
    Ok(Flow::Next)
}

fn op_jump_if_zero(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    if !pop(&mut s.thread.stack)?.is_truthy() {
        s.thread.frame.pc = op.a as usize;
    }
    Ok(Flow::Next)
}

fn op_jump_if_non_zero(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    if pop(&mut s.thread.stack)?.is_truthy() {
        s.thread.frame.pc = op.a as usize;
    }
    Ok(Flow::Next)
}

fn op_call(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let id = op.a as FuncId;
    let nargs = op.b as usize;
    let callee = &s.env.module.functions[id as usize];
    let mut locals = s.thread.spare_locals.pop().unwrap_or_default();
    locals.clear();
    locals.resize(callee.n_locals as usize, Value::Int(0));
    for i in (0..nargs).rev() {
        let v = pop(&mut s.thread.stack)?;
        locals[i] = coerce(v, &callee.param_types[i]);
    }
    if s.thread.callers.len() + 1 > 512 {
        return Err(ExecError::new("device call stack overflow"));
    }
    let new_frame = Frame {
        func: id,
        pc: 0,
        locals,
    };
    let caller = std::mem::replace(&mut s.thread.frame, new_frame);
    s.thread.callers.push(caller);
    Ok(Flow::Frame)
}

fn op_ret(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let v = pop(&mut s.thread.stack)?;
    if s.thread.pop_frame() {
        s.thread.stack.push(v);
        Ok(Flow::Frame)
    } else {
        s.thread.status = ThreadStatus::Done;
        Ok(Flow::Yield)
    }
}

fn op_ret_void(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    if fall_off_end(s.thread) {
        Ok(Flow::Frame)
    } else {
        Ok(Flow::Yield)
    }
}

fn op_launch(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let id = op.a as FuncId;
    let nargs = op.b as usize;
    let mut args = vec![Value::Int(0); nargs];
    for i in (0..nargs).rev() {
        args[i] = pop(&mut s.thread.stack)?;
    }
    let block = pop(&mut s.thread.stack)?.as_dim3();
    let grid = pop(&mut s.thread.stack)?.as_dim3();
    let total_blocks = grid[0] * grid[1] * grid[2];
    if total_blocks <= 0 {
        s.env.stats.empty_launches += 1;
    } else {
        let origin = LaunchOrigin::Device {
            parent_grid: s.block.grid_id,
            parent_block: s.block.linear_block,
            issue_cycles: s.thread.cycles,
        };
        let env = &mut *s.env;
        let child = env
            .launches
            .enqueue(env.module, env.limits, id, grid, block, args, origin)?;
        s.btrace.launches.push(LaunchRecord {
            child_grid: child,
            issue_cycles: s.thread.cycles,
        });
        s.env.stats.device_launches += 1;
    }
    Ok(Flow::Next)
}

fn op_sync(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    s.thread.status = ThreadStatus::AtBarrier;
    Ok(Flow::Yield)
}

fn op_fence(_op: &ThreadedOp, _s: &mut StepCtx) -> OpResult {
    // Blocks execute atomically relative to each other (sequentially or
    // via validated speculation), so fences are functional no-ops; the
    // cycle cost was already charged.
    Ok(Flow::Next)
}

fn op_atomic(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let Instr::Atomic(kind) = op.instr else {
        unreachable!("op_atomic bound to non-Atomic instruction")
    };
    let old = match kind {
        AtomicOp::Cas => {
            let val = pop(&mut s.thread.stack)?;
            let cmp = pop(&mut s.thread.stack)?;
            let addr = pop(&mut s.thread.stack)?.as_int();
            let old = s.env.load(addr, s.shared)?;
            let new = if old == cmp { val } else { old };
            s.env.store(addr, new, s.shared)?;
            old
        }
        _ => {
            let operand = pop(&mut s.thread.stack)?;
            let addr = pop(&mut s.thread.stack)?.as_int();
            let old = s.env.load(addr, s.shared)?;
            let new = atomic_apply(kind, old, operand)?;
            s.env.store(addr, new, s.shared)?;
            old
        }
    };
    s.thread.stack.push(old);
    Ok(Flow::Next)
}

fn op_intrinsic1(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let Instr::Intrinsic(i) = op.instr else {
        unreachable!("op_intrinsic1 bound to non-Intrinsic instruction")
    };
    let a = pop(&mut s.thread.stack)?;
    s.thread.stack.push(intrinsic1(i, a));
    Ok(Flow::Next)
}

fn op_intrinsic2(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let Instr::Intrinsic(i) = op.instr else {
        unreachable!("op_intrinsic2 bound to non-Intrinsic instruction")
    };
    let b = pop(&mut s.thread.stack)?;
    let a = pop(&mut s.thread.stack)?;
    s.thread.stack.push(intrinsic2(i, a, b));
    Ok(Flow::Next)
}

fn special_dims(which: u32, s: &StepCtx) -> [i64; 3] {
    match which {
        0 => s.thread.tidx,
        1 => s.block.block_idx,
        2 => s.block.block_dim,
        _ => s.block.grid_dim,
    }
}

const fn special_index(sp: Special) -> u32 {
    match sp {
        Special::ThreadIdx => 0,
        Special::BlockIdx => 1,
        Special::BlockDim => 2,
        Special::GridDim => 3,
    }
}

fn op_read_special(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let d = special_dims(op.a, s);
    s.thread.stack.push(Value::Dim3(d));
    Ok(Flow::Next)
}

fn op_read_special_comp(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let d = special_dims(op.a, s);
    s.thread.stack.push(Value::Int(d[op.b as usize]));
    Ok(Flow::Next)
}

fn op_make_dim3(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let z = pop(&mut s.thread.stack)?.as_int();
    let y = pop(&mut s.thread.stack)?.as_int();
    let x = pop(&mut s.thread.stack)?.as_int();
    s.thread.stack.push(Value::Dim3([x, y, z]));
    Ok(Flow::Next)
}

fn op_dim3_member(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let d = pop(&mut s.thread.stack)?.as_dim3();
    s.thread.stack.push(Value::Int(d[op.a as usize]));
    Ok(Flow::Next)
}

fn op_dim3_set_member(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let v = pop(&mut s.thread.stack)?.as_int();
    let mut d = pop(&mut s.thread.stack)?.as_dim3();
    d[op.a as usize] = v;
    s.thread.stack.push(Value::Dim3(d));
    Ok(Flow::Next)
}

fn op_pop(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    pop(&mut s.thread.stack)?;
    Ok(Flow::Next)
}

fn op_dup(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let v = *s
        .thread
        .stack
        .last()
        .ok_or_else(|| ExecError::new("stack underflow on dup"))?;
    s.thread.stack.push(v);
    Ok(Flow::Next)
}

fn op_swap(_op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let n = s.thread.stack.len();
    if n < 2 {
        return Err(ExecError::new("stack underflow on swap"));
    }
    s.thread.stack.swap(n - 1, n - 2);
    Ok(Flow::Next)
}

// Fused superinstructions: each handler replicates the exact observable
// semantics (including error cases) of its expansion — see
// `Instr::expansion`. Accounting was already charged from the table.

fn op_bin_locals<const K: u8>(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let a = s.thread.frame.locals[op.a as usize];
    let b = s.thread.frame.locals[op.b as usize];
    s.thread.stack.push(bin_op(bk(K), a, b)?);
    Ok(Flow::Next)
}

fn op_bin_imm<const K: u8>(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let a = pop(&mut s.thread.stack)?;
    s.thread.stack.push(bin_op(bk(K), a, Value::Int(op.imm))?);
    Ok(Flow::Next)
}

fn op_inc_local(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let slot = op.a as usize;
    let old = s.thread.frame.locals[slot];
    s.thread.frame.locals[slot] = bin_op(BinKind::Add, old, Value::Int(op.imm))?;
    Ok(Flow::Next)
}

fn op_load_local_mem(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let addr = s.thread.frame.locals[op.a as usize].as_int();
    let v = s.env.load(addr, s.shared)?;
    s.thread.stack.push(v);
    Ok(Flow::Next)
}

fn op_cmp_branch_locals<const K: u8>(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let a = s.thread.frame.locals[op.a as usize];
    let b = s.thread.frame.locals[op.b as usize];
    if !bin_op(bk(K), a, b)?.is_truthy() {
        s.thread.frame.pc = op.imm as usize;
    }
    Ok(Flow::Next)
}

fn op_store_load_local(op: &ThreadedOp, s: &mut StepCtx) -> OpResult {
    let v = *s
        .thread
        .stack
        .last()
        .ok_or_else(|| ExecError::new("operand stack underflow"))?;
    s.thread.frame.locals[op.a as usize] = v;
    Ok(Flow::Next)
}

/// Decodes one instruction into its table slot.
fn threaded_op(instr: Instr, origin: CodeOrigin, cost: &CostModel) -> ThreadedOp {
    let mut op = ThreadedOp {
        exec: op_fence, // placeholder, overwritten below
        instr,
        cycles: instr.cost(cost),
        imm: 0,
        a: 0,
        b: 0,
        width: instr.width(),
        origin,
    };
    op.exec = match instr {
        Instr::PushInt(v) => {
            op.imm = v;
            op_push_int
        }
        Instr::PushFloat(v) => {
            op.imm = v.to_bits() as i64;
            op_push_float
        }
        Instr::LoadLocal(s) => {
            op.a = s as u32;
            op_load_local
        }
        Instr::StoreLocal(s) => {
            op.a = s as u32;
            op_store_local
        }
        Instr::LoadMem => op_load_mem,
        Instr::StoreMem => op_store_mem,
        Instr::Bin(k) => select_bin!(k, op_bin),
        Instr::Un(_) => op_un,
        Instr::CastInt => op_cast_int,
        Instr::CastFloat => op_cast_float,
        Instr::Jump(t) => {
            op.a = t;
            op_jump
        }
        Instr::JumpIfZero(t) => {
            op.a = t;
            op_jump_if_zero
        }
        Instr::JumpIfNonZero(t) => {
            op.a = t;
            op_jump_if_non_zero
        }
        Instr::Call(id, n) => {
            op.a = id;
            op.b = n as u32;
            op_call
        }
        Instr::Ret => op_ret,
        Instr::RetVoid => op_ret_void,
        Instr::Launch(id, n) => {
            op.a = id;
            op.b = n as u32;
            op_launch
        }
        Instr::Sync => op_sync,
        Instr::Fence => op_fence,
        Instr::Atomic(_) => op_atomic,
        Instr::Intrinsic(i) => match i {
            Intrinsic::Min | Intrinsic::Max | Intrinsic::Pow => op_intrinsic2,
            _ => op_intrinsic1,
        },
        Instr::ReadSpecial(sp) => {
            op.a = special_index(sp);
            op_read_special
        }
        Instr::ReadSpecialComp(sp, lane) => {
            op.a = special_index(sp);
            op.b = lane as u32;
            op_read_special_comp
        }
        Instr::MakeDim3 => op_make_dim3,
        Instr::Dim3Member(lane) => {
            op.a = lane as u32;
            op_dim3_member
        }
        Instr::Dim3SetMember(lane) => {
            op.a = lane as u32;
            op_dim3_set_member
        }
        Instr::Pop => op_pop,
        Instr::Dup => op_dup,
        Instr::Swap => op_swap,
        Instr::BinLocals(k, a, b) => {
            op.a = a as u32;
            op.b = b as u32;
            select_bin!(k, op_bin_locals)
        }
        Instr::BinImm(k, v) => {
            op.imm = v;
            select_bin!(k, op_bin_imm)
        }
        Instr::IncLocal(s, d) => {
            op.a = s as u32;
            op.imm = d;
            op_inc_local
        }
        Instr::LoadLocalMem(s) => {
            op.a = s as u32;
            op_load_local_mem
        }
        Instr::CmpBranchLocals(k, a, b, t) => {
            op.a = a as u32;
            op.b = b as u32;
            op.imm = t as i64;
            select_bin!(k, op_cmp_branch_locals)
        }
        Instr::StoreLoadLocal(s) => {
            op.a = s as u32;
            op_store_load_local
        }
    };
    op
}

/// Builds the per-function dispatch tables (one decoded slot per
/// instruction, carrying the cost model's cycles and the fusion-transparent
/// width/origin accounting).
fn build_tables(module: &Module, cost: &CostModel) -> Vec<Box<[ThreadedOp]>> {
    module
        .functions
        .iter()
        .map(|f| {
            f.code
                .iter()
                .zip(&f.origins)
                .map(|(i, og)| threaded_op(*i, *og, cost))
                .collect()
        })
        .collect()
}
// ----------------------------------------------------------------------
// Execution environment: memory views, launch sinks
// ----------------------------------------------------------------------

/// A speculative view of global memory for one block: reads fall through
/// to the immutable pre-grid snapshot, writes land in a private overlay,
/// and both are recorded as word-granular bitsets for the merge phase's
/// conflict validation. Reads of the block's *own* writes are served from
/// the overlay and deliberately not recorded — they carry no cross-block
/// dependence.
struct SpecMem<'m> {
    base: &'m Memory,
    /// Full-size scratch; `overlay[a]` is meaningful only where the write
    /// bit for `a` is set, so it needs no clearing between blocks.
    overlay: &'m mut Vec<Value>,
    read_bits: &'m mut Vec<u64>,
    write_bits: &'m mut Vec<u64>,
    /// 64-word chunks whose read/write bitmap word became non-zero —
    /// makes per-block clearing O(touched), not O(memory).
    read_touched: &'m mut Vec<u32>,
    write_touched: &'m mut Vec<u32>,
}

impl SpecMem<'_> {
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        let a = self.base.check(addr)?;
        let chunk = a >> 6;
        let bit = 1u64 << (a & 63);
        if self.write_bits[chunk] & bit != 0 {
            return Ok(self.overlay[a]);
        }
        if self.read_bits[chunk] == 0 {
            self.read_touched.push(chunk as u32);
        }
        self.read_bits[chunk] |= bit;
        Ok(self.base.data[a])
    }

    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        let a = self.base.check(addr)?;
        let chunk = a >> 6;
        if self.write_bits[chunk] == 0 {
            self.write_touched.push(chunk as u32);
        }
        self.write_bits[chunk] |= 1u64 << (a & 63);
        self.overlay[a] = value;
        Ok(())
    }
}

/// Where global-memory accesses go: straight at the machine's memory
/// (sequential execution and host-side helpers) or through a tracked
/// speculative overlay (parallel block execution).
enum MemView<'m> {
    Direct(&'m mut Memory),
    Spec(SpecMem<'m>),
}

impl MemView<'_> {
    #[inline]
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        match self {
            MemView::Direct(m) => m.read(addr),
            MemView::Spec(s) => s.load(addr),
        }
    }

    #[inline]
    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        match self {
            MemView::Direct(m) => m.write(addr, value),
            MemView::Spec(s) => s.store(addr, value),
        }
    }
}

struct PendingGrid {
    kernel: FuncId,
    grid: [i64; 3],
    block: [i64; 3],
    args: Vec<Value>,
    origin: LaunchOrigin,
    id: usize,
}

/// Static launch validation shared by every enqueue path (host, direct
/// device, speculative device). The pending-buffer overflow check is *not*
/// here: it depends on global queue state and is applied where the grid
/// actually joins the queue.
fn validate_launch(
    module: &Module,
    limits: &ExecLimits,
    kernel: FuncId,
    grid: [i64; 3],
    block: [i64; 3],
    nargs: usize,
) -> Result<(), ExecError> {
    let func = module.function(kernel);
    if func.qual != FnQual::Global {
        return Err(ExecError::new(format!(
            "`{}` is not a __global__ kernel",
            func.name
        )));
    }
    if nargs != func.param_types.len() {
        return Err(ExecError::new(format!(
            "kernel `{}` takes {} arguments, got {}",
            func.name,
            func.param_types.len(),
            nargs
        )));
    }
    let threads = block[0] * block[1] * block[2];
    if threads <= 0 || threads > limits.max_threads_per_block as i64 {
        return Err(ExecError::new(format!(
            "invalid block size {threads} for kernel `{}`",
            func.name
        )));
    }
    if grid.iter().any(|&d| d < 0) {
        return Err(ExecError::new(format!(
            "negative grid dimension for kernel `{}`",
            func.name
        )));
    }
    Ok(())
}

fn pending_overflow() -> ExecError {
    ExecError::new("pending launch buffer overflow (raise ExecLimits::max_pending)")
}

/// Where device-side launches go: straight onto the machine's FIFO queue
/// (ids assigned immediately) or into a per-block list (ids are local
/// placeholders renumbered at merge time, so the final queue and trace
/// are identical to sequential execution).
enum LaunchSink<'m> {
    Direct {
        pending: &'m mut VecDeque<PendingGrid>,
        next_grid_id: &'m mut usize,
    },
    Spec(&'m mut Vec<PendingGrid>),
}

impl LaunchSink<'_> {
    #[allow(clippy::too_many_arguments)]
    fn enqueue(
        &mut self,
        module: &Module,
        limits: &ExecLimits,
        kernel: FuncId,
        grid: [i64; 3],
        block: [i64; 3],
        args: Vec<Value>,
        origin: LaunchOrigin,
    ) -> Result<usize, ExecError> {
        validate_launch(module, limits, kernel, grid, block, args.len())?;
        match self {
            LaunchSink::Direct {
                pending,
                next_grid_id,
            } => {
                if pending.len() >= limits.max_pending {
                    return Err(pending_overflow());
                }
                let id = **next_grid_id;
                **next_grid_id += 1;
                pending.push_back(PendingGrid {
                    kernel,
                    grid,
                    block,
                    args,
                    origin,
                    id,
                });
                Ok(id)
            }
            LaunchSink::Spec(list) => {
                let id = list.len();
                list.push(PendingGrid {
                    kernel,
                    grid,
                    block,
                    args,
                    origin,
                    id,
                });
                Ok(id)
            }
        }
    }
}

/// Runtime statistics for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Grids executed.
    pub grids_executed: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Device-side launch instructions that created a grid.
    pub device_launches: u64,
    /// Launches skipped because the grid size was zero.
    pub empty_launches: u64,
}

/// Bookkeeping about the parallel block executor. Deliberately **not**
/// part of [`MachineStats`]: these counters depend on worker count and
/// scheduling, while `MachineStats` is part of the determinism contract
/// (bit-identical at any parallelism).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Grids executed through the speculative worker pool.
    pub parallel_grids: u64,
    /// Blocks executed speculatively.
    pub speculated_blocks: u64,
    /// Speculated blocks that conflicted (or failed) and were re-executed
    /// sequentially.
    pub conflict_blocks: u64,
    /// Kernels adaptively marked serial after conflict-heavy grids.
    pub serialized_kernels: u64,
}

/// The disjoint machine borrows the execution loop needs: read-only code
/// and dispatch tables, a memory view, a launch sink, and statistics.
struct ExecEnv<'m> {
    module: &'m Module,
    tables: &'m [Box<[ThreadedOp]>],
    limits: &'m ExecLimits,
    mem: MemView<'m>,
    launches: LaunchSink<'m>,
    stats: &'m mut MachineStats,
    instr_budget: &'m mut u64,
}

impl ExecEnv<'_> {
    #[inline]
    fn load(&mut self, addr: i64, shared: &[Value]) -> Result<Value, ExecError> {
        if addr >= SHARED_SPACE_BASE {
            let off = (addr - SHARED_SPACE_BASE) as usize;
            shared.get(off).copied().ok_or_else(|| {
                ExecError::new(format!("shared memory access out of bounds: offset {off}"))
            })
        } else {
            self.mem.load(addr)
        }
    }

    #[inline]
    fn store(&mut self, addr: i64, value: Value, shared: &mut [Value]) -> Result<(), ExecError> {
        if addr >= SHARED_SPACE_BASE {
            let off = (addr - SHARED_SPACE_BASE) as usize;
            match shared.get_mut(off) {
                Some(slot) => {
                    *slot = value;
                    Ok(())
                }
                None => Err(ExecError::new(format!(
                    "shared memory access out of bounds: offset {off}"
                ))),
            }
        } else {
            self.mem.store(addr, value)
        }
    }
}

struct BlockCtx {
    grid_dim: [i64; 3],
    block_dim: [i64; 3],
    block_idx: [i64; 3],
    grid_id: usize,
    linear_block: u64,
}

fn budget_exhausted() -> ExecError {
    ExecError::new(
        "instruction budget exhausted (possible infinite loop; raise ExecLimits::max_instructions)",
    )
}

// ----------------------------------------------------------------------
// Thread execution loops
// ----------------------------------------------------------------------

/// Runs one thread until it returns, reaches a barrier, or errors —
/// direct-threaded dispatch: per instruction, charge the pre-resolved
/// accounting and tail into the opcode's handler through its function
/// pointer. The per-function table is re-derived only when the frame
/// stack changes.
fn run_thread_threaded(
    env: &mut ExecEnv<'_>,
    thread: &mut Thread,
    block: &BlockCtx,
    shared: &mut [Value],
    btrace: &mut BlockTrace,
) -> Result<(), ExecError> {
    let tables = env.tables;
    let mut s = StepCtx {
        env,
        thread,
        block,
        shared,
        btrace,
    };
    'frames: loop {
        let table: &[ThreadedOp] = &tables[s.thread.frame.func as usize];
        loop {
            let pc = s.thread.frame.pc;
            let Some(op) = table.get(pc) else {
                // Fell off the end of a void function.
                if fall_off_end(s.thread) {
                    continue 'frames;
                }
                return Ok(());
            };
            s.thread.frame.pc = pc + 1;
            let width = op.width as u64;
            s.thread.cycles += op.cycles;
            s.thread.instructions += width;
            s.thread.origin_cycles.add(op.origin, op.cycles);
            if *s.env.instr_budget < width {
                return Err(budget_exhausted());
            }
            *s.env.instr_budget -= width;
            match (op.exec)(op, &mut s)? {
                Flow::Next => {}
                Flow::Frame => continue 'frames,
                Flow::Yield => return Ok(()),
            }
        }
    }
}

/// The reference `match (opcode)` dispatcher — byte-identical accounting
/// and semantics to [`run_thread_threaded`], kept for differential testing
/// and as the benchmark baseline.
fn run_thread_match(
    env: &mut ExecEnv<'_>,
    thread: &mut Thread,
    block: &BlockCtx,
    shared: &mut [Value],
    btrace: &mut BlockTrace,
) -> Result<(), ExecError> {
    let tables = env.tables;
    let t = thread;
    'frames: loop {
        let table: &[ThreadedOp] = &tables[t.frame.func as usize];
        loop {
            let pc = t.frame.pc;
            let Some(op) = table.get(pc) else {
                if fall_off_end(t) {
                    continue 'frames;
                }
                return Ok(());
            };
            t.frame.pc = pc + 1;
            let width = op.width as u64;
            t.cycles += op.cycles;
            t.instructions += width;
            t.origin_cycles.add(op.origin, op.cycles);
            if *env.instr_budget < width {
                return Err(budget_exhausted());
            }
            *env.instr_budget -= width;

            match op.instr {
                Instr::PushInt(v) => t.stack.push(Value::Int(v)),
                Instr::PushFloat(v) => t.stack.push(Value::Float(v)),
                Instr::LoadLocal(slot) => {
                    let v = t.frame.locals[slot as usize];
                    t.stack.push(v);
                }
                Instr::StoreLocal(slot) => {
                    let v = pop(&mut t.stack)?;
                    t.frame.locals[slot as usize] = v;
                }
                Instr::LoadMem => {
                    let addr = pop(&mut t.stack)?.as_int();
                    let v = env.load(addr, shared)?;
                    t.stack.push(v);
                }
                Instr::StoreMem => {
                    let v = pop(&mut t.stack)?;
                    let addr = pop(&mut t.stack)?.as_int();
                    env.store(addr, v, shared)?;
                }
                Instr::Bin(kind) => {
                    let b = pop(&mut t.stack)?;
                    let a = pop(&mut t.stack)?;
                    t.stack.push(bin_op(kind, a, b)?);
                }
                Instr::Un(kind) => {
                    let a = pop(&mut t.stack)?;
                    t.stack.push(un_op(kind, a));
                }
                Instr::CastInt => {
                    let a = pop(&mut t.stack)?;
                    t.stack.push(Value::Int(a.as_int()));
                }
                Instr::CastFloat => {
                    let a = pop(&mut t.stack)?;
                    t.stack.push(Value::Float(a.as_float()));
                }
                Instr::Jump(target) => t.frame.pc = target as usize,
                Instr::JumpIfZero(target) => {
                    if !pop(&mut t.stack)?.is_truthy() {
                        t.frame.pc = target as usize;
                    }
                }
                Instr::JumpIfNonZero(target) => {
                    if pop(&mut t.stack)?.is_truthy() {
                        t.frame.pc = target as usize;
                    }
                }
                Instr::Call(id, nargs) => {
                    let callee = &env.module.functions[id as usize];
                    let mut locals = t.spare_locals.pop().unwrap_or_default();
                    locals.clear();
                    locals.resize(callee.n_locals as usize, Value::Int(0));
                    for i in (0..nargs as usize).rev() {
                        let v = pop(&mut t.stack)?;
                        locals[i] = coerce(v, &callee.param_types[i]);
                    }
                    if t.callers.len() + 1 > 512 {
                        return Err(ExecError::new("device call stack overflow"));
                    }
                    let caller = std::mem::replace(
                        &mut t.frame,
                        Frame {
                            func: id,
                            pc: 0,
                            locals,
                        },
                    );
                    t.callers.push(caller);
                    continue 'frames;
                }
                Instr::Ret => {
                    let v = pop(&mut t.stack)?;
                    if t.pop_frame() {
                        t.stack.push(v);
                        continue 'frames;
                    }
                    t.status = ThreadStatus::Done;
                    return Ok(());
                }
                Instr::RetVoid => {
                    if fall_off_end(t) {
                        continue 'frames;
                    }
                    return Ok(());
                }
                Instr::Launch(id, nargs) => {
                    let mut args = vec![Value::Int(0); nargs as usize];
                    for i in (0..nargs as usize).rev() {
                        args[i] = pop(&mut t.stack)?;
                    }
                    let b = pop(&mut t.stack)?.as_dim3();
                    let g = pop(&mut t.stack)?.as_dim3();
                    let total_blocks = g[0] * g[1] * g[2];
                    if total_blocks <= 0 {
                        env.stats.empty_launches += 1;
                    } else {
                        let origin = LaunchOrigin::Device {
                            parent_grid: block.grid_id,
                            parent_block: block.linear_block,
                            issue_cycles: t.cycles,
                        };
                        let child = env
                            .launches
                            .enqueue(env.module, env.limits, id, g, b, args, origin)?;
                        btrace.launches.push(LaunchRecord {
                            child_grid: child,
                            issue_cycles: t.cycles,
                        });
                        env.stats.device_launches += 1;
                    }
                }
                Instr::Sync => {
                    t.status = ThreadStatus::AtBarrier;
                    return Ok(());
                }
                Instr::Fence => {
                    // Functional no-op; the cycle cost was already charged.
                }
                Instr::Atomic(kind) => {
                    let old = match kind {
                        AtomicOp::Cas => {
                            let val = pop(&mut t.stack)?;
                            let cmp = pop(&mut t.stack)?;
                            let addr = pop(&mut t.stack)?.as_int();
                            let old = env.load(addr, shared)?;
                            let new = if old == cmp { val } else { old };
                            env.store(addr, new, shared)?;
                            old
                        }
                        _ => {
                            let operand = pop(&mut t.stack)?;
                            let addr = pop(&mut t.stack)?.as_int();
                            let old = env.load(addr, shared)?;
                            let new = atomic_apply(kind, old, operand)?;
                            env.store(addr, new, shared)?;
                            old
                        }
                    };
                    t.stack.push(old);
                }
                Instr::Intrinsic(i) => {
                    let v = match i {
                        Intrinsic::Min | Intrinsic::Max | Intrinsic::Pow => {
                            let b = pop(&mut t.stack)?;
                            let a = pop(&mut t.stack)?;
                            intrinsic2(i, a, b)
                        }
                        _ => {
                            let a = pop(&mut t.stack)?;
                            intrinsic1(i, a)
                        }
                    };
                    t.stack.push(v);
                }
                Instr::ReadSpecial(sp) => {
                    let d = match sp {
                        Special::ThreadIdx => t.tidx,
                        Special::BlockIdx => block.block_idx,
                        Special::BlockDim => block.block_dim,
                        Special::GridDim => block.grid_dim,
                    };
                    t.stack.push(Value::Dim3(d));
                }
                Instr::ReadSpecialComp(sp, lane) => {
                    let d = match sp {
                        Special::ThreadIdx => t.tidx,
                        Special::BlockIdx => block.block_idx,
                        Special::BlockDim => block.block_dim,
                        Special::GridDim => block.grid_dim,
                    };
                    t.stack.push(Value::Int(d[lane as usize]));
                }
                Instr::MakeDim3 => {
                    let z = pop(&mut t.stack)?.as_int();
                    let y = pop(&mut t.stack)?.as_int();
                    let x = pop(&mut t.stack)?.as_int();
                    t.stack.push(Value::Dim3([x, y, z]));
                }
                Instr::Dim3Member(lane) => {
                    let d = pop(&mut t.stack)?.as_dim3();
                    t.stack.push(Value::Int(d[lane as usize]));
                }
                Instr::Dim3SetMember(lane) => {
                    let v = pop(&mut t.stack)?.as_int();
                    let mut d = pop(&mut t.stack)?.as_dim3();
                    d[lane as usize] = v;
                    t.stack.push(Value::Dim3(d));
                }
                Instr::Pop => {
                    pop(&mut t.stack)?;
                }
                Instr::Dup => {
                    let v = *t
                        .stack
                        .last()
                        .ok_or_else(|| ExecError::new("stack underflow on dup"))?;
                    t.stack.push(v);
                }
                Instr::Swap => {
                    let n = t.stack.len();
                    if n < 2 {
                        return Err(ExecError::new("stack underflow on swap"));
                    }
                    t.stack.swap(n - 1, n - 2);
                }

                // Fused superinstructions: each arm replicates the exact
                // observable semantics (including error cases) of its
                // expansion — see `Instr::expansion`.
                Instr::BinLocals(kind, a, b) => {
                    let a = t.frame.locals[a as usize];
                    let b = t.frame.locals[b as usize];
                    t.stack.push(bin_op(kind, a, b)?);
                }
                Instr::BinImm(kind, v) => {
                    let a = pop(&mut t.stack)?;
                    t.stack.push(bin_op(kind, a, Value::Int(v))?);
                }
                Instr::IncLocal(slot, delta) => {
                    let old = t.frame.locals[slot as usize];
                    t.frame.locals[slot as usize] = bin_op(BinKind::Add, old, Value::Int(delta))?;
                }
                Instr::LoadLocalMem(slot) => {
                    let addr = t.frame.locals[slot as usize].as_int();
                    let v = env.load(addr, shared)?;
                    t.stack.push(v);
                }
                Instr::CmpBranchLocals(kind, a, b, target) => {
                    let a = t.frame.locals[a as usize];
                    let b = t.frame.locals[b as usize];
                    if !bin_op(kind, a, b)?.is_truthy() {
                        t.frame.pc = target as usize;
                    }
                }
                Instr::StoreLoadLocal(slot) => {
                    let v = *t
                        .stack
                        .last()
                        .ok_or_else(|| ExecError::new("operand stack underflow"))?;
                    t.frame.locals[slot as usize] = v;
                }
            }
        }
    }
}

#[inline]
fn run_thread(
    dispatch: DispatchMode,
    env: &mut ExecEnv<'_>,
    thread: &mut Thread,
    block: &BlockCtx,
    shared: &mut [Value],
    btrace: &mut BlockTrace,
) -> Result<(), ExecError> {
    match dispatch {
        DispatchMode::Threaded => run_thread_threaded(env, thread, block, shared, btrace),
        DispatchMode::Match => run_thread_match(env, thread, block, shared, btrace),
    }
}

/// Executes one block to completion against the given environment: arms
/// the arena's threads, round-robins them between barriers, and settles
/// the per-warp/per-origin accounting. Identical for the sequential and
/// speculative paths — only the `ExecEnv` views differ.
#[allow(clippy::too_many_arguments)]
fn run_block(
    env: &mut ExecEnv<'_>,
    arena: &mut BlockArena,
    reuse_state: bool,
    dispatch: DispatchMode,
    cost: &CostModel,
    grid: &PendingGrid,
    coerced_args: &[Value],
    block_idx: [i64; 3],
    linear_block: u64,
) -> Result<BlockTrace, ExecError> {
    let func = env.module.function(grid.kernel);
    let contains_launch = func.contains_launch;
    let n_locals = func.n_locals;
    let n_threads = (grid.block[0] * grid.block[1] * grid.block[2]) as usize;
    let shared_words = func.shared_words as usize;

    if !reuse_state {
        // Benchmarking baseline: behave like the pre-arena executor and
        // allocate everything fresh for this block.
        arena.threads.clear();
        arena.shared = Vec::new();
    }
    arena.shared.clear();
    arena.shared.resize(shared_words, Value::Int(0));
    arena.threads.truncate(n_threads);
    while arena.threads.len() < n_threads {
        arena.threads.push(Thread::new());
    }
    for (t, thread) in arena.threads.iter_mut().enumerate() {
        let t = t as i64;
        let tx = t % grid.block[0];
        let ty = (t / grid.block[0]) % grid.block[1];
        let tz = t / (grid.block[0] * grid.block[1]);
        thread.reset(grid.kernel, n_locals, coerced_args, [tx, ty, tz]);
    }
    let threads = &mut arena.threads;
    let shared = &mut arena.shared;

    let mut btrace = BlockTrace::default();
    let ctx = BlockCtx {
        grid_dim: grid.grid,
        block_dim: grid.block,
        block_idx,
        grid_id: grid.id,
        linear_block,
    };

    loop {
        let mut all_done = true;
        for thread in threads.iter_mut() {
            if matches!(thread.status, ThreadStatus::Running) {
                run_thread(dispatch, env, thread, &ctx, shared, &mut btrace)?;
            }
            if !matches!(thread.status, ThreadStatus::Done) {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        // Every live thread is at the barrier: release them.
        for thread in threads.iter_mut() {
            if matches!(thread.status, ThreadStatus::AtBarrier) {
                thread.status = ThreadStatus::Running;
            }
        }
    }

    // Per-warp cost: max thread cycles within each 32-thread group.
    let presence = if contains_launch {
        cost.launch_presence_overhead
    } else {
        0
    };
    for chunk in threads.chunks(32) {
        let max = chunk.iter().map(|t| t.cycles + presence).max().unwrap_or(0);
        btrace.warp_cycles.push(max);
    }
    for thread in threads.iter() {
        btrace.origin_cycles.merge(&thread.origin_cycles);
        btrace.instructions += thread.instructions;
    }
    if presence > 0 {
        btrace
            .origin_cycles
            .add(CodeOrigin::Original, presence * n_threads as u64);
    }
    env.stats.instructions += btrace.instructions;
    Ok(btrace)
}
// ----------------------------------------------------------------------
// Parallel block execution
// ----------------------------------------------------------------------

/// Per-worker reusable state: an arena for thread structs plus the
/// speculative memory overlay and its read/write tracking buffers. Owned
/// by the machine so repeated parallel grids allocate nothing.
#[derive(Default)]
struct ParWorker {
    arena: BlockArena,
    overlay: Vec<Value>,
    read_bits: Vec<u64>,
    write_bits: Vec<u64>,
    read_touched: Vec<u32>,
    write_touched: Vec<u32>,
}

impl ParWorker {
    /// Sizes the overlay/bitmaps for a memory snapshot of `words` words.
    /// Bitmaps are kept clear between blocks via the touched lists.
    fn prepare(&mut self, words: usize, chunks: usize) {
        if self.overlay.len() < words {
            self.overlay.resize(words, Value::Int(0));
        }
        if self.read_bits.len() < chunks {
            self.read_bits.resize(chunks, 0);
            self.write_bits.resize(chunks, 0);
        }
    }

    /// Drains the tracking buffers into compact per-block sets, clearing
    /// the bitmaps for the worker's next block. Returns `(reads,
    /// write_set, writes)` with chunks in ascending order (deterministic
    /// apply order).
    #[allow(clippy::type_complexity)]
    fn extract_and_clear(&mut self) -> (Vec<(u32, u64)>, Vec<(u32, u64)>, Vec<(usize, Value)>) {
        self.read_touched.sort_unstable();
        self.write_touched.sort_unstable();
        let reads: Vec<(u32, u64)> = self
            .read_touched
            .iter()
            .map(|&c| (c, self.read_bits[c as usize]))
            .collect();
        let write_set: Vec<(u32, u64)> = self
            .write_touched
            .iter()
            .map(|&c| (c, self.write_bits[c as usize]))
            .collect();
        let mut writes = Vec::new();
        for &(chunk, mask) in &write_set {
            let base = (chunk as usize) << 6;
            let mut m = mask;
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                let addr = base + bit;
                writes.push((addr, self.overlay[addr]));
                m &= m - 1;
            }
        }
        for &c in &self.read_touched {
            self.read_bits[c as usize] = 0;
        }
        for &c in &self.write_touched {
            self.write_bits[c as usize] = 0;
        }
        self.read_touched.clear();
        self.write_touched.clear();
        (reads, write_set, writes)
    }
}

/// One speculated (or re-executed) block, ready for in-order validation
/// and merge. An `Err` result from speculation means the block must be
/// re-executed sequentially (a real error will then reproduce
/// deterministically; a stale-state artifact will vanish); an `Err` from
/// re-execution is the run's error, and the partial `writes`/`launches`
/// issued before the fault are still applied so post-error machine state
/// matches sequential execution exactly.
struct SpecBlock {
    result: Result<BlockTrace, ExecError>,
    /// Device launches in issue order; `id` and the matching
    /// `btrace.launches[k].child_grid` are local placeholders.
    launches: Vec<PendingGrid>,
    reads: Vec<(u32, u64)>,
    write_set: Vec<(u32, u64)>,
    writes: Vec<(usize, Value)>,
    stats: MachineStats,
}

/// Runs one block speculatively against the snapshot through a worker's
/// tracked overlay.
#[allow(clippy::too_many_arguments)]
fn spec_run_block(
    worker: &mut ParWorker,
    base: &Memory,
    module: &Module,
    tables: &[Box<[ThreadedOp]>],
    limits: &ExecLimits,
    cost: &CostModel,
    dispatch: DispatchMode,
    reuse_state: bool,
    grid: &PendingGrid,
    coerced_args: &[Value],
    linear: u64,
    spec_budget: u64,
) -> SpecBlock {
    let mut stats = MachineStats::default();
    let mut budget = spec_budget;
    let mut launches: Vec<PendingGrid> = Vec::new();
    let block_idx = linear_to_block_idx(linear as i64, grid.grid);
    let outcome = {
        let mut env = ExecEnv {
            module,
            tables,
            limits,
            mem: MemView::Spec(SpecMem {
                base,
                overlay: &mut worker.overlay,
                read_bits: &mut worker.read_bits,
                write_bits: &mut worker.write_bits,
                read_touched: &mut worker.read_touched,
                write_touched: &mut worker.write_touched,
            }),
            launches: LaunchSink::Spec(&mut launches),
            stats: &mut stats,
            instr_budget: &mut budget,
        };
        run_block(
            &mut env,
            &mut worker.arena,
            reuse_state,
            dispatch,
            cost,
            grid,
            coerced_args,
            block_idx,
            linear,
        )
    };
    let (reads, write_set, writes) = worker.extract_and_clear();
    SpecBlock {
        result: outcome,
        launches,
        reads,
        write_set,
        writes,
        stats,
    }
}

fn linear_to_block_idx(linear: i64, grid_dim: [i64; 3]) -> [i64; 3] {
    let bx = linear % grid_dim[0];
    let by = (linear / grid_dim[0]) % grid_dim[1];
    let bz = linear / (grid_dim[0] * grid_dim[1]);
    [bx, by, bz]
}

// ----------------------------------------------------------------------
// The machine
// ----------------------------------------------------------------------

/// The simulated GPU: compiled module + memory + launch queue.
pub struct Machine {
    module: Module,
    /// Global device memory.
    pub mem: Memory,
    cost: CostModel,
    tables: Vec<Box<[ThreadedOp]>>,
    limits: ExecLimits,
    pending: VecDeque<PendingGrid>,
    next_grid_id: usize,
    trace: ExecutionTrace,
    stats: MachineStats,
    instr_budget: u64,
    arena: BlockArena,
    reuse_state: bool,
    dispatch: DispatchMode,
    /// `None` = auto (shared `DPOPT_JOBS` budget); `Some(n)` = exactly `n`
    /// workers, bypassing the budget (benchmark/test override).
    par_jobs: Option<usize>,
    /// Kernels adaptively marked serial after a conflict-heavy grid.
    kernel_serial: Vec<bool>,
    par_workers: Vec<ParWorker>,
    par_stats: ParallelStats,
    /// Cumulative write bitmap reused by the merge phase.
    merge_write_bits: Vec<u64>,
}

impl Machine {
    /// Creates a machine for a compiled module with default cost model and
    /// limits.
    pub fn new(module: Module) -> Self {
        Machine::with_config(module, CostModel::default(), ExecLimits::default())
    }

    /// Creates a machine with an explicit cost model and limits.
    pub fn with_config(module: Module, cost: CostModel, limits: ExecLimits) -> Self {
        let tables = build_tables(&module, &cost);
        let n_functions = module.functions.len();
        Machine {
            module,
            mem: Memory::new(),
            cost,
            tables,
            limits,
            pending: VecDeque::new(),
            next_grid_id: 0,
            trace: ExecutionTrace::default(),
            stats: MachineStats::default(),
            instr_budget: limits.max_instructions,
            arena: BlockArena::default(),
            reuse_state: true,
            dispatch: DispatchMode::default(),
            par_jobs: None,
            kernel_serial: vec![false; n_functions],
            par_workers: Vec::new(),
            par_stats: ParallelStats::default(),
            merge_write_bits: Vec::new(),
        }
    }

    /// Enables or disables pooling of per-block execution state (on by
    /// default). Disabling forces every block to allocate fresh thread
    /// state, reproducing the pre-arena executor — a benchmarking knob for
    /// `vmbench`'s baseline, not something callers should normally touch.
    pub fn set_state_reuse(&mut self, on: bool) {
        self.reuse_state = on;
    }

    /// Selects the dispatch loop (threaded by default). Both modes are
    /// bit-identical in results and accounting; `Match` exists for
    /// differential tests and the `vmbench` baseline.
    pub fn set_dispatch(&mut self, mode: DispatchMode) {
        self.dispatch = mode;
    }

    /// The current dispatch mode.
    pub fn dispatch(&self) -> DispatchMode {
        self.dispatch
    }

    /// Sets the worker count for parallel block execution. `0` restores
    /// the default: draw workers from the process-wide `DPOPT_JOBS` budget
    /// shared with the sweep engine (so nested parallelism cannot
    /// oversubscribe). A non-zero value forces exactly that many workers,
    /// bypassing the budget — results are identical either way; only
    /// wall-clock changes.
    pub fn set_block_parallelism(&mut self, jobs: usize) {
        self.par_jobs = if jobs == 0 { None } else { Some(jobs) };
        // A fresh explicit setting is a fresh chance for kernels that were
        // adaptively serialized under the previous regime.
        self.kernel_serial.fill(false);
    }

    /// Counters for the parallel block executor (not part of the
    /// determinism contract — see [`ParallelStats`]).
    pub fn parallel_stats(&self) -> ParallelStats {
        self.par_stats
    }

    /// The compiled module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Statistics so far.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Allocates device memory.
    pub fn alloc(&mut self, words: usize) -> i64 {
        self.mem.alloc(words)
    }

    /// Allocates and writes a slice of integers (one bounds check).
    pub fn alloc_i64s(&mut self, values: &[i64]) -> i64 {
        let base = self.mem.alloc(values.len().max(1));
        let dst = self
            .mem
            .slice_mut(base, values.len())
            .expect("freshly allocated");
        for (d, v) in dst.iter_mut().zip(values) {
            *d = Value::Int(*v);
        }
        base
    }

    /// Allocates and writes a slice of floats (one bounds check).
    pub fn alloc_f64s(&mut self, values: &[f64]) -> i64 {
        let base = self.mem.alloc(values.len().max(1));
        let dst = self
            .mem
            .slice_mut(base, values.len())
            .expect("freshly allocated");
        for (d, v) in dst.iter_mut().zip(values) {
            *d = Value::Float(*v);
        }
        base
    }

    /// Reads `len` integers starting at `ptr` (one bounds check).
    pub fn read_i64s(&self, ptr: i64, len: usize) -> Result<Vec<i64>, ExecError> {
        Ok(self
            .mem
            .read_range(ptr, len)?
            .iter()
            .map(|v| v.as_int())
            .collect())
    }

    /// Reads `len` floats starting at `ptr` (one bounds check).
    pub fn read_f64s(&self, ptr: i64, len: usize) -> Result<Vec<f64>, ExecError> {
        Ok(self
            .mem
            .read_range(ptr, len)?
            .iter()
            .map(|v| v.as_float())
            .collect())
    }

    /// Enqueues a host-side kernel launch. Returns the grid id.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is unknown, not `__global__`, or the
    /// configuration violates hardware limits.
    pub fn launch_host(
        &mut self,
        kernel: &str,
        grid: impl Into<Value>,
        block: impl Into<Value>,
        args: &[Value],
    ) -> Result<usize, ExecError> {
        let id = self
            .module
            .id_of(kernel)
            .ok_or_else(|| ExecError::new(format!("unknown kernel `{kernel}`")))?;
        let mut sink = LaunchSink::Direct {
            pending: &mut self.pending,
            next_grid_id: &mut self.next_grid_id,
        };
        sink.enqueue(
            &self.module,
            &self.limits,
            id,
            grid.into().as_dim3(),
            block.into().as_dim3(),
            args.to_vec(),
            LaunchOrigin::Host,
        )
    }

    /// Runs every pending grid (and everything they launch) to completion —
    /// the equivalent of `cudaDeviceSynchronize()`.
    pub fn run_to_quiescence(&mut self) -> Result<(), ExecError> {
        let _span = dp_obs::trace::span("vm.run");
        let started = dp_obs::metrics::now();
        let result = (|| {
            while let Some(grid) = self.pending.pop_front() {
                // Grid boundaries are the VM's cooperative yield points:
                // when this machine runs inside a bulk pool job (a sweep
                // cell), a queued interactive request may borrow the
                // worker between grids. Off-pool threads: cheap no-op.
                dp_pool::checkpoint();
                self.execute_grid(grid)?;
            }
            Ok(())
        })();
        VM_RUN_US.record_since(started);
        result
    }

    /// Takes the accumulated execution trace, leaving an empty one.
    pub fn take_trace(&mut self) -> ExecutionTrace {
        std::mem::take(&mut self.trace)
    }

    /// Read-only view of the trace so far.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Decides the worker count for a grid; `1` means sequential.
    ///
    /// In auto mode the count comes from the shared pool
    /// ([`dp_pool::Pool::shared`]), which resolved the `DPOPT_JOBS` budget
    /// once at pool init (precedence: `--jobs` flag > env > available
    /// parallelism): speculation is worth starting only when pool workers
    /// are actually idle, and a grid that is already running *on* a pool
    /// worker (a sweep cell, a served request) stays sequential — the
    /// nesting discipline the per-grid budget reservation used to enforce.
    /// A forced count ([`Machine::set_block_parallelism`]) bypasses the
    /// idle gate; its helper loops degrade inline if the pool is empty.
    fn plan_workers(&self, kernel: FuncId, num_blocks: u64) -> usize {
        if num_blocks < MIN_PARALLEL_BLOCKS {
            return 1;
        }
        // A finite instruction budget is consumed in execution order;
        // exhaustion mid-grid must reproduce exactly, so budgeted runs
        // stay sequential.
        if self.limits.max_instructions != u64::MAX {
            return 1;
        }
        if self.kernel_serial[kernel as usize] {
            return 1;
        }
        match self.par_jobs {
            Some(forced) => forced.min(num_blocks as usize).max(1),
            None => {
                if dp_pool::is_worker_thread() {
                    return 1;
                }
                let pool = dp_pool::Pool::shared();
                let cap = (pool.threads() + 1).min(num_blocks as usize);
                if cap <= 1 {
                    return 1;
                }
                1 + pool.available_workers().min(cap - 1)
            }
        }
    }

    fn execute_grid(&mut self, grid: PendingGrid) -> Result<(), ExecError> {
        let num_blocks = grid.grid[0] * grid.grid[1] * grid.grid[2];
        let func = self.module.function(grid.kernel);
        // Coerce kernel arguments to their declared parameter types once per
        // grid — every block (and thread) starts from the same locals image.
        let coerced_args: Vec<Value> = grid
            .args
            .iter()
            .zip(&func.param_types)
            .map(|(arg, ty)| coerce(*arg, ty))
            .collect();
        let mut gtrace = GridTrace {
            id: grid.id,
            kernel: func.name.clone(),
            grid_dim: grid.grid,
            block_dim: grid.block,
            origin: grid.origin,
            blocks: Vec::with_capacity(num_blocks as usize),
        };

        let workers = self.plan_workers(grid.kernel, num_blocks as u64);
        if workers > 1 {
            self.execute_grid_parallel(&grid, &coerced_args, &mut gtrace, workers)?;
        } else {
            for linear in 0..num_blocks {
                let block_idx = linear_to_block_idx(linear, grid.grid);
                let btrace =
                    self.run_block_direct(&grid, &coerced_args, block_idx, linear as u64)?;
                gtrace.blocks.push(btrace);
            }
        }

        self.stats.grids_executed += 1;
        // Grid ids are assigned at enqueue time in FIFO order, so the
        // executed order matches id order.
        debug_assert_eq!(gtrace.id, self.trace.grids.len());
        self.trace.grids.push(gtrace);
        Ok(())
    }

    /// Sequential block execution straight against machine state.
    fn run_block_direct(
        &mut self,
        grid: &PendingGrid,
        coerced_args: &[Value],
        block_idx: [i64; 3],
        linear_block: u64,
    ) -> Result<BlockTrace, ExecError> {
        // Split the machine into disjoint borrows: the run loop reads the
        // module/dispatch tables while mutating memory, the launch queue,
        // and thread state.
        let Machine {
            module,
            mem,
            cost,
            tables,
            limits,
            pending,
            next_grid_id,
            stats,
            instr_budget,
            arena,
            reuse_state,
            dispatch,
            ..
        } = self;
        let mut env = ExecEnv {
            module,
            tables,
            limits,
            mem: MemView::Direct(mem),
            launches: LaunchSink::Direct {
                pending,
                next_grid_id,
            },
            stats,
            instr_budget,
        };
        run_block(
            &mut env,
            arena,
            *reuse_state,
            *dispatch,
            cost,
            grid,
            coerced_args,
            block_idx,
            linear_block,
        )
    }

    /// Speculative parallel execution of one grid's blocks, followed by an
    /// in-block-order validate/merge pass that keeps every observable
    /// output bit-identical to sequential execution.
    fn execute_grid_parallel(
        &mut self,
        grid: &PendingGrid,
        coerced_args: &[Value],
        gtrace: &mut GridTrace,
        workers: usize,
    ) -> Result<(), ExecError> {
        let num_blocks = (grid.grid[0] * grid.grid[1] * grid.grid[2]) as usize;
        let blocks_attr;
        let _span = if dp_obs::trace::active() {
            blocks_attr = num_blocks.to_string();
            dp_obs::trace::span_with(
                "vm.grid",
                &[
                    ("kernel", &self.module.function(grid.kernel).name),
                    ("blocks", &blocks_attr),
                ],
            )
        } else {
            dp_obs::trace::span("vm.grid")
        };
        let words = self.mem.allocated_words();
        let chunks = words.div_ceil(64);
        while self.par_workers.len() < workers {
            self.par_workers.push(ParWorker::default());
        }
        let Machine {
            module,
            mem,
            cost,
            tables,
            limits,
            pending,
            next_grid_id,
            stats,
            instr_budget,
            reuse_state,
            dispatch,
            kernel_serial,
            par_workers,
            par_stats,
            merge_write_bits,
            ..
        } = self;
        let (reuse_state, dispatch) = (*reuse_state, *dispatch);

        // ---- Speculation: workers race through the block list against an
        // immutable snapshot of memory.
        let mut results: Vec<Mutex<Option<SpecBlock>>> =
            (0..num_blocks).map(|_| Mutex::new(None)).collect();
        {
            let base: &Memory = mem;
            let next = AtomicUsize::new(0);
            let results = &results;
            let run_worker = |worker: &mut ParWorker| {
                worker.prepare(words, chunks);
                loop {
                    let linear = next.fetch_add(1, Ordering::Relaxed);
                    if linear >= num_blocks {
                        return;
                    }
                    let r = spec_run_block(
                        worker,
                        base,
                        module,
                        tables,
                        limits,
                        cost,
                        dispatch,
                        reuse_state,
                        grid,
                        coerced_args,
                        linear as u64,
                        SPEC_BLOCK_BUDGET,
                    );
                    *results[linear].lock().expect("results lock") = Some(r);
                }
            };
            // Helper loops run on the shared persistent pool (no per-grid
            // thread spawns); the calling thread is always one of the
            // workers, so progress never depends on pool availability.
            dp_pool::Pool::shared().scope(|scope| {
                let mut iter = par_workers[..workers].iter_mut();
                let mine = iter.next().expect("at least one worker");
                for worker in iter {
                    scope.spawn_as(dp_pool::JobClass::Bulk, || run_worker(worker));
                }
                run_worker(mine);
            });
        }

        // ---- Merge in linear block order: validate against everything
        // earlier blocks wrote, apply or re-execute, then enqueue the
        // block's launches with their real grid ids.
        let cum = merge_write_bits;
        cum.clear();
        cum.resize(chunks, 0);
        let mut invalid_blocks = 0u64;
        for (linear, slot) in results.iter_mut().enumerate() {
            let r = slot
                .get_mut()
                .expect("results lock")
                .take()
                .expect("block speculated");
            let valid = r.result.is_ok()
                && !r
                    .reads
                    .iter()
                    .any(|&(chunk, mask)| cum[chunk as usize] & mask != 0);
            let spec = if valid {
                r
            } else {
                invalid_blocks += 1;
                if par_debug() {
                    let reason = match &r.result {
                        Ok(_) => "read/write overlap with an earlier block".to_string(),
                        Err(e) => format!("speculation aborted: {e}"),
                    };
                    dp_obs::diag!(
                        "[dp-vm] overlap: kernel `{}` block {linear}: {reason}; re-executing sequentially",
                        module.function(grid.kernel).name
                    );
                }
                // Deterministic sequential re-execution against live
                // memory (all earlier blocks applied), still through a
                // tracked view so later validation sees its writes.
                let worker = &mut par_workers[0];
                worker.prepare(words, chunks);
                spec_run_block(
                    worker,
                    mem,
                    module,
                    tables,
                    limits,
                    cost,
                    dispatch,
                    reuse_state,
                    grid,
                    coerced_args,
                    linear as u64,
                    u64::MAX,
                )
            };
            // Apply writes and enqueue launches *before* propagating any
            // re-execution error: a sequential run's fault leaves its
            // partial effects behind, and so must the parallel run.
            for &(addr, v) in &spec.writes {
                mem.data[addr] = v;
            }
            for &(chunk, mask) in &spec.write_set {
                cum[chunk as usize] |= mask;
            }
            let mut btrace = match spec.result {
                Ok(btrace) => btrace,
                Err(e) => {
                    for mut pg in spec.launches {
                        if pending.len() >= limits.max_pending {
                            return Err(pending_overflow());
                        }
                        pg.id = *next_grid_id;
                        *next_grid_id += 1;
                        pending.push_back(pg);
                    }
                    stats.device_launches += spec.stats.device_launches;
                    stats.empty_launches += spec.stats.empty_launches;
                    return Err(e);
                }
            };
            for (k, mut pg) in spec.launches.into_iter().enumerate() {
                if pending.len() >= limits.max_pending {
                    return Err(pending_overflow());
                }
                pg.id = *next_grid_id;
                *next_grid_id += 1;
                btrace.launches[k].child_grid = pg.id;
                pending.push_back(pg);
            }
            stats.instructions += btrace.instructions;
            stats.device_launches += spec.stats.device_launches;
            stats.empty_launches += spec.stats.empty_launches;
            *instr_budget = instr_budget.saturating_sub(btrace.instructions);
            gtrace.blocks.push(btrace);
        }

        par_stats.parallel_grids += 1;
        par_stats.speculated_blocks += num_blocks as u64;
        par_stats.conflict_blocks += invalid_blocks;
        VM_PAR_GRIDS.incr();
        VM_SPEC_BLOCKS.add(num_blocks as u64);
        VM_CONFLICT_BLOCKS.add(invalid_blocks);
        if invalid_blocks * 2 > num_blocks as u64 && !kernel_serial[grid.kernel as usize] {
            // This kernel's blocks are coupled (e.g. a cross-block atomic
            // reduction): stop paying speculation for it.
            kernel_serial[grid.kernel as usize] = true;
            par_stats.serialized_kernels += 1;
            VM_SERIALIZED.incr();
            if par_debug() {
                dp_obs::diag!(
                    "[dp-vm] kernel `{}` marked serial after {invalid_blocks}/{num_blocks} conflicting blocks",
                    module.function(grid.kernel).name
                );
            }
        }
        Ok(())
    }
}

fn coerce(v: Value, ty: &Type) -> Value {
    match ty {
        Type::Int | Type::UInt | Type::Long | Type::ULong | Type::Bool => Value::Int(v.as_int()),
        Type::Float | Type::Double => Value::Float(v.as_float()),
        Type::Dim3 => Value::Dim3(v.as_dim3()),
        Type::Ptr(_) | Type::Void => v,
    }
}

fn bin_op(kind: BinKind, a: Value, b: Value) -> Result<Value, ExecError> {
    use BinKind::*;
    if a.is_float() || b.is_float() {
        let (x, y) = (a.as_float(), b.as_float());
        let v = match kind {
            Add => Value::Float(x + y),
            Sub => Value::Float(x - y),
            Mul => Value::Float(x * y),
            Div => Value::Float(x / y),
            Rem => Value::Float(x % y),
            Lt => Value::from(x < y),
            Le => Value::from(x <= y),
            Gt => Value::from(x > y),
            Ge => Value::from(x >= y),
            Eq => Value::from(x == y),
            Ne => Value::from(x != y),
            BitAnd | BitOr | BitXor | Shl | Shr => {
                return Err(ExecError::new("bitwise operation on float"))
            }
        };
        return Ok(v);
    }
    let (x, y) = (a.as_int(), b.as_int());
    let v = match kind {
        Add => Value::Int(x.wrapping_add(y)),
        Sub => Value::Int(x.wrapping_sub(y)),
        Mul => Value::Int(x.wrapping_mul(y)),
        Div => {
            if y == 0 {
                return Err(ExecError::new("integer division by zero"));
            }
            Value::Int(x.wrapping_div(y))
        }
        Rem => {
            if y == 0 {
                return Err(ExecError::new("integer remainder by zero"));
            }
            Value::Int(x.wrapping_rem(y))
        }
        Lt => Value::from(x < y),
        Le => Value::from(x <= y),
        Gt => Value::from(x > y),
        Ge => Value::from(x >= y),
        Eq => Value::from(x == y),
        Ne => Value::from(x != y),
        BitAnd => Value::Int(x & y),
        BitOr => Value::Int(x | y),
        BitXor => Value::Int(x ^ y),
        Shl => Value::Int(x.wrapping_shl((y & 63) as u32)),
        Shr => Value::Int(x.wrapping_shr((y & 63) as u32)),
    };
    Ok(v)
}

fn un_op(kind: UnKind, a: Value) -> Value {
    match kind {
        UnKind::Neg => match a {
            Value::Float(f) => Value::Float(-f),
            other => Value::Int(-other.as_int()),
        },
        UnKind::Not => Value::from(!a.is_truthy()),
        UnKind::BitNot => Value::Int(!a.as_int()),
    }
}

fn atomic_apply(op: AtomicOp, old: Value, operand: Value) -> Result<Value, ExecError> {
    let v = match op {
        AtomicOp::Add => bin_op(BinKind::Add, old, operand)?,
        AtomicOp::Sub => bin_op(BinKind::Sub, old, operand)?,
        AtomicOp::Max => {
            if old.is_float() || operand.is_float() {
                Value::Float(old.as_float().max(operand.as_float()))
            } else {
                Value::Int(old.as_int().max(operand.as_int()))
            }
        }
        AtomicOp::Min => {
            if old.is_float() || operand.is_float() {
                Value::Float(old.as_float().min(operand.as_float()))
            } else {
                Value::Int(old.as_int().min(operand.as_int()))
            }
        }
        AtomicOp::Exch => operand,
        AtomicOp::Or => Value::Int(old.as_int() | operand.as_int()),
        AtomicOp::And => Value::Int(old.as_int() & operand.as_int()),
        AtomicOp::Cas => unreachable!("handled separately"),
    };
    Ok(v)
}

fn intrinsic1(i: Intrinsic, a: Value) -> Value {
    match i {
        Intrinsic::Abs => match a {
            Value::Float(f) => Value::Float(f.abs()),
            other => Value::Int(other.as_int().abs()),
        },
        Intrinsic::Sqrt => Value::Float(a.as_float().sqrt()),
        Intrinsic::Ceil => Value::Float(a.as_float().ceil()),
        Intrinsic::Floor => Value::Float(a.as_float().floor()),
        Intrinsic::Exp => Value::Float(a.as_float().exp()),
        Intrinsic::Log => Value::Float(a.as_float().ln()),
        _ => unreachable!("binary intrinsic"),
    }
}

fn intrinsic2(i: Intrinsic, a: Value, b: Value) -> Value {
    match i {
        Intrinsic::Min => {
            if a.is_float() || b.is_float() {
                Value::Float(a.as_float().min(b.as_float()))
            } else {
                Value::Int(a.as_int().min(b.as_int()))
            }
        }
        Intrinsic::Max => {
            if a.is_float() || b.is_float() {
                Value::Float(a.as_float().max(b.as_float()))
            } else {
                Value::Int(a.as_int().max(b.as_int()))
            }
        }
        Intrinsic::Pow => Value::Float(a.as_float().powf(b.as_float())),
        _ => unreachable!("unary intrinsic"),
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile_program;

    fn machine(src: &str) -> Machine {
        let p = dp_frontend::parse(src).unwrap();
        Machine::new(compile_program(&p).unwrap())
    }

    #[test]
    fn simple_kernel_writes_memory() {
        let mut m = machine("__global__ void k(int* d) { d[threadIdx.x] = threadIdx.x * 2; }");
        let buf = m.alloc(8);
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(
            m.read_i64s(buf, 8).unwrap(),
            vec![0, 2, 4, 6, 8, 10, 12, 14]
        );
    }

    #[test]
    fn grid_and_block_indexing() {
        let mut m = machine(
            "__global__ void k(int* d, int n) { \
                 int i = blockIdx.x * blockDim.x + threadIdx.x; \
                 if (i < n) { d[i] = i; } }",
        );
        let buf = m.alloc(100);
        m.launch_host("k", 4, 32, &[Value::Int(buf), Value::Int(100)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        let data = m.read_i64s(buf, 100).unwrap();
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn loops_and_floats() {
        let mut m = machine(
            "__global__ void k(float* out, int n) { \
                 float sum = 0.0; \
                 for (int i = 0; i < n; ++i) { sum += (float)i * 0.5; } \
                 out[0] = sum; }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf), Value::Int(10)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_f64s(buf, 1).unwrap()[0], 22.5);
    }

    #[test]
    fn device_function_calls() {
        let mut m = machine(
            "__device__ int square(int x) { return x * x; }\n\
             __global__ void k(int* d) { d[threadIdx.x] = square(threadIdx.x); }",
        );
        let buf = m.alloc(4);
        m.launch_host("k", 1, 4, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 4).unwrap(), vec![0, 1, 4, 9]);
    }

    #[test]
    fn recursion_works() {
        let mut m = machine(
            "__device__ int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n\
             __global__ void k(int* d) { d[0] = fact(6); }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 720);
    }

    #[test]
    fn atomics_are_deterministic() {
        let mut m = machine("__global__ void k(int* counter) { atomicAdd(&counter[0], 1); }");
        let buf = m.alloc(1);
        m.launch_host("k", 4, 64, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 256);
    }

    #[test]
    fn atomic_max_min_cas() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 atomicMax(&d[0], threadIdx.x); \
                 atomicMin(&d[1], threadIdx.x); \
                 atomicCAS(&d[2], 0, threadIdx.x + 100); }",
        );
        let buf = m.alloc(3);
        m.mem.write(buf + 1, Value::Int(999)).unwrap();
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let d = m.read_i64s(buf, 3).unwrap();
        assert_eq!(d[0], 7);
        assert_eq!(d[1], 0);
        assert_eq!(d[2], 100, "only thread 0's CAS succeeds");
    }

    #[test]
    fn syncthreads_orders_phases() {
        // Thread 0 writes after the barrier what thread 7 wrote before it.
        let mut m = machine(
            "__global__ void k(int* d) { \
                 __shared__ int tile[8]; \
                 tile[threadIdx.x] = threadIdx.x * 10; \
                 __syncthreads(); \
                 d[threadIdx.x] = tile[7 - threadIdx.x]; }",
        );
        let buf = m.alloc(8);
        m.launch_host("k", 1, 8, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(
            m.read_i64s(buf, 8).unwrap(),
            vec![70, 60, 50, 40, 30, 20, 10, 0]
        );
    }

    #[test]
    fn dynamic_launch_executes_child() {
        let mut m = machine(
            "__global__ void child(int* d, int base) { d[base + threadIdx.x] = 1; }\n\
             __global__ void parent(int* d) { child<<<1, 4>>>(d, threadIdx.x * 4); }",
        );
        let buf = m.alloc(16);
        m.launch_host("parent", 1, 4, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 16).unwrap(), vec![1; 16]);
        assert_eq!(m.stats().device_launches, 4);
        let trace = m.take_trace();
        assert_eq!(trace.grids.len(), 5);
        assert_eq!(trace.device_launches(), 4);
    }

    #[test]
    fn zero_sized_launch_is_noop() {
        let mut m = machine(
            "__global__ void child(int* d) { d[0] = 99; }\n\
             __global__ void parent(int* d, int n) { child<<<n, 32>>>(d); }",
        );
        let buf = m.alloc(1);
        m.launch_host("parent", 1, 1, &[Value::Int(buf), Value::Int(0)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 0);
        assert_eq!(m.stats().empty_launches, 1);
        assert_eq!(m.stats().device_launches, 0);
    }

    #[test]
    fn nested_launches_two_levels() {
        let mut m = machine(
            "__global__ void leaf(int* d) { atomicAdd(&d[0], 1); }\n\
             __global__ void mid(int* d) { leaf<<<1, 2>>>(d); }\n\
             __global__ void root(int* d) { mid<<<2, 1>>>(d); }",
        );
        let buf = m.alloc(1);
        m.launch_host("root", 1, 1, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        // root → 2 mid blocks × 1 thread → 2 leaf launches × 2 threads.
        assert_eq!(m.read_i64s(buf, 1).unwrap()[0], 4);
    }

    #[test]
    fn dim3_launch_configuration() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 int i = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x + threadIdx.x; \
                 d[i] = blockIdx.y; }",
        );
        let buf = m.alloc(24);
        m.launch_host("k", Value::Dim3([3, 2, 1]), 4, &[Value::Int(buf)])
            .unwrap();
        m.run_to_quiescence().unwrap();
        let d = m.read_i64s(buf, 24).unwrap();
        assert_eq!(d[0], 0);
        assert_eq!(d[23], 1);
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let mut m = machine("__global__ void k(int* d) { d[1000000] = 1; }");
        let buf = m.alloc(4);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        let err = m.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn division_by_zero_errors() {
        let mut m = machine("__global__ void k(int* d, int z) { d[0] = 5 / z; }");
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf), Value::Int(0)])
            .unwrap();
        assert!(m.run_to_quiescence().is_err());
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let p =
            dp_frontend::parse("__global__ void k(int* d) { while (true) { d[0] = 1; } }").unwrap();
        let module = compile_program(&p).unwrap();
        let limits = ExecLimits {
            max_instructions: 10_000,
            ..Default::default()
        };
        let mut m = Machine::with_config(module, CostModel::default(), limits);
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        let err = m.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("instruction budget"));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut m = machine("__global__ void k(int* d) { d[0] = 1; }");
        let buf = m.alloc(1);
        assert!(m.launch_host("k", 1, 2048, &[Value::Int(buf)]).is_err());
    }

    #[test]
    fn trace_records_warp_cycles_and_divergence() {
        // Thread 31 does far more work; warp max must reflect it.
        let mut m = machine(
            "__global__ void k(int* d) { \
                 if (threadIdx.x == 31) { \
                     int s = 0; \
                     for (int i = 0; i < 1000; ++i) { s += i; } \
                     d[0] = s; \
                 } }",
        );
        let buf = m.alloc(1);
        m.launch_host("k", 1, 64, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let trace = m.take_trace();
        let block = &trace.grids[0].blocks[0];
        assert_eq!(block.warp_cycles.len(), 2);
        assert!(
            block.warp_cycles[0] > 10 * block.warp_cycles[1],
            "divergent warp should dominate: {:?}",
            block.warp_cycles
        );
    }

    #[test]
    fn launch_presence_overhead_is_charged() {
        let src_with = "__global__ void c(int* d) { d[0] = 1; }\n\
                        __global__ void k(int* d, int n) { if (n > 1000) { c<<<1, 1>>>(d); } d[1] = 2; }";
        let src_without = "__global__ void k(int* d, int n) { d[1] = 2; }";
        let run = |src: &str| {
            let mut m = machine(src);
            let buf = m.alloc(2);
            m.launch_host("k", 1, 32, &[Value::Int(buf), Value::Int(0)])
                .unwrap();
            m.run_to_quiescence().unwrap();
            let t = m.take_trace();
            t.grids[0].blocks[0].warp_cycles[0]
        };
        let with = run(src_with);
        let without = run(src_without);
        assert!(
            with > without + CostModel::default().launch_presence_overhead / 2,
            "kernel containing a (never-executed) launch must be slower: {with} vs {without}"
        );
    }

    #[test]
    fn fusion_is_trace_transparent() {
        // Fused and unfused execution of the same program must agree on
        // results, statistics, and the entire execution trace (warp cycles,
        // per-origin attribution, launch records).
        let src = "__global__ void child(int* d, int n) { \
                       int i = blockIdx.x * blockDim.x + threadIdx.x; \
                       if (i < n) { atomicAdd(&d[i], i * 3 + 1); } }\n\
                   __global__ void parent(int* d, int* deg, int numV) { \
                       int v = blockIdx.x * blockDim.x + threadIdx.x; \
                       if (v < numV) { \
                           int count = deg[v]; \
                           float acc = 0.0; \
                           for (int j = 0; j < count; ++j) { acc += (float)j * 0.5; } \
                           d[numV + v] = (int)acc; \
                           if (count > 0) { child<<<(count + 3) / 4, 4>>>(d, count); } } }";
        let run = |fuse: bool| {
            let p = dp_frontend::parse(src).unwrap();
            let module =
                crate::lower::compile_program_with(&p, crate::lower::LowerOptions { fuse })
                    .unwrap();
            let mut m = Machine::new(module);
            let d = m.alloc(32);
            let deg = m.alloc_i64s(&[3, 0, 7, 1, 5, 2]);
            m.launch_host(
                "parent",
                2,
                4,
                &[Value::Int(d), Value::Int(deg), Value::Int(6)],
            )
            .unwrap();
            m.run_to_quiescence().unwrap();
            let out = m.read_i64s(d, 32).unwrap();
            let stats = m.stats();
            (out, stats, m.take_trace())
        };
        let (out_f, stats_f, trace_f) = run(true);
        let (out_u, stats_u, trace_u) = run(false);
        assert_eq!(out_f, out_u);
        assert_eq!(stats_f, stats_u, "stats count original instruction units");
        assert_eq!(trace_f, trace_u, "traces must be byte-identical");
        assert!(stats_f.instructions > 0, "stats.instructions is populated");
        assert_eq!(stats_f.instructions, trace_f.instructions());
    }

    #[test]
    fn huge_custom_cost_models_are_supported() {
        // CostModel fields are public u64s; per-instruction costs beyond
        // u32 must accumulate, not panic at machine construction.
        let p = dp_frontend::parse("__global__ void k(int* d) { d[0] = d[0] + 1; }").unwrap();
        let cost = CostModel {
            mem: 5_000_000_000,
            ..CostModel::default()
        };
        let mut m = Machine::with_config(compile_program(&p).unwrap(), cost, ExecLimits::default());
        let buf = m.alloc(1);
        m.launch_host("k", 1, 1, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let trace = m.take_trace();
        assert!(trace.grids[0].blocks[0].critical_warp_cycles() > 10_000_000_000);
    }

    #[test]
    fn state_reuse_knob_does_not_change_results() {
        let src = "__global__ void k(int* d) { \
                       __shared__ int tile[8]; \
                       tile[threadIdx.x] = threadIdx.x + blockIdx.x; \
                       __syncthreads(); \
                       d[blockIdx.x * 8 + threadIdx.x] = tile[7 - threadIdx.x]; }";
        let run = |reuse: bool| {
            let mut m = machine(src);
            m.set_state_reuse(reuse);
            let d = m.alloc(64);
            m.launch_host("k", 8, 8, &[Value::Int(d)]).unwrap();
            m.run_to_quiescence().unwrap();
            (m.read_i64s(d, 64).unwrap(), m.take_trace())
        };
        let (out_pool, trace_pool) = run(true);
        let (out_fresh, trace_fresh) = run(false);
        assert_eq!(out_pool, out_fresh);
        assert_eq!(trace_pool, trace_fresh);
    }

    #[test]
    fn bulk_memory_ops_match_scalar_semantics() {
        let mut mem = Memory::new();
        let base = mem.alloc(8);
        mem.fill(base, 8, Value::Int(7)).unwrap();
        assert_eq!(mem.read(base + 3).unwrap(), Value::Int(7));
        mem.write_range(base + 1, &[Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(
            mem.read_range(base, 4).unwrap(),
            &[Value::Int(7), Value::Int(1), Value::Int(2), Value::Int(7)]
        );
        // Empty operations succeed anywhere, as the scalar loop did.
        mem.fill(base + 8, 0, Value::Int(0)).unwrap();
        assert_eq!(mem.read_range(base, 0).unwrap(), &[]);
        // One-past-the-end and null ranges fail with a single check.
        assert!(mem.fill(base, 9, Value::Int(0)).is_err());
        assert!(mem.read_range(0, 1).is_err());
        assert!(mem
            .write_range(base + 7, &[Value::Int(0), Value::Int(0)])
            .is_err());
        assert!(mem.fill(-4, 2, Value::Int(0)).is_err());
    }

    #[test]
    fn origin_cycles_sum_to_block_totals() {
        let mut m = machine(
            "__global__ void k(int* d) { \
                 for (int i = 0; i < 10; ++i) { d[threadIdx.x] += i; } }",
        );
        let buf = m.alloc(32);
        m.launch_host("k", 1, 32, &[Value::Int(buf)]).unwrap();
        m.run_to_quiescence().unwrap();
        let trace = m.take_trace();
        let block = &trace.grids[0].blocks[0];
        assert!(block.origin_cycles.total() > 0);
        assert_eq!(
            block.origin_cycles.get(CodeOrigin::Original),
            block.origin_cycles.total(),
            "untransformed code is all Original"
        );
    }

    // ------------------------------------------------------------------
    // Parallel block execution + dispatch-mode determinism
    // ------------------------------------------------------------------

    /// Runs `src` under one (fusion, dispatch, jobs) configuration and
    /// returns every observable output.
    #[allow(clippy::too_many_arguments)]
    fn run_configured(
        src: &str,
        setup: &dyn Fn(&mut Machine) -> Vec<Value>,
        words: usize,
        fuse: bool,
        dispatch: DispatchMode,
        jobs: usize,
        kernel: &str,
        grid: i64,
        block: i64,
    ) -> (Vec<i64>, MachineStats, ExecutionTrace) {
        let p = dp_frontend::parse(src).unwrap();
        let module =
            crate::lower::compile_program_with(&p, crate::lower::LowerOptions { fuse }).unwrap();
        let mut m = Machine::new(module);
        m.set_dispatch(dispatch);
        m.set_block_parallelism(jobs);
        let args = setup(&mut m);
        m.launch_host(kernel, grid, block, &args).unwrap();
        m.run_to_quiescence().unwrap();
        (m.read_i64s(1, words).unwrap(), m.stats(), m.take_trace())
    }

    /// The full determinism matrix of the acceptance criteria: fusion
    /// on/off × jobs 1/N × dispatch threaded/match must agree bit-exactly
    /// on memory, statistics, and the entire execution trace — on a
    /// disjoint-write kernel, a conflict-heavy cross-block atomic kernel,
    /// a barrier/shared-memory kernel, and a device-launching kernel.
    #[test]
    fn parallel_and_dispatch_matrix_is_bit_identical() {
        struct Case {
            name: &'static str,
            src: &'static str,
            kernel: &'static str,
            grid: i64,
            block: i64,
            words: usize,
        }
        let cases = [
            Case {
                name: "disjoint",
                src: "__global__ void k(int* d) { \
                          int i = blockIdx.x * blockDim.x + threadIdx.x; \
                          int acc = 0; \
                          for (int j = 0; j < 16; ++j) { acc = acc + i * j - (acc >> 1); } \
                          d[i] = acc; }",
                kernel: "k",
                grid: 8,
                block: 16,
                words: 128,
            },
            Case {
                name: "conflicting",
                src: "__global__ void k(int* d) { \
                          int old = atomicAdd(&d[0], threadIdx.x + 1); \
                          atomicMax(&d[1], old); \
                          d[2 + blockIdx.x] = old; }",
                kernel: "k",
                grid: 8,
                block: 8,
                words: 16,
            },
            Case {
                name: "barrier",
                src: "__global__ void k(int* d) { \
                          __shared__ int tile[16]; \
                          tile[threadIdx.x] = threadIdx.x * 3 + blockIdx.x; \
                          __syncthreads(); \
                          d[blockIdx.x * 16 + threadIdx.x] = tile[15 - threadIdx.x]; }",
                kernel: "k",
                grid: 8,
                block: 16,
                words: 128,
            },
            Case {
                name: "launching",
                src: "__global__ void child(int* d, int base, int n) { \
                          int i = blockIdx.x * blockDim.x + threadIdx.x; \
                          if (i < n) { d[base + i] = d[base + i] + 1; } }\n\
                      __global__ void k(int* d) { \
                          if (threadIdx.x == 0) { \
                              child<<<2, 8>>>(d, blockIdx.x * 16, 16); } }",
                kernel: "k",
                grid: 8,
                block: 4,
                words: 128,
            },
        ];
        for case in cases {
            let setup = |m: &mut Machine| {
                let d = m.alloc(case.words);
                assert_eq!(d, 1, "single allocation starts at 1");
                vec![Value::Int(d)]
            };
            let reference = run_configured(
                case.src,
                &setup,
                case.words,
                true,
                DispatchMode::Threaded,
                1,
                case.kernel,
                case.grid,
                case.block,
            );
            for fuse in [true, false] {
                for dispatch in [DispatchMode::Threaded, DispatchMode::Match] {
                    for jobs in [1, 3] {
                        let got = run_configured(
                            case.src,
                            &setup,
                            case.words,
                            fuse,
                            dispatch,
                            jobs,
                            case.kernel,
                            case.grid,
                            case.block,
                        );
                        assert_eq!(
                            got.0, reference.0,
                            "{}: memory diverged (fuse={fuse}, {dispatch:?}, jobs={jobs})",
                            case.name
                        );
                        assert_eq!(
                            got.1, reference.1,
                            "{}: stats diverged (fuse={fuse}, {dispatch:?}, jobs={jobs})",
                            case.name
                        );
                        assert_eq!(
                            got.2, reference.2,
                            "{}: trace diverged (fuse={fuse}, {dispatch:?}, jobs={jobs})",
                            case.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_execution_speculates_and_detects_conflicts() {
        // Disjoint writes: everything validates, nothing re-executes.
        let mut m =
            machine("__global__ void k(int* d) { d[blockIdx.x * blockDim.x + threadIdx.x] = 7; }");
        m.set_block_parallelism(3);
        let d = m.alloc(256);
        m.launch_host("k", 8, 32, &[Value::Int(d)]).unwrap();
        m.run_to_quiescence().unwrap();
        let ps = m.parallel_stats();
        assert_eq!(ps.parallel_grids, 1);
        assert_eq!(ps.speculated_blocks, 8);
        assert_eq!(ps.conflict_blocks, 0);
        assert_eq!(ps.serialized_kernels, 0);

        // Cross-block atomics on one counter: later blocks read earlier
        // blocks' writes, so every block after the first conflicts, the
        // result still matches sequential, and the kernel is adaptively
        // marked serial for its next grid.
        let mut m = machine("__global__ void k(int* d) { atomicAdd(&d[0], 1); }");
        m.set_block_parallelism(3);
        let d = m.alloc(4);
        m.launch_host("k", 8, 16, &[Value::Int(d)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(d, 1).unwrap()[0], 128);
        let ps = m.parallel_stats();
        assert_eq!(ps.speculated_blocks, 8);
        assert!(ps.conflict_blocks >= 7, "{ps:?}");
        assert_eq!(ps.serialized_kernels, 1);
        m.launch_host("k", 8, 16, &[Value::Int(d)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(m.read_i64s(d, 1).unwrap()[0], 256);
        let ps2 = m.parallel_stats();
        assert_eq!(
            ps2.speculated_blocks, 8,
            "serialized kernel must not speculate again"
        );
    }

    #[test]
    fn parallel_launch_ids_match_sequential_fifo_order() {
        let src = "__global__ void child(int* d, int slot) { atomicAdd(&d[slot], 1); }\n\
                   __global__ void k(int* d) { \
                       if (threadIdx.x == 0) { child<<<1, 4>>>(d, blockIdx.x); } }";
        let run = |jobs: usize| {
            let p = dp_frontend::parse(src).unwrap();
            let mut m = Machine::new(compile_program(&p).unwrap());
            m.set_block_parallelism(jobs);
            let d = m.alloc(16);
            m.launch_host("k", 8, 8, &[Value::Int(d)]).unwrap();
            m.run_to_quiescence().unwrap();
            (m.read_i64s(d, 8).unwrap(), m.take_trace())
        };
        let (seq_mem, seq_trace) = run(1);
        let (par_mem, par_trace) = run(4);
        assert_eq!(seq_mem, vec![4; 8]);
        assert_eq!(par_mem, seq_mem);
        assert_eq!(par_trace, seq_trace);
        // Child grid ids follow the parent in linear block order.
        for (i, g) in par_trace.grids.iter().enumerate() {
            assert_eq!(g.id, i);
        }
        let children: Vec<usize> = par_trace.grids[0]
            .blocks
            .iter()
            .flat_map(|b| b.launches.iter().map(|l| l.child_grid))
            .collect();
        assert_eq!(children, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_errors_reproduce_sequential_errors() {
        // Block 5 faults; speculation must re-execute and surface the same
        // error sequential execution reports.
        let src = "__global__ void k(int* d) { \
                       if (blockIdx.x == 5 && threadIdx.x == 0) { d[1000000] = 1; } \
                       d[blockIdx.x * blockDim.x + threadIdx.x] = 1; }";
        let run = |jobs: usize| {
            let p = dp_frontend::parse(src).unwrap();
            let mut m = Machine::new(compile_program(&p).unwrap());
            m.set_block_parallelism(jobs);
            let d = m.alloc(256);
            m.launch_host("k", 8, 16, &[Value::Int(d)]).unwrap();
            let err = m.run_to_quiescence().unwrap_err().to_string();
            (err, m.read_i64s(d, 256).unwrap())
        };
        let (seq_err, seq_mem) = run(1);
        let (par_err, par_mem) = run(4);
        assert_eq!(seq_err, par_err);
        assert!(par_err.contains("out of bounds"));
        // The faulting block's *partial* writes (and every earlier
        // block's writes) must survive identically at any worker count.
        assert_eq!(seq_mem, par_mem, "post-error memory must match");
        assert_eq!(
            seq_mem[..5 * 16],
            [1; 80][..],
            "blocks before the fault ran"
        );
    }

    #[test]
    fn budgeted_runs_stay_sequential_and_deterministic() {
        let p = dp_frontend::parse(
            "__global__ void k(int* d) { d[blockIdx.x * blockDim.x + threadIdx.x] = 1; }",
        )
        .unwrap();
        let limits = ExecLimits {
            max_instructions: 10_000_000,
            ..Default::default()
        };
        let mut m =
            Machine::with_config(compile_program(&p).unwrap(), CostModel::default(), limits);
        m.set_block_parallelism(4);
        let d = m.alloc(256);
        m.launch_host("k", 8, 32, &[Value::Int(d)]).unwrap();
        m.run_to_quiescence().unwrap();
        assert_eq!(
            m.parallel_stats().parallel_grids,
            0,
            "finite budgets must serialize"
        );
        assert_eq!(m.read_i64s(d, 256).unwrap(), vec![1; 256]);
    }
}
