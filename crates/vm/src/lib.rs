//! # dp-vm
//!
//! A functional GPU executor for the CUDA-C subset: bytecode, lowering, and
//! an execution machine with grids, blocks, barriers, atomics, shared
//! memory, and **device-side kernel launches** (dynamic parallelism).
//!
//! The VM plays the role of the CUDA toolchain + GPU in the paper's
//! artifact: transformed programs are *actually executed*, so the
//! correctness of every compiler pass is testable end-to-end, and the
//! execution trace (per-warp cycles, per-origin cycle attribution, launch
//! events) feeds the `dp-sim` timing model that reproduces the paper's
//! evaluation.
//!
//! ## The execution hot path
//!
//! Interpreter throughput bounds how many configurations the benchmark
//! harness and autotuner can sweep, so the execution core is engineered
//! around four ideas (measured by `dp-bench`'s `vmbench` binary, tracked
//! in `BENCH_vm.json` at the repo root):
//!
//! 1. **Direct-threaded dispatch**: at machine construction every
//!    function's instruction stream is decoded into a table of op slots —
//!    a handler function pointer plus pre-resolved operands, cycles,
//!    width, and origin — so the hot loop is an indirect call per
//!    instruction instead of a `match` over the opcode space. Hot binary
//!    families are specialized per [`bytecode::BinKind`]. The classic
//!    `match` loop survives as
//!    [`machine::DispatchMode::Match`] for differential testing and as
//!    the benchmark baseline.
//! 2. **Superinstruction fusion** ([`lower::fuse_function`]): a peephole
//!    pass collapses hot stack-shuffle sequences (`LoadLocal;LoadLocal;Bin`,
//!    `PushInt;Bin`, the six-instruction `i += k` statement pattern,
//!    `LoadLocal;LoadMem`, `StoreLocal s;LoadLocal s`) into single fused
//!    opcodes. Fusion is *accounting-transparent*: every superinstruction
//!    is charged its expansion's summed cycles and counted as
//!    [`Instr::width`](bytecode::Instr::width) original instructions, so
//!    traces, statistics, and per-origin attribution are byte-identical
//!    with fusion on or off.
//! 3. **Arena-reused thread state**: per-block `Thread` structs (frames,
//!    locals, operand stacks) and the shared-memory buffer are pooled
//!    across the blocks of a grid, and call-frame locals are recycled
//!    through a per-thread free list, so steady-state execution allocates
//!    nothing. Kernel arguments are coerced once per grid, not per block.
//! 4. **Parallel block execution**: grids with enough blocks run across a
//!    worker pool drawn from the shared `DPOPT_JOBS` budget
//!    ([`jobs`]). Blocks execute speculatively against a memory snapshot
//!    with word-granular read/write tracking; a block-order merge
//!    validates, applies, or transparently re-executes them, keeping
//!    memory, traces, statistics, and launch order **bit-identical to
//!    sequential execution at any worker count** (see
//!    [`machine`]'s module docs for the contract).
//!
//! To add a new superinstruction, see the checklist on
//! [`lower::fuse_function`]; for a new opcode under threaded dispatch,
//! see the "VM hot path" section of `ROADMAP.md`.
//!
//! ## Example
//!
//! ```
//! use dp_vm::{lower::compile_program, machine::Machine, Value};
//!
//! let program = dp_frontend::parse(
//!     "__global__ void child(int* d, int base) { d[base + threadIdx.x] = 1; }\n\
//!      __global__ void parent(int* d) { child<<<1, 4>>>(d, threadIdx.x * 4); }",
//! ).unwrap();
//! let mut machine = Machine::new(compile_program(&program).unwrap());
//! let buf = machine.alloc(16);
//! machine.launch_host("parent", 1, 4, &[Value::Int(buf)]).unwrap();
//! machine.run_to_quiescence().unwrap();
//! assert_eq!(machine.read_i64s(buf, 16).unwrap(), vec![1; 16]);
//! ```

pub mod bytecode;
pub mod error;
pub mod lower;
pub mod machine;
pub mod trace;
pub mod value;

// The budget moved to the shared worker-pool crate (`dp-pool`); the
// re-export keeps every historical `dp_vm::jobs::` path working.
pub use dp_pool::jobs;

pub use bytecode::{CostClass, CostModel, Module};
pub use error::{CompileError, ExecError};
pub use lower::{compile_program, compile_program_unfused, fuse_module, LowerOptions};
pub use machine::{DispatchMode, ExecLimits, Machine, MachineStats, Memory, ParallelStats};
pub use trace::{BlockTrace, ExecutionTrace, GridTrace, LaunchOrigin, LaunchRecord, OriginCycles};
pub use value::Value;
