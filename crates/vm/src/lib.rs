//! # dp-vm
//!
//! A functional GPU executor for the CUDA-C subset: bytecode, lowering, and
//! an execution machine with grids, blocks, barriers, atomics, shared
//! memory, and **device-side kernel launches** (dynamic parallelism).
//!
//! The VM plays the role of the CUDA toolchain + GPU in the paper's
//! artifact: transformed programs are *actually executed*, so the
//! correctness of every compiler pass is testable end-to-end, and the
//! execution trace (per-warp cycles, per-origin cycle attribution, launch
//! events) feeds the `dp-sim` timing model that reproduces the paper's
//! evaluation.
//!
//! ## Example
//!
//! ```
//! use dp_vm::{lower::compile_program, machine::Machine, Value};
//!
//! let program = dp_frontend::parse(
//!     "__global__ void child(int* d, int base) { d[base + threadIdx.x] = 1; }\n\
//!      __global__ void parent(int* d) { child<<<1, 4>>>(d, threadIdx.x * 4); }",
//! ).unwrap();
//! let mut machine = Machine::new(compile_program(&program).unwrap());
//! let buf = machine.alloc(16);
//! machine.launch_host("parent", 1, 4, &[Value::Int(buf)]).unwrap();
//! machine.run_to_quiescence().unwrap();
//! assert_eq!(machine.read_i64s(buf, 16).unwrap(), vec![1; 16]);
//! ```

pub mod bytecode;
pub mod error;
pub mod lower;
pub mod machine;
pub mod trace;
pub mod value;

pub use bytecode::{CostClass, CostModel, Module};
pub use error::{CompileError, ExecError};
pub use lower::compile_program;
pub use machine::{ExecLimits, Machine, MachineStats, Memory};
pub use trace::{BlockTrace, ExecutionTrace, GridTrace, LaunchOrigin, LaunchRecord, OriginCycles};
pub use value::Value;
