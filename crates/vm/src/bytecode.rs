//! Bytecode definitions and the per-instruction cost model.
//!
//! The VM is a stack machine. Each instruction slot has a parallel
//! [`CodeOrigin`](dp_frontend::CodeOrigin) entry recording which pipeline
//! stage the source statement came from; the execution engine accumulates
//! cycles per origin, which is how the paper's Fig. 10 execution-time
//! breakdown is produced.

use dp_frontend::ast::{CodeOrigin, FnQual, Type};
use std::collections::HashMap;

/// Index of a compiled function within a [`Module`].
pub type FuncId = u32;

/// Binary operation kinds (typed dynamically by operand values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `+` (also pointer arithmetic).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division when both operands are integers).
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Unary operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// Arithmetic negation.
    Neg,
    /// Logical not (yields 0/1).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Atomic read-modify-write operations on memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// `atomicAdd` — returns the old value.
    Add,
    /// `atomicSub`
    Sub,
    /// `atomicMax`
    Max,
    /// `atomicMin`
    Min,
    /// `atomicExch`
    Exch,
    /// `atomicCAS` — `[addr, compare, val] -> [old]`.
    Cas,
    /// `atomicOr`
    Or,
    /// `atomicAnd`
    And,
}

/// Math intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// `min(a, b)` (int or float by operands).
    Min,
    /// `max(a, b)`
    Max,
    /// `abs` / `fabs` / `fabsf`
    Abs,
    /// `sqrt` / `sqrtf`
    Sqrt,
    /// `ceil` / `ceilf`
    Ceil,
    /// `floor` / `floorf`
    Floor,
    /// `exp` / `expf`
    Exp,
    /// `log` / `logf`
    Log,
    /// `pow` / `powf`
    Pow,
}

/// Builtin special registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// `threadIdx` (whole dim3).
    ThreadIdx,
    /// `blockIdx`
    BlockIdx,
    /// `blockDim`
    BlockDim,
    /// `gridDim`
    GridDim,
}

/// VM instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a float constant.
    PushFloat(f64),
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// `[addr] -> [value]` — load from global/shared memory.
    LoadMem,
    /// `[addr, value] -> []` — store to global/shared memory.
    StoreMem,
    /// Binary operation `[a, b] -> [a op b]`.
    Bin(BinKind),
    /// Unary operation `[a] -> [op a]`.
    Un(UnKind),
    /// Truncate to integer.
    CastInt,
    /// Convert to float.
    CastFloat,
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop; jump if zero/false.
    JumpIfZero(u32),
    /// Pop; jump if non-zero/true.
    JumpIfNonZero(u32),
    /// Call function with `n` arguments popped from the stack
    /// (first argument pushed first).
    Call(FuncId, u8),
    /// Return with the top of stack as value.
    Ret,
    /// Return from a void function.
    RetVoid,
    /// Dynamic kernel launch: `[grid, block, arg0..argN-1] -> []`.
    Launch(FuncId, u8),
    /// `__syncthreads()` — block-wide barrier.
    Sync,
    /// `__threadfence()` — memory fence (functional no-op, costed).
    Fence,
    /// Atomic op `[addr, operand] -> [old]` (CAS: `[addr, cmp, val]`).
    Atomic(AtomicOp),
    /// Math intrinsic (operand count fixed per intrinsic).
    Intrinsic(Intrinsic),
    /// Push a builtin special register (whole `dim3`).
    ReadSpecial(Special),
    /// Push component `lane` (0..3) of a builtin special register.
    ReadSpecialComp(Special, u8),
    /// `[x, y, z] -> [dim3]`.
    MakeDim3,
    /// `[dim3] -> [component]`.
    Dim3Member(u8),
    /// `[dim3, v] -> [dim3']` with component `lane` replaced.
    Dim3SetMember(u8),
    /// Discard top of stack.
    Pop,
    /// Duplicate top of stack.
    Dup,
    /// Swap the two top stack entries.
    Swap,

    // ------------------------------------------------------------------
    // Fused superinstructions. These are emitted only by the peephole
    // fusion pass ([`crate::lower::fuse_function`]); the lowerer itself
    // never produces them. Each one is *accounting-transparent*: it is
    // charged the summed cycles of its expansion ([`Instr::cost`]) and
    // counted as [`Instr::width`] dynamic instructions, so traces, stats,
    // and per-origin cycle attribution are identical with fusion on or off.
    // ------------------------------------------------------------------
    /// Fused `LoadLocal(a); LoadLocal(b); Bin(op)` — push `locals[a] op locals[b]`.
    BinLocals(BinKind, u16, u16),
    /// Fused `PushInt(v); Bin(op)` — replace top of stack `a` with `a op v`.
    BinImm(BinKind, i64),
    /// Fused local increment: `locals[slot] += v` with no net stack effect.
    /// Canonical expansion is the prefix form
    /// `LoadLocal; PushInt; Bin(Add); Dup; StoreLocal; Pop`; the fuser also
    /// recognizes the postfix ordering and `Bin(Sub)` (with `v` negated),
    /// whose costs and widths are identical.
    IncLocal(u16, i64),
    /// Fused `LoadLocal(slot); LoadMem` — push `mem[locals[slot]]`.
    LoadLocalMem(u16),
    /// Fused compare-and-branch:
    /// `LoadLocal(a); LoadLocal(b); Bin(cmp); JumpIfZero(target)` — jump to
    /// `target` when `locals[a] cmp locals[b]` is false, with no net stack
    /// effect. Only comparison [`BinKind`]s are fused (the loop-condition
    /// shape `while (i < n)` / `for (...; i < n; ...)`).
    CmpBranchLocals(BinKind, u16, u16, u32),
    /// Fused `StoreLocal(slot); LoadLocal(slot)` — store the top of stack
    /// into the local and leave the value on the stack (store-then-reload,
    /// the `int x = e; use(x);` shape common in lowered accumulator
    /// updates).
    StoreLoadLocal(u16),
}

impl Instr {
    /// The original instruction sequence a fused superinstruction replaces
    /// (`None` for primitive instructions).
    ///
    /// The expansion is the *canonical* form: [`Instr::IncLocal`] expands to
    /// the prefix/`Add` sequence even when it was fused from the postfix or
    /// `Sub` variant (all variants have identical cost classes, so the
    /// accounting is unaffected). [`Instr::cost`] and [`Instr::width`] are
    /// derived from this expansion, which is what keeps fused execution
    /// trace-identical to unfused execution.
    pub fn expansion(&self) -> Option<Vec<Instr>> {
        match *self {
            Instr::BinLocals(op, a, b) => Some(vec![
                Instr::LoadLocal(a),
                Instr::LoadLocal(b),
                Instr::Bin(op),
            ]),
            Instr::BinImm(op, v) => Some(vec![Instr::PushInt(v), Instr::Bin(op)]),
            Instr::IncLocal(slot, v) => Some(vec![
                Instr::LoadLocal(slot),
                Instr::PushInt(v),
                Instr::Bin(BinKind::Add),
                Instr::Dup,
                Instr::StoreLocal(slot),
                Instr::Pop,
            ]),
            Instr::LoadLocalMem(slot) => Some(vec![Instr::LoadLocal(slot), Instr::LoadMem]),
            Instr::CmpBranchLocals(op, a, b, target) => Some(vec![
                Instr::LoadLocal(a),
                Instr::LoadLocal(b),
                Instr::Bin(op),
                Instr::JumpIfZero(target),
            ]),
            Instr::StoreLoadLocal(slot) => {
                Some(vec![Instr::StoreLocal(slot), Instr::LoadLocal(slot)])
            }
            _ => None,
        }
    }

    /// How many original (pre-fusion) instructions this instruction counts
    /// as: 1 for primitives, the expansion length for superinstructions.
    pub fn width(&self) -> u32 {
        self.expansion().map_or(1, |e| e.len() as u32)
    }

    /// Cycles charged for one execution of this instruction under `model` —
    /// for fused instructions, the sum over the expansion.
    pub fn cost(&self, model: &CostModel) -> u64 {
        match self.expansion() {
            Some(parts) => parts.iter().map(|p| model.cycles(p.cost_class())).sum(),
            None => model.cycles(self.cost_class()),
        }
    }

    /// The cost class used by the timing model.
    ///
    /// Fused superinstructions report their *dominant* component's class
    /// (the operation, not the operand moves); the execution machine does
    /// not use this for them — it charges [`Instr::cost`], the sum over the
    /// expansion.
    pub fn cost_class(&self) -> CostClass {
        match self {
            Instr::PushInt(_)
            | Instr::PushFloat(_)
            | Instr::LoadLocal(_)
            | Instr::StoreLocal(_)
            | Instr::Pop
            | Instr::Dup
            | Instr::Swap
            | Instr::ReadSpecial(_)
            | Instr::ReadSpecialComp(..)
            | Instr::MakeDim3
            | Instr::Dim3Member(_)
            | Instr::Dim3SetMember(_)
            | Instr::CastInt
            | Instr::CastFloat => CostClass::Alu,
            Instr::Bin(BinKind::Mul) => CostClass::Mul,
            Instr::Bin(BinKind::Div) | Instr::Bin(BinKind::Rem) => CostClass::Div,
            Instr::Bin(_) | Instr::Un(_) => CostClass::Alu,
            Instr::LoadMem | Instr::StoreMem => CostClass::Mem,
            Instr::Jump(_) | Instr::JumpIfZero(_) | Instr::JumpIfNonZero(_) => CostClass::Branch,
            Instr::Call(..) | Instr::Ret | Instr::RetVoid => CostClass::Call,
            Instr::Launch(..) => CostClass::Launch,
            Instr::Sync => CostClass::Sync,
            Instr::Fence => CostClass::Fence,
            Instr::Atomic(_) => CostClass::Atomic,
            Instr::Intrinsic(_) => CostClass::Intrinsic,
            Instr::BinLocals(op, ..) | Instr::BinImm(op, _) => Instr::Bin(*op).cost_class(),
            Instr::IncLocal(..) => CostClass::Alu,
            Instr::LoadLocalMem(_) => CostClass::Mem,
            Instr::CmpBranchLocals(..) => CostClass::Branch,
            Instr::StoreLoadLocal(_) => CostClass::Alu,
        }
    }
}

/// Instruction cost classes (cycles assigned by [`CostModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Simple ALU / register moves.
    Alu,
    /// Integer/float multiply.
    Mul,
    /// Divide / remainder.
    Div,
    /// Global/shared memory access.
    Mem,
    /// Branches.
    Branch,
    /// Function call/return.
    Call,
    /// The device-side launch instruction sequence.
    Launch,
    /// Barrier.
    Sync,
    /// Memory fence.
    Fence,
    /// Atomic RMW.
    Atomic,
    /// Math intrinsics.
    Intrinsic,
}

/// Cycles charged per instruction, by class. Defaults are V100-flavoured
/// relative latencies (absolute scale is set by the simulator clock).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// ALU ops.
    pub alu: u64,
    /// Multiplies.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Memory accesses (amortized global-memory cost).
    pub mem: u64,
    /// Branches.
    pub branch: u64,
    /// Call/return overhead.
    pub call: u64,
    /// Device-side launch instruction sequence executed by the launching
    /// thread (API overhead, not queueing delay — that is the simulator's
    /// launch pipe).
    pub launch: u64,
    /// Barrier.
    pub sync: u64,
    /// Fence.
    pub fence: u64,
    /// Atomic RMW (contention is not modelled per-address).
    pub atomic: u64,
    /// Math intrinsics.
    pub intrinsic: u64,
    /// Fixed per-thread overhead charged in kernels that contain a launch
    /// instruction, even if the launch never executes. Models the extra
    /// generated instructions the paper observes in Section VIII-D.
    pub launch_presence_overhead: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 2,
            div: 10,
            mem: 12,
            branch: 1,
            call: 4,
            launch: 220,
            sync: 8,
            fence: 12,
            atomic: 24,
            intrinsic: 6,
            launch_presence_overhead: 60,
        }
    }
}

impl CostModel {
    /// Cycles for one instruction of the given class.
    pub fn cycles(&self, class: CostClass) -> u64 {
        match class {
            CostClass::Alu => self.alu,
            CostClass::Mul => self.mul,
            CostClass::Div => self.div,
            CostClass::Mem => self.mem,
            CostClass::Branch => self.branch,
            CostClass::Call => self.call,
            CostClass::Launch => self.launch,
            CostClass::Sync => self.sync,
            CostClass::Fence => self.fence,
            CostClass::Atomic => self.atomic,
            CostClass::Intrinsic => self.intrinsic,
        }
    }
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Function name.
    pub name: String,
    /// CUDA qualifier.
    pub qual: FnQual,
    /// Declared parameter types (used for call coercions, e.g. `int → dim3`).
    pub param_types: Vec<Type>,
    /// Number of local slots (including parameters, which occupy the first
    /// `param_types.len()` slots).
    pub n_locals: u16,
    /// Instruction stream.
    pub code: Vec<Instr>,
    /// Per-instruction origin tags (same length as `code`).
    pub origins: Vec<CodeOrigin>,
    /// Whether the function contains a `Launch` instruction.
    pub contains_launch: bool,
    /// Words of shared memory the function's `__shared__` declarations need.
    pub shared_words: u32,
}

/// A compiled translation unit.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Functions, indexed by [`FuncId`].
    pub functions: Vec<CompiledFunction>,
    by_name: HashMap<String, FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add(&mut self, func: CompiledFunction) -> FuncId {
        let id = self.functions.len() as FuncId;
        let prev = self.by_name.insert(func.name.clone(), id);
        assert!(prev.is_none(), "duplicate function `{}`", func.name);
        self.functions.push(func);
        id
    }

    /// Looks up a function id by name.
    pub fn id_of(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// The function for an id.
    pub fn function(&self, id: FuncId) -> &CompiledFunction {
        &self.functions[id as usize]
    }

    /// The function by name.
    pub fn by_name(&self, name: &str) -> Option<&CompiledFunction> {
        self.id_of(name).map(|id| self.function(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_classes_cover_instructions() {
        assert_eq!(Instr::PushInt(1).cost_class(), CostClass::Alu);
        assert_eq!(Instr::Bin(BinKind::Div).cost_class(), CostClass::Div);
        assert_eq!(Instr::LoadMem.cost_class(), CostClass::Mem);
        assert_eq!(Instr::Launch(0, 2).cost_class(), CostClass::Launch);
        assert_eq!(Instr::Atomic(AtomicOp::Add).cost_class(), CostClass::Atomic);
    }

    #[test]
    fn fused_instructions_cost_their_expansion() {
        let m = CostModel::default();
        for (fused, width) in [
            (Instr::BinLocals(BinKind::Mul, 0, 1), 3),
            (Instr::BinImm(BinKind::Div, 7), 2),
            (Instr::IncLocal(2, 1), 6),
            (Instr::LoadLocalMem(0), 2),
            (Instr::CmpBranchLocals(BinKind::Lt, 0, 1, 9), 4),
            (Instr::StoreLoadLocal(3), 2),
        ] {
            let parts = fused.expansion().expect("fused ops expand");
            assert_eq!(fused.width(), width);
            assert_eq!(parts.len() as u32, width);
            let expanded_cost: u64 = parts.iter().map(|p| m.cycles(p.cost_class())).sum();
            assert_eq!(fused.cost(&m), expanded_cost);
            assert!(
                parts.iter().all(|p| p.expansion().is_none()),
                "expansion is primitive"
            );
        }
        assert_eq!(Instr::Bin(BinKind::Add).width(), 1);
        assert_eq!(Instr::LoadMem.cost(&m), m.mem);
    }

    #[test]
    fn default_cost_model_is_consistent() {
        let m = CostModel::default();
        assert!(m.cycles(CostClass::Launch) > m.cycles(CostClass::Alu));
        assert!(m.cycles(CostClass::Mem) > m.cycles(CostClass::Alu));
        assert_eq!(m.cycles(CostClass::Div), m.div);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let id = m.add(CompiledFunction {
            name: "k".into(),
            qual: FnQual::Global,
            param_types: vec![],
            n_locals: 0,
            code: vec![Instr::RetVoid],
            origins: vec![CodeOrigin::Original],
            contains_launch: false,
            shared_words: 0,
        });
        assert_eq!(m.id_of("k"), Some(id));
        assert!(m.by_name("missing").is_none());
        assert_eq!(m.function(id).name, "k");
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_names_panic() {
        let mut m = Module::new();
        let f = CompiledFunction {
            name: "k".into(),
            qual: FnQual::Global,
            param_types: vec![],
            n_locals: 0,
            code: vec![],
            origins: vec![],
            contains_launch: false,
            shared_words: 0,
        };
        m.add(f.clone());
        m.add(f);
    }
}
