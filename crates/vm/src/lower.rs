//! Lowering from the CUDA-subset AST to VM bytecode, plus the peephole
//! superinstruction-fusion pass.
//!
//! The lowering is deliberately simple (no optimization): the VM's purpose
//! is *faithful instruction accounting*, so every source-level operation
//! should cost what comparable SASS would cost, not what an optimizing
//! compiler could reduce it to. Origin tags flow from statements and
//! expressions onto the emitted instructions.
//!
//! Fusion ([`fuse_function`]) does not change that accounting: it collapses
//! hot stack-shuffle sequences into single superinstructions that are
//! *costed and counted as their expansions* (see
//! [`Instr::expansion`](crate::bytecode::Instr::expansion)), so it speeds up
//! the interpreter without perturbing traces, statistics, or per-origin
//! cycle attribution. [`compile_program`] fuses by default; use
//! [`compile_program_unfused`] (or [`LowerOptions`]) for the
//! reference-semantics baseline.

use crate::bytecode::*;
use crate::error::CompileError;
use crate::value::SHARED_SPACE_BASE;
use dp_frontend::ast::{self, CodeOrigin, ExprKind, Program, StmtKind, Type};
use std::collections::HashMap;

/// Compiles a program to a [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] for constructs outside the executable subset
/// (local arrays, address-of scalars, unknown identifiers, …).
///
/// # Examples
///
/// ```
/// let p = dp_frontend::parse(
///     "__global__ void k(int* d) { d[threadIdx.x] = threadIdx.x * 2; }").unwrap();
/// let module = dp_vm::lower::compile_program(&p).unwrap();
/// assert!(module.by_name("k").is_some());
/// ```
pub fn compile_program(program: &Program) -> Result<Module, CompileError> {
    compile_program_with(program, LowerOptions::default())
}

/// Compiles a program without the superinstruction-fusion pass.
///
/// The unfused module executes identically (same results, same
/// [`ExecutionTrace`](crate::trace::ExecutionTrace), same statistics) but
/// dispatches every original instruction individually — it is the baseline
/// the `vmbench` binary measures fusion against.
pub fn compile_program_unfused(program: &Program) -> Result<Module, CompileError> {
    compile_program_with(program, LowerOptions { fuse: false })
}

/// Knobs for [`compile_program_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Run the peephole superinstruction-fusion pass (default `true`).
    pub fuse: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions { fuse: true }
    }
}

/// Compiles a program with explicit [`LowerOptions`].
///
/// # Errors
///
/// Same as [`compile_program`].
pub fn compile_program_with(
    program: &Program,
    options: LowerOptions,
) -> Result<Module, CompileError> {
    let mut module = Module::new();
    let mut ids: HashMap<String, FuncId> = HashMap::new();
    let functions: Vec<&ast::Function> = program.functions().collect();
    // Pre-assign ids so forward references and recursion work.
    for (i, f) in functions.iter().enumerate() {
        if ids.insert(f.name.clone(), i as FuncId).is_some() {
            return Err(CompileError::new(format!(
                "duplicate function `{}`",
                f.name
            )));
        }
    }
    let defines: HashMap<String, i64> = program
        .items
        .iter()
        .filter_map(|item| match item {
            ast::Item::Define { name, value } => Some((name.clone(), *value)),
            _ => None,
        })
        .collect();

    for f in &functions {
        let mut compiled = Lowerer::new(f, &ids, &defines, &functions)
            .lower()
            .map_err(|e| e.in_function(&f.name))?;
        if options.fuse {
            fuse_function(&mut compiled);
        }
        module.add(compiled);
    }
    Ok(module)
}

// ----------------------------------------------------------------------
// Superinstruction fusion
// ----------------------------------------------------------------------

/// Runs the peephole fusion pass over every function of a module in place.
pub fn fuse_module(module: &mut Module) {
    for f in &mut module.functions {
        fuse_function(f);
    }
}

/// Fuses hot instruction sequences into superinstructions, in place.
///
/// A window of instructions is fused only when (a) it matches one of the
/// patterns below, (b) every instruction in it carries the same
/// [`CodeOrigin`] tag (so per-origin cycle attribution is exact, not
/// approximated), and (c) no jump lands *inside* the window (jumps to the
/// window's first instruction are fine and are remapped). Jump targets are
/// rewritten through an old-index → new-index map afterwards.
///
/// Patterns, longest first:
///
/// | window | superinstruction |
/// |---|---|
/// | `LoadLocal s; PushInt k; Bin ±; Dup; StoreLocal s; Pop` | `IncLocal(s, ±k)` |
/// | `LoadLocal s; Dup; PushInt k; Bin ±; StoreLocal s; Pop` | `IncLocal(s, ±k)` |
/// | `LoadLocal a; LoadLocal b; Bin cmp; JumpIfZero t` | `CmpBranchLocals(cmp, a, b, t)` |
/// | `LoadLocal a; LoadLocal b; Bin op` | `BinLocals(op, a, b)` |
/// | `LoadLocal s; LoadMem` | `LoadLocalMem(s)` |
/// | `PushInt v; Bin op` | `BinImm(op, v)` |
/// | `StoreLocal s; LoadLocal s` | `StoreLoadLocal(s)` |
///
/// `StoreLoadLocal` additionally looks one window ahead: it is skipped when
/// the `LoadLocal` it would consume starts a wider (≥ 3 instruction)
/// pattern, so `int v = e; if (v < n)` keeps its more valuable
/// `CmpBranchLocals` fusion.
///
/// To add a new superinstruction: add the opcode + its [`Instr::expansion`]
/// in `bytecode.rs`, a match arm in `try_fuse_at` here, and a dispatch arm
/// in `machine.rs` that replicates the expansion's observable semantics
/// (including error cases). The accounting (cycles, instruction counts,
/// origin attribution) follows from the expansion automatically.
pub fn fuse_function(f: &mut CompiledFunction) {
    let n = f.code.len();
    // Instruction indices some jump lands on (code.len() is a valid target
    // for loops that end the function).
    let mut is_target = vec![false; n + 1];
    for instr in &f.code {
        if let Instr::Jump(t)
        | Instr::JumpIfZero(t)
        | Instr::JumpIfNonZero(t)
        | Instr::CmpBranchLocals(.., t) = instr
        {
            is_target[*t as usize] = true;
        }
    }

    let mut code = Vec::with_capacity(n);
    let mut origins = Vec::with_capacity(n);
    // map[old index] = new index; interior indices of fused windows keep
    // the window's new index but are never jump targets (checked above).
    let mut map = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        map[i] = code.len() as u32;
        let width = match try_fuse_at(&f.code[i..], &f.origins[i..], &is_target[i + 1..]) {
            Some((fused, width)) => {
                map[i..i + width].fill(code.len() as u32);
                code.push(fused);
                width
            }
            None => {
                code.push(f.code[i]);
                1
            }
        };
        origins.push(f.origins[i]);
        i += width;
    }
    map[n] = code.len() as u32;

    for instr in &mut code {
        if let Instr::Jump(t)
        | Instr::JumpIfZero(t)
        | Instr::JumpIfNonZero(t)
        | Instr::CmpBranchLocals(.., t) = instr
        {
            *t = map[*t as usize];
        }
    }
    f.code = code;
    f.origins = origins;
}

/// Tries to fuse a window starting at `code[0]`; returns the
/// superinstruction and the window width. `targets_after` holds the
/// jump-target flags for the instructions *after* the window start.
fn try_fuse_at(
    code: &[Instr],
    origins: &[CodeOrigin],
    targets_after: &[bool],
) -> Option<(Instr, usize)> {
    use Instr::*;
    let fusible = |width: usize| {
        code.len() >= width
            && origins[1..width].iter().all(|o| *o == origins[0])
            && targets_after[..width - 1].iter().all(|t| !t)
    };
    let inc_delta = |op: BinKind, k: i64| match op {
        BinKind::Add => Some(k),
        // `x - k` and `x + (-k)` are exact-identical for both integer
        // (wrapping) and IEEE float semantics; i64::MIN has no negation.
        BinKind::Sub if k != i64::MIN => Some(-k),
        _ => None,
    };

    if fusible(6) {
        // Prefix `±±x` / compound `x ±= k` statement...
        if let [LoadLocal(s), PushInt(k), Bin(op), Dup, StoreLocal(s2), Pop, ..] = *code {
            if s == s2 {
                if let Some(delta) = inc_delta(op, k) {
                    return Some((IncLocal(s, delta), 6));
                }
            }
        }
        // ...and the postfix `x±±` ordering (same cost classes).
        if let [LoadLocal(s), Dup, PushInt(k), Bin(op), StoreLocal(s2), Pop, ..] = *code {
            if s == s2 {
                if let Some(delta) = inc_delta(op, k) {
                    return Some((IncLocal(s, delta), 6));
                }
            }
        }
    }
    if fusible(4) {
        // Loop-condition shape: compare two locals, branch when false.
        if let [LoadLocal(a), LoadLocal(b), Bin(op), JumpIfZero(t), ..] = *code {
            if matches!(
                op,
                BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge | BinKind::Eq | BinKind::Ne
            ) {
                return Some((CmpBranchLocals(op, a, b, t), 4));
            }
        }
    }
    if fusible(3) {
        if let [LoadLocal(a), LoadLocal(b), Bin(op), ..] = *code {
            return Some((BinLocals(op, a, b), 3));
        }
    }
    if fusible(2) {
        if let [LoadLocal(s), LoadMem, ..] = *code {
            return Some((LoadLocalMem(s), 2));
        }
        if let [PushInt(v), Bin(op), ..] = *code {
            return Some((BinImm(op, v), 2));
        }
        if let [StoreLocal(s), LoadLocal(s2), ..] = *code {
            // Store-then-reload. Greedy left-to-right scanning would let
            // this width-2 window swallow the first instruction of a wider
            // pattern starting at the reload (e.g. the 4-wide
            // `CmpBranchLocals`); only fuse when that costs nothing.
            let steals_wider_window = try_fuse_at(&code[1..], &origins[1..], &targets_after[1..])
                .is_some_and(|(_, width)| width >= 3);
            if s == s2 && !steals_wider_window {
                return Some((StoreLoadLocal(s), 2));
            }
        }
    }
    None
}

struct LoopCtx {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
}

struct Lowerer<'a> {
    func: &'a ast::Function,
    ids: &'a HashMap<String, FuncId>,
    defines: &'a HashMap<String, i64>,
    functions: &'a [&'a ast::Function],
    code: Vec<Instr>,
    origins: Vec<CodeOrigin>,
    scopes: Vec<HashMap<String, u16>>,
    shared: HashMap<String, u32>,
    shared_words: u32,
    next_slot: u16,
    tmp_slot: Option<u16>,
    loops: Vec<LoopCtx>,
    contains_launch: bool,
}

impl<'a> Lowerer<'a> {
    fn new(
        func: &'a ast::Function,
        ids: &'a HashMap<String, FuncId>,
        defines: &'a HashMap<String, i64>,
        functions: &'a [&'a ast::Function],
    ) -> Self {
        Lowerer {
            func,
            ids,
            defines,
            functions,
            code: Vec::new(),
            origins: Vec::new(),
            scopes: vec![HashMap::new()],
            shared: HashMap::new(),
            shared_words: 0,
            next_slot: 0,
            tmp_slot: None,
            loops: Vec::new(),
            contains_launch: false,
        }
    }

    fn lower(mut self) -> Result<CompiledFunction, CompileError> {
        for param in &self.func.params {
            let slot = self.alloc_slot();
            self.scopes
                .last_mut()
                .unwrap()
                .insert(param.name.clone(), slot);
        }
        for stmt in &self.func.body {
            self.stmt(stmt)?;
        }
        if !matches!(self.code.last(), Some(Instr::Ret) | Some(Instr::RetVoid)) {
            self.emit(Instr::RetVoid, CodeOrigin::Original);
        }
        Ok(CompiledFunction {
            name: self.func.name.clone(),
            qual: self.func.qual,
            param_types: self.func.params.iter().map(|p| p.ty.clone()).collect(),
            n_locals: self.next_slot,
            code: self.code,
            origins: self.origins,
            contains_launch: self.contains_launch,
            shared_words: self.shared_words,
        })
    }

    fn alloc_slot(&mut self) -> u16 {
        let slot = self.next_slot;
        self.next_slot = self
            .next_slot
            .checked_add(1)
            .expect("too many locals in one function");
        slot
    }

    fn tmp(&mut self) -> u16 {
        if let Some(t) = self.tmp_slot {
            t
        } else {
            let t = self.alloc_slot();
            self.tmp_slot = Some(t);
            t
        }
    }

    fn emit(&mut self, instr: Instr, origin: CodeOrigin) -> usize {
        self.code.push(instr);
        self.origins.push(origin);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNonZero(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn lookup(&self, name: &str) -> Option<u16> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self, stmt: &ast::Stmt) -> Result<(), CompileError> {
        let og = stmt.origin;
        match &stmt.kind {
            StmtKind::Decl(decl) => self.decl(decl, og),
            StmtKind::Expr(e) => {
                self.expr(e)?;
                self.emit(Instr::Pop, og);
                Ok(())
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond)?;
                let j_else = self.emit(Instr::JumpIfZero(0), og);
                self.stmt(then_branch)?;
                match else_branch {
                    Some(els) => {
                        let j_end = self.emit(Instr::Jump(0), og);
                        let else_at = self.here();
                        self.patch(j_else, else_at);
                        self.stmt(els)?;
                        let end = self.here();
                        self.patch(j_end, end);
                    }
                    None => {
                        let end = self.here();
                        self.patch(j_else, end);
                    }
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let top = self.here();
                self.expr(cond)?;
                let j_exit = self.emit(Instr::JumpIfZero(0), og);
                self.loops.push(LoopCtx {
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.stmt(body)?;
                let ctx = self.loops.pop().unwrap();
                for at in ctx.continue_patches {
                    self.patch(at, top);
                }
                self.emit(Instr::Jump(top), og);
                let end = self.here();
                self.patch(j_exit, end);
                for at in ctx.break_patches {
                    self.patch(at, end);
                }
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                let top = self.here();
                self.loops.push(LoopCtx {
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.stmt(body)?;
                let ctx = self.loops.pop().unwrap();
                let cond_at = self.here();
                for at in ctx.continue_patches {
                    self.patch(at, cond_at);
                }
                self.expr(cond)?;
                self.emit(Instr::JumpIfNonZero(top), og);
                let end = self.here();
                for at in ctx.break_patches {
                    self.patch(at, end);
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let top = self.here();
                let j_exit = match cond {
                    Some(c) => {
                        self.expr(c)?;
                        Some(self.emit(Instr::JumpIfZero(0), og))
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.stmt(body)?;
                let ctx = self.loops.pop().unwrap();
                let step_at = self.here();
                for at in ctx.continue_patches {
                    self.patch(at, step_at);
                }
                if let Some(step) = step {
                    self.expr(step)?;
                    self.emit(Instr::Pop, og);
                }
                self.emit(Instr::Jump(top), og);
                let end = self.here();
                if let Some(at) = j_exit {
                    self.patch(at, end);
                }
                for at in ctx.break_patches {
                    self.patch(at, end);
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Return(value) => {
                match value {
                    Some(e) => {
                        self.expr(e)?;
                        self.emit(Instr::Ret, og);
                    }
                    None => {
                        self.emit(Instr::RetVoid, og);
                    }
                }
                Ok(())
            }
            StmtKind::Break => {
                let at = self.emit(Instr::Jump(0), og);
                self.loops
                    .last_mut()
                    .ok_or_else(|| CompileError::new("`break` outside a loop"))?
                    .break_patches
                    .push(at);
                Ok(())
            }
            StmtKind::Continue => {
                let at = self.emit(Instr::Jump(0), og);
                self.loops
                    .last_mut()
                    .ok_or_else(|| CompileError::new("`continue` outside a loop"))?
                    .continue_patches
                    .push(at);
                Ok(())
            }
            StmtKind::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Launch(launch) => self.launch(launch, og),
            StmtKind::Empty => Ok(()),
        }
    }

    fn decl(&mut self, decl: &ast::VarDecl, og: CodeOrigin) -> Result<(), CompileError> {
        for d in &decl.declarators {
            if decl.shared {
                let words = match &d.array_len {
                    Some(len) => self.const_eval(len).ok_or_else(|| {
                        CompileError::new(format!(
                            "__shared__ array `{}` needs a constant size",
                            d.name
                        ))
                    })?,
                    None => 1,
                };
                if words < 0 {
                    return Err(CompileError::new(format!(
                        "__shared__ array `{}` has negative size",
                        d.name
                    )));
                }
                self.shared.insert(d.name.clone(), self.shared_words);
                self.shared_words += words as u32;
                if d.init.is_some() {
                    return Err(CompileError::new(format!(
                        "__shared__ `{}` cannot have an initializer",
                        d.name
                    )));
                }
                continue;
            }
            if d.array_len.is_some() {
                return Err(CompileError::new(format!(
                    "local array `{}` is not supported (only __shared__ arrays)",
                    d.name
                )));
            }
            let slot = self.alloc_slot();
            if let Some(init) = &d.init {
                self.expr(init)?;
                self.emit_conversion(&decl.ty, og);
                self.emit(Instr::StoreLocal(slot), og);
            }
            self.scopes.last_mut().unwrap().insert(d.name.clone(), slot);
        }
        Ok(())
    }

    /// Numeric conversion on initialization/assignment per declared type.
    fn emit_conversion(&mut self, ty: &Type, og: CodeOrigin) {
        match ty {
            Type::Int | Type::UInt | Type::Long | Type::ULong | Type::Bool => {
                self.emit(Instr::CastInt, og);
            }
            Type::Float | Type::Double => {
                self.emit(Instr::CastFloat, og);
            }
            // Pointers are integer addresses; dim3 coercion happens at use.
            Type::Ptr(_) | Type::Dim3 | Type::Void => {}
        }
    }

    fn launch(&mut self, launch: &ast::LaunchStmt, og: CodeOrigin) -> Result<(), CompileError> {
        let id = *self.ids.get(&launch.kernel).ok_or_else(|| {
            CompileError::new(format!("launch of undefined kernel `{}`", launch.kernel))
        })?;
        let target = self.functions[id as usize];
        if target.qual != ast::FnQual::Global {
            return Err(CompileError::new(format!(
                "`{}` is not a __global__ kernel",
                launch.kernel
            )));
        }
        if target.params.len() != launch.args.len() {
            return Err(CompileError::new(format!(
                "kernel `{}` takes {} arguments, launch passes {}",
                launch.kernel,
                target.params.len(),
                launch.args.len()
            )));
        }
        self.expr(&launch.grid)?;
        self.expr(&launch.block)?;
        // Shared-memory size and stream arguments are parsed but not
        // modelled (per-thread default streams assumed, as in the paper).
        for arg in &launch.args {
            self.expr(arg)?;
        }
        self.emit(Instr::Launch(id, launch.args.len() as u8), og);
        self.contains_launch = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self, e: &ast::Expr) -> Result<(), CompileError> {
        let og = e.origin;
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.emit(Instr::PushInt(*v), og);
                Ok(())
            }
            ExprKind::FloatLit(v) => {
                self.emit(Instr::PushFloat(*v), og);
                Ok(())
            }
            ExprKind::BoolLit(b) => {
                self.emit(Instr::PushInt(*b as i64), og);
                Ok(())
            }
            ExprKind::Ident(name) => self.ident(name, og),
            ExprKind::Binary(op, lhs, rhs) => self.binary(*op, lhs, rhs, og),
            ExprKind::Unary(op, operand) => match op {
                ast::UnOp::Neg => {
                    self.expr(operand)?;
                    self.emit(Instr::Un(UnKind::Neg), og);
                    Ok(())
                }
                ast::UnOp::Not => {
                    self.expr(operand)?;
                    self.emit(Instr::Un(UnKind::Not), og);
                    Ok(())
                }
                ast::UnOp::BitNot => {
                    self.expr(operand)?;
                    self.emit(Instr::Un(UnKind::BitNot), og);
                    Ok(())
                }
                ast::UnOp::Deref => {
                    self.expr(operand)?;
                    self.emit(Instr::LoadMem, og);
                    Ok(())
                }
                ast::UnOp::AddrOf => self.addr(operand),
            },
            ExprKind::IncDec {
                inc,
                prefix,
                operand,
            } => self.inc_dec(*inc, *prefix, operand, og),
            ExprKind::Assign(op, lhs, rhs) => self.assign(*op, lhs, rhs, og),
            ExprKind::Ternary(c, t, f) => {
                self.expr(c)?;
                let j_else = self.emit(Instr::JumpIfZero(0), og);
                self.expr(t)?;
                let j_end = self.emit(Instr::Jump(0), og);
                let else_at = self.here();
                self.patch(j_else, else_at);
                self.expr(f)?;
                let end = self.here();
                self.patch(j_end, end);
                Ok(())
            }
            ExprKind::Call(name, args) => self.call(name, args, og),
            ExprKind::Index(base, idx) => {
                self.index_addr(base, idx)?;
                self.emit(Instr::LoadMem, og);
                Ok(())
            }
            ExprKind::Member(base, field) => {
                let lane = dim3_lane(field)
                    .ok_or_else(|| CompileError::new(format!("unknown member `.{field}`")))?;
                if let ExprKind::Ident(name) = &base.kind {
                    if let Some(special) = special_of(name) {
                        if self.lookup(name).is_none() {
                            self.emit(Instr::ReadSpecialComp(special, lane), og);
                            return Ok(());
                        }
                    }
                }
                self.expr(base)?;
                self.emit(Instr::Dim3Member(lane), og);
                Ok(())
            }
            ExprKind::Cast(ty, operand) => {
                self.expr(operand)?;
                self.emit_conversion(ty, og);
                Ok(())
            }
            ExprKind::Dim3Ctor(args) => {
                for i in 0..3 {
                    match args.get(i) {
                        Some(a) => {
                            self.expr(a)?;
                            self.emit(Instr::CastInt, og);
                        }
                        None => {
                            self.emit(Instr::PushInt(1), og);
                        }
                    }
                }
                self.emit(Instr::MakeDim3, og);
                Ok(())
            }
        }
    }

    fn ident(&mut self, name: &str, og: CodeOrigin) -> Result<(), CompileError> {
        if let Some(slot) = self.lookup(name) {
            self.emit(Instr::LoadLocal(slot), og);
            return Ok(());
        }
        if let Some(offset) = self.shared.get(name) {
            self.emit(Instr::PushInt(SHARED_SPACE_BASE + *offset as i64), og);
            return Ok(());
        }
        if let Some(special) = special_of(name) {
            self.emit(Instr::ReadSpecial(special), og);
            return Ok(());
        }
        if let Some(value) = self.defines.get(name) {
            self.emit(Instr::PushInt(*value), og);
            return Ok(());
        }
        Err(CompileError::new(format!("unknown identifier `{name}`")))
    }

    fn binary(
        &mut self,
        op: ast::BinOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        og: CodeOrigin,
    ) -> Result<(), CompileError> {
        use ast::BinOp as B;
        match op {
            B::LogAnd => {
                self.expr(lhs)?;
                let j_false = self.emit(Instr::JumpIfZero(0), og);
                self.expr(rhs)?;
                let j_false2 = self.emit(Instr::JumpIfZero(0), og);
                self.emit(Instr::PushInt(1), og);
                let j_end = self.emit(Instr::Jump(0), og);
                let false_at = self.here();
                self.patch(j_false, false_at);
                self.patch(j_false2, false_at);
                self.emit(Instr::PushInt(0), og);
                let end = self.here();
                self.patch(j_end, end);
                Ok(())
            }
            B::LogOr => {
                self.expr(lhs)?;
                let j_true = self.emit(Instr::JumpIfNonZero(0), og);
                self.expr(rhs)?;
                let j_true2 = self.emit(Instr::JumpIfNonZero(0), og);
                self.emit(Instr::PushInt(0), og);
                let j_end = self.emit(Instr::Jump(0), og);
                let true_at = self.here();
                self.patch(j_true, true_at);
                self.patch(j_true2, true_at);
                self.emit(Instr::PushInt(1), og);
                let end = self.here();
                self.patch(j_end, end);
                Ok(())
            }
            _ => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.emit(Instr::Bin(bin_kind(op)), og);
                Ok(())
            }
        }
    }

    /// Address of an lvalue: `a[i]`, `*p`, or a `__shared__` array name.
    fn addr(&mut self, e: &ast::Expr) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Index(base, idx) => self.index_addr(base, idx),
            ExprKind::Unary(ast::UnOp::Deref, inner) => self.expr(inner),
            ExprKind::Ident(name) if self.shared.contains_key(name) => {
                let off = self.shared[name];
                self.emit(Instr::PushInt(SHARED_SPACE_BASE + off as i64), e.origin);
                Ok(())
            }
            _ => Err(CompileError::new(
                "cannot take the address of this expression (only memory lvalues)",
            )),
        }
    }

    fn index_addr(&mut self, base: &ast::Expr, idx: &ast::Expr) -> Result<(), CompileError> {
        self.expr(base)?;
        self.expr(idx)?;
        self.emit(Instr::Bin(BinKind::Add), idx.origin);
        Ok(())
    }

    fn inc_dec(
        &mut self,
        inc: bool,
        prefix: bool,
        operand: &ast::Expr,
        og: CodeOrigin,
    ) -> Result<(), CompileError> {
        let kind = if inc { BinKind::Add } else { BinKind::Sub };
        if let ExprKind::Ident(name) = &operand.kind {
            if let Some(slot) = self.lookup(name) {
                if prefix {
                    self.emit(Instr::LoadLocal(slot), og);
                    self.emit(Instr::PushInt(1), og);
                    self.emit(Instr::Bin(kind), og);
                    self.emit(Instr::Dup, og);
                    self.emit(Instr::StoreLocal(slot), og);
                } else {
                    self.emit(Instr::LoadLocal(slot), og);
                    self.emit(Instr::Dup, og);
                    self.emit(Instr::PushInt(1), og);
                    self.emit(Instr::Bin(kind), og);
                    self.emit(Instr::StoreLocal(slot), og);
                }
                return Ok(());
            }
        }
        // Memory lvalue.
        let tmp = self.tmp();
        self.addr(operand)?; // [a]
        self.emit(Instr::Dup, og); // [a, a]
        self.emit(Instr::LoadMem, og); // [a, old]
        if prefix {
            self.emit(Instr::PushInt(1), og);
            self.emit(Instr::Bin(kind), og); // [a, new]
            self.emit(Instr::Dup, og); // [a, new, new]
            self.emit(Instr::StoreLocal(tmp), og); // [a, new]
            self.emit(Instr::StoreMem, og); // []
        } else {
            self.emit(Instr::Dup, og); // [a, old, old]
            self.emit(Instr::StoreLocal(tmp), og); // [a, old]
            self.emit(Instr::PushInt(1), og);
            self.emit(Instr::Bin(kind), og); // [a, new]
            self.emit(Instr::StoreMem, og); // []
        }
        self.emit(Instr::LoadLocal(tmp), og);
        Ok(())
    }

    fn assign(
        &mut self,
        op: ast::AssignOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        og: CodeOrigin,
    ) -> Result<(), CompileError> {
        // Local scalar.
        if let ExprKind::Ident(name) = &lhs.kind {
            if let Some(slot) = self.lookup(name) {
                match op.bin_op() {
                    None => self.expr(rhs)?,
                    Some(b) => {
                        self.emit(Instr::LoadLocal(slot), og);
                        self.expr(rhs)?;
                        self.emit(Instr::Bin(bin_kind(b)), og);
                    }
                }
                self.emit(Instr::Dup, og);
                self.emit(Instr::StoreLocal(slot), og);
                return Ok(());
            }
            return Err(CompileError::new(format!(
                "assignment to unknown identifier `{name}`"
            )));
        }
        // dim3 member on a local: `v.x = e`.
        if let ExprKind::Member(base, field) = &lhs.kind {
            let lane = dim3_lane(field)
                .ok_or_else(|| CompileError::new(format!("unknown member `.{field}`")))?;
            if let ExprKind::Ident(name) = &base.kind {
                if let Some(slot) = self.lookup(name) {
                    let tmp = self.tmp();
                    self.emit(Instr::LoadLocal(slot), og); // [d3]
                    match op.bin_op() {
                        None => self.expr(rhs)?,
                        Some(b) => {
                            self.emit(Instr::LoadLocal(slot), og);
                            self.emit(Instr::Dim3Member(lane), og);
                            self.expr(rhs)?;
                            self.emit(Instr::Bin(bin_kind(b)), og);
                        }
                    } // [d3, v]
                    self.emit(Instr::Dup, og); // [d3, v, v]
                    self.emit(Instr::StoreLocal(tmp), og); // [d3, v]
                    self.emit(Instr::Dim3SetMember(lane), og); // [d3']
                    self.emit(Instr::StoreLocal(slot), og); // []
                    self.emit(Instr::LoadLocal(tmp), og); // [v]
                    return Ok(());
                }
            }
            return Err(CompileError::new(
                "member assignment requires a local dim3 variable",
            ));
        }
        // Memory lvalue: `a[i] = e` or `*p = e`.
        let tmp = self.tmp();
        self.addr(lhs)?; // [a]
        match op.bin_op() {
            None => {
                self.expr(rhs)?; // [a, v]
            }
            Some(b) => {
                self.emit(Instr::Dup, og); // [a, a]
                self.emit(Instr::LoadMem, og); // [a, old]
                self.expr(rhs)?;
                self.emit(Instr::Bin(bin_kind(b)), og); // [a, v]
            }
        }
        self.emit(Instr::Dup, og); // [a, v, v]
        self.emit(Instr::StoreLocal(tmp), og); // [a, v]
        self.emit(Instr::StoreMem, og); // []
        self.emit(Instr::LoadLocal(tmp), og); // [v]
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[ast::Expr], og: CodeOrigin) -> Result<(), CompileError> {
        // Synchronization intrinsics.
        match name {
            "__syncthreads" => {
                self.emit(Instr::Sync, og);
                self.emit(Instr::PushInt(0), og);
                return Ok(());
            }
            "__threadfence" | "__threadfence_block" | "__threadfence_system" => {
                self.emit(Instr::Fence, og);
                self.emit(Instr::PushInt(0), og);
                return Ok(());
            }
            _ => {}
        }
        // Atomics: first argument is an address (written `&lvalue` or a
        // pointer-valued expression).
        if let Some(atomic) = atomic_of(name) {
            let want = if atomic == AtomicOp::Cas { 3 } else { 2 };
            if args.len() != want {
                return Err(CompileError::new(format!(
                    "`{name}` takes {want} arguments, got {}",
                    args.len()
                )));
            }
            match &args[0].kind {
                ExprKind::Unary(ast::UnOp::AddrOf, inner) => self.addr(inner)?,
                _ => self.expr(&args[0])?,
            }
            for a in &args[1..] {
                self.expr(a)?;
            }
            self.emit(Instr::Atomic(atomic), og);
            return Ok(());
        }
        // Math intrinsics.
        if let Some((intrinsic, arity)) = intrinsic_of(name) {
            if args.len() != arity {
                return Err(CompileError::new(format!(
                    "`{name}` takes {arity} arguments, got {}",
                    args.len()
                )));
            }
            for a in args {
                self.expr(a)?;
            }
            self.emit(Instr::Intrinsic(intrinsic), og);
            return Ok(());
        }
        // User function.
        let Some(&id) = self.ids.get(name) else {
            return Err(CompileError::new(format!(
                "call to unknown function `{name}`"
            )));
        };
        let target = self.functions[id as usize];
        if target.qual == ast::FnQual::Global {
            return Err(CompileError::new(format!(
                "kernel `{name}` must be launched with <<<...>>>, not called"
            )));
        }
        if target.params.len() != args.len() {
            return Err(CompileError::new(format!(
                "`{name}` takes {} arguments, got {}",
                target.params.len(),
                args.len()
            )));
        }
        for a in args {
            self.expr(a)?;
        }
        self.emit(Instr::Call(id, args.len() as u8), og);
        Ok(())
    }

    fn const_eval(&self, e: &ast::Expr) -> Option<i64> {
        match &e.kind {
            ExprKind::IntLit(v) => Some(*v),
            ExprKind::Ident(name) => self.defines.get(name).copied(),
            ExprKind::Binary(op, a, b) => {
                let a = self.const_eval(a)?;
                let b = self.const_eval(b)?;
                match op {
                    ast::BinOp::Add => Some(a + b),
                    ast::BinOp::Sub => Some(a - b),
                    ast::BinOp::Mul => Some(a * b),
                    ast::BinOp::Div if b != 0 => Some(a / b),
                    _ => None,
                }
            }
            ExprKind::Cast(_, inner) => self.const_eval(inner),
            _ => None,
        }
    }
}

fn bin_kind(op: ast::BinOp) -> BinKind {
    use ast::BinOp as B;
    match op {
        B::Add => BinKind::Add,
        B::Sub => BinKind::Sub,
        B::Mul => BinKind::Mul,
        B::Div => BinKind::Div,
        B::Rem => BinKind::Rem,
        B::Lt => BinKind::Lt,
        B::Le => BinKind::Le,
        B::Gt => BinKind::Gt,
        B::Ge => BinKind::Ge,
        B::Eq => BinKind::Eq,
        B::Ne => BinKind::Ne,
        B::BitAnd => BinKind::BitAnd,
        B::BitOr => BinKind::BitOr,
        B::BitXor => BinKind::BitXor,
        B::Shl => BinKind::Shl,
        B::Shr => BinKind::Shr,
        B::LogAnd | B::LogOr => unreachable!("lowered with jumps"),
    }
}

fn special_of(name: &str) -> Option<Special> {
    match name {
        "threadIdx" => Some(Special::ThreadIdx),
        "blockIdx" => Some(Special::BlockIdx),
        "blockDim" => Some(Special::BlockDim),
        "gridDim" => Some(Special::GridDim),
        _ => None,
    }
}

fn dim3_lane(field: &str) -> Option<u8> {
    match field {
        "x" => Some(0),
        "y" => Some(1),
        "z" => Some(2),
        _ => None,
    }
}

fn atomic_of(name: &str) -> Option<AtomicOp> {
    match name {
        "atomicAdd" => Some(AtomicOp::Add),
        "atomicSub" => Some(AtomicOp::Sub),
        "atomicMax" => Some(AtomicOp::Max),
        "atomicMin" => Some(AtomicOp::Min),
        "atomicExch" => Some(AtomicOp::Exch),
        "atomicCAS" => Some(AtomicOp::Cas),
        "atomicOr" => Some(AtomicOp::Or),
        "atomicAnd" => Some(AtomicOp::And),
        _ => None,
    }
}

fn intrinsic_of(name: &str) -> Option<(Intrinsic, usize)> {
    match name {
        "min" | "fminf" | "fmin" => Some((Intrinsic::Min, 2)),
        "max" | "fmaxf" | "fmax" => Some((Intrinsic::Max, 2)),
        "abs" | "fabs" | "fabsf" => Some((Intrinsic::Abs, 1)),
        "sqrt" | "sqrtf" => Some((Intrinsic::Sqrt, 1)),
        "ceil" | "ceilf" => Some((Intrinsic::Ceil, 1)),
        "floor" | "floorf" => Some((Intrinsic::Floor, 1)),
        "exp" | "expf" => Some((Intrinsic::Exp, 1)),
        "log" | "logf" => Some((Intrinsic::Log, 1)),
        "pow" | "powf" => Some((Intrinsic::Pow, 2)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        compile_program(&dp_frontend::parse(src).unwrap()).unwrap()
    }

    fn compile_err(src: &str) -> CompileError {
        compile_program(&dp_frontend::parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn lowers_simple_kernel() {
        let m = compile("__global__ void k(int* d) { d[threadIdx.x] = 1; }");
        let f = m.by_name("k").unwrap();
        assert_eq!(f.param_types, vec![Type::Int.ptr_to()]);
        assert!(f.code.contains(&Instr::StoreMem));
        assert!(f
            .code
            .contains(&Instr::ReadSpecialComp(Special::ThreadIdx, 0)));
        assert!(matches!(f.code.last(), Some(Instr::RetVoid)));
        assert_eq!(f.code.len(), f.origins.len());
    }

    #[test]
    fn launch_sets_flag_and_checks_arity() {
        let m = compile(
            "__global__ void c(int n) { }\n\
             __global__ void p(int n) { c<<<n, 32>>>(n); }",
        );
        assert!(m.by_name("p").unwrap().contains_launch);
        assert!(!m.by_name("c").unwrap().contains_launch);
        let e = compile_err(
            "__global__ void c(int n) { }\n\
             __global__ void p(int n) { c<<<n, 32>>>(n, n); }",
        );
        assert!(e.to_string().contains("takes 1 arguments"));
    }

    #[test]
    fn launching_undefined_kernel_fails() {
        let e = compile_err("__global__ void p(int n) { nope<<<n, 32>>>(n); }");
        assert!(e.to_string().contains("undefined kernel"));
    }

    #[test]
    fn calling_a_kernel_fails() {
        let e = compile_err(
            "__global__ void c(int n) { }\n\
             __global__ void p(int n) { c(n); }",
        );
        assert!(e.to_string().contains("must be launched"));
    }

    #[test]
    fn unknown_identifier_fails() {
        let e = compile_err("__global__ void k(int* d) { d[0] = mystery; }");
        assert!(e.to_string().contains("unknown identifier `mystery`"));
    }

    #[test]
    fn defines_are_inlined() {
        let m = compile("#define _THRESHOLD 99\n__global__ void k(int* d) { d[0] = _THRESHOLD; }");
        let f = m.by_name("k").unwrap();
        assert!(f.code.contains(&Instr::PushInt(99)));
    }

    #[test]
    fn local_array_is_rejected() {
        let e = compile_err("__global__ void k(int* d) { int tmp[4]; d[0] = tmp[0]; }");
        assert!(e.to_string().contains("local array"));
    }

    #[test]
    fn shared_array_allocates_space() {
        let m =
            compile("__global__ void k(int* d) { __shared__ int t[32]; t[0] = 1; d[0] = t[0]; }");
        let f = m.by_name("k").unwrap();
        assert_eq!(f.shared_words, 32);
    }

    #[test]
    fn shared_size_uses_defines() {
        let m = compile(
            "#define TILE 16\n__global__ void k(int* d) { __shared__ float t[TILE * 2]; d[0] = (int)t[0]; }",
        );
        assert_eq!(m.by_name("k").unwrap().shared_words, 32);
    }

    #[test]
    fn atomics_lower_with_addr_of() {
        let m = compile("__global__ void k(int* d) { int old = atomicAdd(&d[0], 1); d[1] = old; }");
        let f = m.by_name("k").unwrap();
        assert!(f.code.contains(&Instr::Atomic(AtomicOp::Add)));
    }

    #[test]
    fn atomic_on_pointer_value() {
        let m = compile("__global__ void k(int* d) { atomicMax(d, 5); }");
        assert!(m
            .by_name("k")
            .unwrap()
            .code
            .contains(&Instr::Atomic(AtomicOp::Max)));
    }

    #[test]
    fn intrinsics_check_arity() {
        let e = compile_err("__global__ void k(int* d) { d[0] = min(1); }");
        assert!(e.to_string().contains("takes 2 arguments"));
    }

    #[test]
    fn break_outside_loop_fails() {
        let e = compile_err("__global__ void k(int* d) { break; }");
        assert!(e.to_string().contains("outside a loop"));
    }

    #[test]
    fn origin_tags_flow_to_instructions() {
        use dp_frontend::visit::walk_stmt_mut;
        let mut p = dp_frontend::parse("__global__ void k(int* d) { d[0] = 1; }").unwrap();
        let f = p.function_mut("k").unwrap();
        for s in &mut f.body {
            walk_stmt_mut(s, &mut |st| st.origin = CodeOrigin::AggLogic);
            dp_frontend::visit::walk_stmt_exprs_mut(s, &mut |e| e.origin = CodeOrigin::AggLogic);
        }
        let m = compile_program(&p).unwrap();
        let f = m.by_name("k").unwrap();
        // Everything except the implicit RetVoid carries the tag.
        let tagged = f
            .origins
            .iter()
            .filter(|o| **o == CodeOrigin::AggLogic)
            .count();
        assert_eq!(tagged, f.origins.len() - 1);
    }

    // ------------------------------------------------------------------
    // Superinstruction fusion
    // ------------------------------------------------------------------

    fn compile_unfused(src: &str) -> Module {
        compile_program_with(
            &dp_frontend::parse(src).unwrap(),
            LowerOptions { fuse: false },
        )
        .unwrap()
    }

    #[test]
    fn fusion_emits_superinstructions() {
        let src = "__global__ void k(int* d, int n) { \
                       int s = 0; \
                       for (int i = 0; i < n; ++i) { s = s + d[i] * 3; } \
                       d[0] = s; }";
        let fused = compile(src);
        let unfused = compile_unfused(src);
        let f = fused.by_name("k").unwrap();
        let u = unfused.by_name("k").unwrap();
        assert!(f.code.len() < u.code.len(), "fusion must shrink the stream");
        assert!(
            f.code.iter().any(|i| matches!(i, Instr::IncLocal(..))),
            "loop step fuses"
        );
        assert!(
            f.code
                .iter()
                .any(|i| matches!(i, Instr::CmpBranchLocals(BinKind::Lt, ..))),
            "loop condition fuses into compare-and-branch"
        );
        assert!(
            f.code
                .iter()
                .any(|i| matches!(i, Instr::BinImm(BinKind::Mul, 3))),
            "immediate multiply fuses"
        );
        assert!(
            u.code.iter().all(|i| i.expansion().is_none()),
            "unfused stream is primitive"
        );
        // Widths conserve the original instruction count.
        let total: u32 = f.code.iter().map(|i| i.width()).sum();
        assert_eq!(total as usize, u.code.len());
    }

    #[test]
    fn fusion_respects_origin_and_jump_boundaries() {
        use dp_frontend::ast::FnQual;
        let mk = |origins: Vec<CodeOrigin>, code: Vec<Instr>| CompiledFunction {
            name: "k".into(),
            qual: FnQual::Global,
            param_types: vec![],
            n_locals: 2,
            code,
            origins,
            contains_launch: false,
            shared_words: 0,
        };
        let window = vec![
            Instr::LoadLocal(0),
            Instr::LoadLocal(1),
            Instr::Bin(BinKind::Add),
            Instr::RetVoid,
        ];

        // Same origin everywhere: the window fuses.
        let mut f = mk(vec![CodeOrigin::Original; 4], window.clone());
        fuse_function(&mut f);
        assert_eq!(f.code[0], Instr::BinLocals(BinKind::Add, 0, 1));

        // Mixed origins inside the window: attribution would be wrong, so
        // the window must not fuse.
        let mut f = mk(
            vec![
                CodeOrigin::Original,
                CodeOrigin::AggLogic,
                CodeOrigin::AggLogic,
                CodeOrigin::Original,
            ],
            window.clone(),
        );
        fuse_function(&mut f);
        assert_eq!(f.code, window);

        // A jump landing inside the window also blocks fusion (and gets
        // remapped consistently).
        let mut f = mk(
            vec![CodeOrigin::Original; 5],
            vec![
                Instr::Jump(2),
                Instr::LoadLocal(0),
                Instr::LoadLocal(1),
                Instr::Bin(BinKind::Add),
                Instr::RetVoid,
            ],
        );
        fuse_function(&mut f);
        assert!(
            f.code.contains(&Instr::Jump(2)),
            "jump into the would-be window must survive: {:?}",
            f.code
        );
        assert!(
            !f.code.iter().any(|i| matches!(i, Instr::BinLocals(..))),
            "window with an interior jump target must not fuse: {:?}",
            f.code
        );
    }

    #[test]
    fn compare_branch_fuses_loop_conditions() {
        let src = "__global__ void k(int* d, int n) { \
                       int s = 0; \
                       while (s < n) { s = s + d[s]; } \
                       d[0] = s; }";
        let fused = compile(src);
        let unfused = compile_unfused(src);
        let f = fused.by_name("k").unwrap();
        let u = unfused.by_name("k").unwrap();
        let cmp_branch = f
            .code
            .iter()
            .find_map(|i| match i {
                Instr::CmpBranchLocals(op, a, b, t) => Some((*op, *a, *b, *t)),
                _ => None,
            })
            .expect("while condition fuses");
        let (op, _, _, t) = cmp_branch;
        assert_eq!(op, BinKind::Lt);
        assert!((t as usize) <= f.code.len(), "branch target in range");
        // Width accounting conserves the original instruction count.
        let total: u32 = f.code.iter().map(|i| i.width()).sum();
        assert_eq!(total as usize, u.code.len());
        // Non-comparison ops must not fuse with a following branch.
        let src_add = "__global__ void k(int* d, int a, int b) { \
                           if (a + b) { d[0] = 1; } }";
        let m = compile(src_add);
        assert!(
            !m.by_name("k")
                .unwrap()
                .code
                .iter()
                .any(|i| matches!(i, Instr::CmpBranchLocals(..))),
            "arithmetic condition stays BinLocals + JumpIfZero"
        );
    }

    #[test]
    fn fusion_remaps_jump_targets() {
        let src = "__global__ void k(int* d, int n) { \
                       int s = 0; \
                       while (s < n) { s = s + 1; } \
                       d[0] = s; }";
        let m = compile(src);
        let f = m.by_name("k").unwrap();
        for instr in &f.code {
            if let Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNonZero(t) = instr {
                assert!((*t as usize) <= f.code.len(), "target {t} out of range");
            }
        }
        assert_eq!(f.code.len(), f.origins.len());
    }

    #[test]
    fn store_load_fuses_store_then_reload() {
        // `int v = e; if (v > 0)` accumulator shape: the store-then-reload
        // collapses (the following `v > 0` only offers a 2-wide BinImm, so
        // the lookahead guard allows it), and widths still conserve the
        // original count.
        let src = "__global__ void k(int* d) { \
                       int count = d[0]; \
                       if (count > 0) { d[1] = count; } }";
        let fused = compile(src);
        let unfused = compile_unfused(src);
        let f = fused.by_name("k").unwrap();
        let u = unfused.by_name("k").unwrap();
        assert!(
            f.code.iter().any(|i| matches!(i, Instr::StoreLoadLocal(_))),
            "store-then-reload fuses: {:?}",
            f.code
        );
        let total: u32 = f.code.iter().map(|i| i.width()).sum();
        assert_eq!(total as usize, u.code.len());
    }

    #[test]
    fn store_load_yields_to_wider_windows() {
        // `int v = ...; if (v < n)` — the reload starts a 4-wide
        // CmpBranchLocals window, which is worth more than StoreLoadLocal;
        // the lookahead guard must leave it alone.
        let src = "__global__ void k(int* d, int n) { \
                       int v = d[0]; \
                       if (v < n) { d[1] = v; } }";
        let f = compile(src);
        let code = &f.by_name("k").unwrap().code;
        assert!(
            code.iter()
                .any(|i| matches!(i, Instr::CmpBranchLocals(BinKind::Lt, ..))),
            "compare-and-branch must win: {code:?}"
        );
        assert!(
            !code.iter().any(|i| matches!(i, Instr::StoreLoadLocal(_))),
            "store-load must not steal the compare's first load: {code:?}"
        );
    }

    #[test]
    fn store_load_respects_loop_jump_targets() {
        // `for (int i = 0; ...)`: the loop back-edge lands on the reload
        // that begins the condition, so the store-then-reload across the
        // loop header must not fuse.
        let src = "__global__ void k(int* d, int n) { \
                       for (int i = 0; i < n; ++i) { d[i] = i; } }";
        let f = compile(src);
        let code = &f.by_name("k").unwrap().code;
        assert!(
            code.iter()
                .any(|i| matches!(i, Instr::CmpBranchLocals(BinKind::Lt, ..))),
            "loop condition keeps its fusion: {code:?}"
        );
        for instr in code {
            if let Instr::Jump(t)
            | Instr::JumpIfZero(t)
            | Instr::JumpIfNonZero(t)
            | Instr::CmpBranchLocals(.., t) = instr
            {
                assert!((*t as usize) <= code.len());
            }
        }
    }

    #[test]
    fn fuse_module_is_idempotent() {
        let src = "__global__ void k(int* d, int n) { \
                       for (int i = 0; i < n; ++i) { d[i] = d[i] + 1; } }";
        let mut m = compile(src);
        let before: Vec<Instr> = m.by_name("k").unwrap().code.clone();
        fuse_module(&mut m);
        assert_eq!(m.by_name("k").unwrap().code, before);
    }

    #[test]
    fn scopes_shadow_and_expire() {
        // `i` in the loop shadows nothing; using it after the loop fails.
        let e = compile_err(
            "__global__ void k(int* d) { for (int i = 0; i < 4; ++i) { d[i] = i; } d[0] = i; }",
        );
        assert!(e.to_string().contains("unknown identifier `i`"));
    }

    #[test]
    fn duplicate_functions_rejected() {
        let e = compile_err("__device__ int f() { return 1; }\n__device__ int f() { return 2; }");
        assert!(e.to_string().contains("duplicate function"));
    }
}
