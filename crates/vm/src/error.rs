//! Error types for lowering and execution.

use std::error::Error;
use std::fmt;

/// An error while lowering AST to bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    message: String,
    function: Option<String>,
}

impl CompileError {
    /// Creates a new lowering error.
    pub fn new(message: impl Into<String>) -> Self {
        CompileError {
            message: message.into(),
            function: None,
        }
    }

    /// Attaches the function being lowered.
    pub fn in_function(mut self, name: &str) -> Self {
        self.function = Some(name.to_string());
        self
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "compile error in `{func}`: {}", self.message),
            None => write!(f, "compile error: {}", self.message),
        }
    }
}

impl Error for CompileError {}

/// A runtime error during simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    message: String,
    context: Option<String>,
}

impl ExecError {
    /// Creates a new execution error.
    pub fn new(message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
            context: None,
        }
    }

    /// Attaches kernel/block/thread context.
    pub fn with_context(mut self, context: impl Into<String>) -> Self {
        self.context = Some(context.into());
        self
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.context {
            Some(ctx) => write!(f, "execution error ({ctx}): {}", self.message),
            None => write!(f, "execution error: {}", self.message),
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_error_display() {
        let e = CompileError::new("local arrays are not supported").in_function("k");
        assert_eq!(
            e.to_string(),
            "compile error in `k`: local arrays are not supported"
        );
    }

    #[test]
    fn exec_error_display() {
        let e = ExecError::new("out-of-bounds store").with_context("kernel `k` block 3 thread 5");
        assert!(e.to_string().contains("block 3"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<CompileError>();
        check::<ExecError>();
    }
}
