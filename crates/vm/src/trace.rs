//! Execution traces consumed by the timing simulator (`dp-sim`).
//!
//! The VM executes grids functionally and records, per block, how many
//! cycles each warp spent (max over its threads — the warp-synchronous
//! upper path, which is what makes control divergence from
//! over-thresholding visible) and how those cycles split across
//! [`CodeOrigin`] categories (which is what produces the paper's Fig. 10
//! breakdown).

use dp_frontend::ast::CodeOrigin;

/// Number of [`CodeOrigin`] categories.
pub const N_ORIGINS: usize = 6;

/// Index of an origin in [`OriginCycles`].
pub fn origin_index(origin: CodeOrigin) -> usize {
    match origin {
        CodeOrigin::Original => 0,
        CodeOrigin::ThresholdCheck => 1,
        CodeOrigin::ThresholdSerial => 2,
        CodeOrigin::CoarsenLoop => 3,
        CodeOrigin::AggLogic => 4,
        CodeOrigin::DisaggLogic => 5,
    }
}

/// Cycle totals split by code origin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OriginCycles(pub [u64; N_ORIGINS]);

impl OriginCycles {
    /// Adds cycles to one origin's bucket.
    pub fn add(&mut self, origin: CodeOrigin, cycles: u64) {
        self.0[origin_index(origin)] += cycles;
    }

    /// Cycles attributed to `origin`.
    pub fn get(&self, origin: CodeOrigin) -> u64 {
        self.0[origin_index(origin)]
    }

    /// Sum across all origins.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &OriginCycles) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }
}

/// How a grid was launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchOrigin {
    /// Launched from the host (CPU).
    Host,
    /// Launched dynamically from device code.
    Device {
        /// Grid id of the launching (parent) grid.
        parent_grid: usize,
        /// Linear block index of the launching block within the parent.
        parent_block: u64,
        /// The launching thread's cycle count when the launch was issued
        /// (used to position the launch in time).
        issue_cycles: u64,
    },
}

impl LaunchOrigin {
    /// `true` for device-side launches.
    pub fn is_device(&self) -> bool {
        matches!(self, LaunchOrigin::Device { .. })
    }
}

/// A device-side launch issued while executing a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchRecord {
    /// Grid id of the launched child.
    pub child_grid: usize,
    /// Issuing thread's cycle count at the launch instruction.
    pub issue_cycles: u64,
}

/// Per-block execution record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockTrace {
    /// Max thread cycles per warp (warp-synchronous execution time).
    pub warp_cycles: Vec<u64>,
    /// Sum of thread cycles, split by code origin.
    pub origin_cycles: OriginCycles,
    /// Device launches issued from this block.
    pub launches: Vec<LaunchRecord>,
    /// Dynamic instructions executed by the block (all threads).
    pub instructions: u64,
}

impl BlockTrace {
    /// The block's warp-level execution time: max over warps.
    pub fn critical_warp_cycles(&self) -> u64 {
        self.warp_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Total cycles over all warps (issue-bandwidth view).
    pub fn total_warp_cycles(&self) -> u64 {
        self.warp_cycles.iter().sum()
    }
}

/// Per-grid execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct GridTrace {
    /// Grid id (position in launch order).
    pub id: usize,
    /// Kernel name.
    pub kernel: String,
    /// Grid dimensions.
    pub grid_dim: [i64; 3],
    /// Block dimensions.
    pub block_dim: [i64; 3],
    /// Who launched it.
    pub origin: LaunchOrigin,
    /// Per-block traces, in linear block order.
    pub blocks: Vec<BlockTrace>,
}

impl GridTrace {
    /// Total number of blocks.
    pub fn num_blocks(&self) -> u64 {
        (self.grid_dim[0] * self.grid_dim[1] * self.grid_dim[2]) as u64
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u64 {
        (self.block_dim[0] * self.block_dim[1] * self.block_dim[2]) as u64
    }

    /// Cycle totals split by origin over the whole grid.
    pub fn origin_cycles(&self) -> OriginCycles {
        let mut total = OriginCycles::default();
        for b in &self.blocks {
            total.merge(&b.origin_cycles);
        }
        total
    }
}

/// Trace of one complete run (host launch to quiescence).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Executed grids in launch order (grid id = index).
    pub grids: Vec<GridTrace>,
}

impl ExecutionTrace {
    /// Number of device-side launches in the trace.
    pub fn device_launches(&self) -> usize {
        self.grids.iter().filter(|g| g.origin.is_device()).count()
    }

    /// Number of host-side launches.
    pub fn host_launches(&self) -> usize {
        self.grids.len() - self.device_launches()
    }

    /// Total dynamic instructions.
    pub fn instructions(&self) -> u64 {
        self.grids
            .iter()
            .flat_map(|g| g.blocks.iter())
            .map(|b| b.instructions)
            .sum()
    }

    /// Origin-split cycles over the whole trace.
    pub fn origin_cycles(&self) -> OriginCycles {
        let mut total = OriginCycles::default();
        for g in &self.grids {
            total.merge(&g.origin_cycles());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_indexing_is_bijective() {
        let all = [
            CodeOrigin::Original,
            CodeOrigin::ThresholdCheck,
            CodeOrigin::ThresholdSerial,
            CodeOrigin::CoarsenLoop,
            CodeOrigin::AggLogic,
            CodeOrigin::DisaggLogic,
        ];
        let mut seen = [false; N_ORIGINS];
        for o in all {
            let i = origin_index(o);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn origin_cycles_accumulate() {
        let mut oc = OriginCycles::default();
        oc.add(CodeOrigin::Original, 10);
        oc.add(CodeOrigin::AggLogic, 5);
        oc.add(CodeOrigin::Original, 3);
        assert_eq!(oc.get(CodeOrigin::Original), 13);
        assert_eq!(oc.total(), 18);
        let mut other = OriginCycles::default();
        other.add(CodeOrigin::DisaggLogic, 2);
        oc.merge(&other);
        assert_eq!(oc.total(), 20);
    }

    #[test]
    fn block_trace_critical_path() {
        let b = BlockTrace {
            warp_cycles: vec![10, 50, 20],
            ..Default::default()
        };
        assert_eq!(b.critical_warp_cycles(), 50);
        assert_eq!(b.total_warp_cycles(), 80);
    }

    #[test]
    fn grid_trace_geometry() {
        let g = GridTrace {
            id: 0,
            kernel: "k".into(),
            grid_dim: [4, 2, 1],
            block_dim: [32, 1, 1],
            origin: LaunchOrigin::Host,
            blocks: vec![],
        };
        assert_eq!(g.num_blocks(), 8);
        assert_eq!(g.threads_per_block(), 32);
    }

    #[test]
    fn trace_launch_counts() {
        let mk = |origin| GridTrace {
            id: 0,
            kernel: "k".into(),
            grid_dim: [1, 1, 1],
            block_dim: [1, 1, 1],
            origin,
            blocks: vec![],
        };
        let t = ExecutionTrace {
            grids: vec![
                mk(LaunchOrigin::Host),
                mk(LaunchOrigin::Device {
                    parent_grid: 0,
                    parent_block: 0,
                    issue_cycles: 5,
                }),
            ],
        };
        assert_eq!(t.device_launches(), 1);
        assert_eq!(t.host_launches(), 1);
    }
}
