//! Runtime values of the GPU virtual machine.
//!
//! The VM is word-oriented: every scalar (integer of any width, float,
//! double, pointer) occupies one tagged word. Pointers are word addresses
//! into the global (or shared) address space represented as integers. `dim3`
//! values exist only in registers (they are never stored to memory by
//! generated code).

use std::fmt;

/// Base address of the per-block shared-memory address space. Addresses at
/// or above this value refer to shared memory.
pub const SHARED_SPACE_BASE: i64 = 1 << 56;

/// A tagged VM word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integers, booleans, and pointers (word addresses).
    Int(i64),
    /// `float` / `double` (both f64 in the VM; see DESIGN.md).
    Float(f64),
    /// A `dim3` triple.
    Dim3([i64; 3]),
}

impl Value {
    /// The integer interpretation of the value.
    ///
    /// Floats truncate toward zero (C cast semantics); `dim3` is its x
    /// component (CUDA's implicit `dim3 → size_t` has no analogue, but
    /// launch configuration coercion needs this).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Float(v) => *v as i64,
            Value::Dim3(d) => d[0],
        }
    }

    /// The float interpretation of the value.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(v) => *v,
            Value::Dim3(d) => d[0] as f64,
        }
    }

    /// Truthiness (C semantics: non-zero is true).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Dim3(d) => d.iter().any(|&v| v != 0),
        }
    }

    /// Coerces to a `dim3` (scalars become `(v, 1, 1)`, as CUDA's implicit
    /// `int → dim3` conversion does for launch configurations).
    pub fn as_dim3(&self) -> [i64; 3] {
        match self {
            Value::Dim3(d) => *d,
            other => [other.as_int(), 1, 1],
        }
    }

    /// Whether this value is a float.
    pub fn is_float(&self) -> bool {
        matches!(self, Value::Float(_))
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Dim3(d) => write!(f, "dim3({}, {}, {})", d[0], d[1], d[2]),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Int(v as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_conversions() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Float(3.9).as_int(), 3);
        assert_eq!(Value::Float(-3.9).as_int(), -3);
        assert_eq!(Value::Int(2).as_float(), 2.0);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Float(0.5).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
    }

    #[test]
    fn dim3_coercion() {
        assert_eq!(Value::Int(64).as_dim3(), [64, 1, 1]);
        assert_eq!(Value::Dim3([2, 3, 4]).as_dim3(), [2, 3, 4]);
        assert_eq!(Value::Dim3([2, 3, 4]).as_int(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Value::default(), Value::Int(0));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Dim3([1, 2, 3]).to_string(), "dim3(1, 2, 3)");
    }
}
