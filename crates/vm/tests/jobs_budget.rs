//! Edge-case semantics of the process-wide `DPOPT_JOBS` budget
//! (`dp_vm::jobs`, re-exported from `dp_pool::jobs` — the ledger the
//! shared pool holds its lifetime reservation from): reserving from an
//! exhausted budget, `DPOPT_JOBS=1`, and budget release when the
//! reserving worker panics.
//!
//! The budget is process-global state, so the tests in this file serialize
//! on a mutex, and the `DPOPT_JOBS=1` case (which needs the env var read
//! at first touch) re-runs this test binary as a child process.

use dp_vm::jobs::{configured_jobs, reserve_up_to};
use std::sync::Mutex;

/// Serializes the budget-touching tests; the libtest harness runs tests in
/// this binary concurrently otherwise.
static BUDGET_LOCK: Mutex<()> = Mutex::new(());

/// The whole budget (the configured job count bounds the token pool, so
/// this request can never be partially satisfiable by a larger one).
fn drain_budget() -> dp_vm::jobs::Reservation {
    reserve_up_to(configured_jobs())
}

#[test]
fn exhausted_budget_grants_zero_and_recovers() {
    let _guard = BUDGET_LOCK.lock().unwrap();
    let all = drain_budget();
    // The pool is empty now: every further request degrades to sequential.
    assert_eq!(reserve_up_to(1).count(), 0, "exhausted budget grants 0");
    assert_eq!(reserve_up_to(usize::MAX >> 1).count(), 0, "huge wants too");
    drop(all);
    // Released tokens are immediately reservable again.
    let again = drain_budget();
    assert_eq!(
        again.count(),
        configured_jobs() - 1,
        "full budget returns after release"
    );
}

#[test]
fn zero_want_is_always_granted_zero() {
    let _guard = BUDGET_LOCK.lock().unwrap();
    assert_eq!(reserve_up_to(0).count(), 0);
    // Even with the budget fully drained, a zero-want succeeds trivially.
    let _all = drain_budget();
    assert_eq!(reserve_up_to(0).count(), 0);
}

#[test]
fn budget_is_released_when_the_holder_panics() {
    let _guard = BUDGET_LOCK.lock().unwrap();
    let before = drain_budget();
    let expected = before.count();
    drop(before);

    // A worker that reserves and then panics must not leak its tokens:
    // `Reservation: Drop` runs during unwinding.
    let worker = std::thread::spawn(|| {
        let _reservation = drain_budget();
        panic!("worker died while holding the budget");
    });
    assert!(worker.join().is_err(), "worker must have panicked");

    let after = drain_budget();
    assert_eq!(
        after.count(),
        expected,
        "panicked holder must return its tokens"
    );
}

/// `DPOPT_JOBS=1` means "no extra threads, ever": the budget starts empty.
/// The env var is parsed once per process, so this assertion runs in a
/// child copy of this test binary with the env set (the child executes
/// `jobs_one_child_assertions`, which is a no-op in the parent run).
#[test]
fn dpopt_jobs_1_has_an_empty_budget() {
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args(["jobs_one_child_assertions", "--exact", "--nocapture"])
        .env("DPOPT_JOBS", "1")
        .env("DPOPT_JOBS_BUDGET_CHILD", "1")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "child assertions failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 passed"),
        "child must actually run the assertions: {stdout}"
    );
}

/// The child half of `dpopt_jobs_1_has_an_empty_budget`. In a normal test
/// run (no marker env) it does nothing.
#[test]
fn jobs_one_child_assertions() {
    if std::env::var_os("DPOPT_JOBS_BUDGET_CHILD").is_none() {
        return;
    }
    assert_eq!(configured_jobs(), 1, "DPOPT_JOBS=1 must be honored");
    assert_eq!(
        reserve_up_to(8).count(),
        0,
        "a single-job process has zero extra tokens"
    );
}
