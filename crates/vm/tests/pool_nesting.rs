//! Pool lifecycle through the VM: the block executor runs on the shared
//! persistent pool (`dp_pool::Pool::shared`), so (a) a grid submitted
//! *from* a pool worker — the sweep-cell-inside-a-request shape — must
//! degrade to sequential execution instead of deadlocking the pool on
//! itself, and (b) a grid job that panics must not take the substrate
//! down with it.

use dp_pool::Pool;
use dp_vm::lower::compile_program;
use dp_vm::machine::Machine;
use dp_vm::Value;

const SRC: &str =
    "__global__ void k(int* d) { d[blockIdx.x * blockDim.x + threadIdx.x] = blockIdx.x * 100 + threadIdx.x; }";

/// Runs an 8-block grid (≥ the parallel threshold) and returns its memory
/// plus whether the machine took the parallel path.
fn run_grid() -> (Vec<i64>, u64) {
    let p = dp_frontend::parse(SRC).unwrap();
    let mut m = Machine::new(compile_program(&p).unwrap());
    let d = m.alloc(256);
    m.launch_host("k", 8, 32, &[Value::Int(d)]).unwrap();
    m.run_to_quiescence().unwrap();
    (
        m.read_i64s(d, 256).unwrap(),
        m.parallel_stats().parallel_grids,
    )
}

#[test]
fn nested_grid_on_a_pool_worker_degrades_to_sequential() {
    let (reference, _) = run_grid();

    // The nesting shape dp-serve and dp-sweep produce: CPU-bound work —
    // here a ≥4-block grid in auto mode — scheduled onto the shared pool.
    // Before the shared substrate, this was the deadlock/oversubscription
    // case the per-layer budget reservations existed for.
    let (memory, parallel_grids) = Pool::shared().run(run_grid).expect("grid job completed");
    assert_eq!(memory, reference, "nested execution must be bit-identical");
    assert_eq!(
        parallel_grids, 0,
        "a grid already running on the substrate must stay sequential"
    );
}

#[test]
fn panicking_grid_job_leaves_the_pool_serviceable() {
    // A dedicated single-worker pool so the job demonstrably runs on a
    // worker thread (the shared pool may have zero workers on a 1-CPU
    // host, which would exercise the inline path instead).
    let pool = Pool::new(1);
    let r = pool.run(|| {
        let p = dp_frontend::parse(SRC).unwrap();
        let mut m = Machine::new(compile_program(&p).unwrap());
        // Unknown kernel: unwrap panics on the worker mid-job.
        m.launch_host("nonexistent", 8, 32, &[]).unwrap();
    });
    assert!(r.is_err(), "the panic must surface to the submitter");

    // The worker survived and the next grid job runs to completion.
    let (reference, _) = run_grid();
    let (memory, _) = pool.run(run_grid).expect("pool still serves jobs");
    assert_eq!(memory, reference);
}
