//! # dp-workloads
//!
//! The paper's evaluation workloads: synthetic substitutes for the Table-I
//! datasets ([`datasets`]) and the seven nested-parallelism benchmarks
//! ([`benchmarks`]), each in a CDP and a No-CDP version with a shared host
//! driver and verifier.
//!
//! ```
//! use dp_workloads::benchmarks::{run_variant, Variant, BenchInput};
//! use dp_workloads::benchmarks::bfs::Bfs;
//! use dp_workloads::datasets::graphs::rmat;
//! use dp_core::OptConfig;
//!
//! let input = BenchInput::Graph(rmat(6, 4, 1));
//! let cdp = run_variant(&Bfs, Variant::Cdp(OptConfig::none()), &input).unwrap();
//! let opt = run_variant(&Bfs, Variant::Cdp(OptConfig::all()), &input).unwrap();
//! assert_eq!(cdp.output, opt.output); // optimizations preserve semantics
//! ```

pub mod benchmarks;
pub mod datasets;

pub use benchmarks::{all_benchmarks, run_variant, BenchInput, BenchOutput, Benchmark, Variant};
pub use datasets::{datasets_for, describe, DatasetId};
