//! Compressed sparse row graphs used by the graph benchmarks.

use rand::Rng;

/// A directed graph in CSR form with optional edge weights.
///
/// Adjacency lists are sorted (required by the triangle-counting kernel's
/// binary search).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Row offsets (`num_vertices + 1` entries).
    pub offsets: Vec<i64>,
    /// Column indices, sorted within each row.
    pub edges: Vec<i64>,
    /// Edge weights, parallel to `edges`.
    pub weights: Vec<i64>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list, removing duplicate edges and
    /// self-loops, sorting adjacency lists, and assigning pseudo-random
    /// weights in `[1, 64)` derived from the endpoints (deterministic).
    pub fn from_edges(num_vertices: usize, edge_list: &[(u32, u32)]) -> CsrGraph {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
        for &(u, v) in edge_list {
            let (u, v) = (u as usize, v as usize);
            if u == v || u >= num_vertices || v >= num_vertices {
                continue;
            }
            adj[u].push(v as u32);
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        offsets.push(0);
        for (u, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            for &v in list.iter() {
                edges.push(v as i64);
                weights.push(edge_weight(u as u32, v));
            }
            offsets.push(edges.len() as i64);
        }
        CsrGraph {
            num_vertices,
            offsets,
            edges,
            weights,
        }
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices as f64
        }
    }

    /// Neighbours of `v` (sorted).
    pub fn neighbours(&self, v: usize) -> &[i64] {
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Adds the reverse of every edge (symmetrizes), dedicating the result.
    pub fn symmetrized(&self) -> CsrGraph {
        let mut edge_list = Vec::with_capacity(self.num_edges() * 2);
        for u in 0..self.num_vertices {
            for &v in self.neighbours(u) {
                edge_list.push((u as u32, v as u32));
                edge_list.push((v as u32, u as u32));
            }
        }
        CsrGraph::from_edges(self.num_vertices, &edge_list)
    }

    /// A vertex with the highest degree (breadth-first-search source that
    /// reaches a large component).
    pub fn max_degree_vertex(&self) -> usize {
        (0..self.num_vertices)
            .max_by_key(|&v| self.degree(v))
            .unwrap_or(0)
    }
}

/// Deterministic pseudo-random weight in `[1, 64)`.
fn edge_weight(u: u32, v: u32) -> i64 {
    let mut h = (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (v as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    (h % 63 + 1) as i64
}

/// Generates `count` random edges over `n` vertices (helper for tests and
/// simple workloads).
pub fn random_edges<R: Rng>(rng: &mut R, n: usize, count: usize) -> Vec<(u32, u32)> {
    (0..count)
        .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn builds_sorted_deduped_csr() {
        let g = CsrGraph::from_edges(4, &[(0, 2), (0, 1), (0, 2), (1, 3), (2, 2), (3, 0)]);
        assert_eq!(g.num_vertices, 4);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(1), &[3]);
        assert_eq!(g.neighbours(2), &[] as &[i64]); // self-loop dropped
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn weights_are_deterministic_and_positive() {
        let g1 = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g1.weights, g2.weights);
        assert!(g1.weights.iter().all(|&w| (1..64).contains(&w)));
    }

    #[test]
    fn symmetrize_doubles_reachability() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = g.symmetrized();
        assert_eq!(s.neighbours(1), &[0, 2]);
        assert_eq!(s.neighbours(2), &[1]);
    }

    #[test]
    fn max_degree_vertex_found() {
        let g = CsrGraph::from_edges(4, &[(2, 0), (2, 1), (2, 3), (0, 1)]);
        assert_eq!(g.max_degree_vertex(), 2);
    }

    #[test]
    fn random_edges_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let edges = random_edges(&mut rng, 10, 100);
        assert_eq!(edges.len(), 100);
        assert!(edges.iter().all(|&(u, v)| u < 10 && v < 10));
    }
}
