//! Dataset generators and the Table-I registry.

pub mod bezier;
pub mod csr;
pub mod graphs;
pub mod ksat;

use crate::benchmarks::BenchInput;
use bezier::bezier_lines;
use graphs::{rmat, road, web};
use ksat::random_ksat;

/// The paper's datasets (Table I plus the road graph of Section VIII-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// kron_g500-simple-logn16 (65,536 vertices, 2,456,071 edges).
    Kron,
    /// cnr-2000 web crawl (325,557 vertices, 2,738,969 edges).
    Cnr,
    /// USA-road-d.NY (264,346 vertices, 730,100 edges, max degree 8).
    RoadNy,
    /// random-42000-10000-3 (10,000 variables, 3-SAT).
    Rand3,
    /// 5-SATISFIABLE from SAT Competition 2014 (117,296 literals).
    Sat5,
    /// Bézier lines, max tessellation 32, curvature 16, 20,000 lines.
    T0032C16,
    /// Bézier lines, max tessellation 2048, curvature 64, 20,000 lines.
    T2048C64,
}

impl DatasetId {
    /// Name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Kron => "KRON",
            DatasetId::Cnr => "CNR",
            DatasetId::RoadNy => "ROAD-NY",
            DatasetId::Rand3 => "RAND-3",
            DatasetId::Sat5 => "5-SAT",
            DatasetId::T0032C16 => "T0032-C16",
            DatasetId::T2048C64 => "T2048-C64",
        }
    }

    /// What the generator substitutes for (for Table I).
    pub fn description(&self) -> &'static str {
        match self {
            DatasetId::Kron => {
                "R-MAT substitute for kron_g500-simple-logn16 (heavy-tailed degrees)"
            }
            DatasetId::Cnr => {
                "preferential-attachment substitute for cnr-2000 (power-law web graph)"
            }
            DatasetId::RoadNy => {
                "perturbed-lattice substitute for USA-road-d.NY (avg degree ~3, max <= 8)"
            }
            DatasetId::Rand3 => {
                "uniform random 3-SAT (42,000 clauses over 10,000 variables at full scale)"
            }
            DatasetId::Sat5 => "uniform random 5-SAT (~117,296 literals at full scale)",
            DatasetId::T0032C16 => "random Bezier lines, max tessellation 32, curvature scale 16",
            DatasetId::T2048C64 => "random Bezier lines, max tessellation 2048, curvature scale 64",
        }
    }

    /// Instantiates the dataset at a fraction of the paper's size.
    ///
    /// `scale = 1.0` approximates the sizes in Table I; the default harness
    /// scale is smaller so full sweeps finish quickly on the simulator
    /// (the paper itself notes smaller datasets show the same trends,
    /// Section VII).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn instantiate(&self, scale: f64, seed: u64) -> BenchInput {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        match self {
            DatasetId::Kron => {
                // Paper: 2^16 vertices, edge factor ~37 (before symmetrize).
                let bits = (16.0 + scale.log2()).round().clamp(8.0, 16.0) as u32;
                BenchInput::Graph(rmat(bits, 19, seed))
            }
            DatasetId::Cnr => {
                let n = ((325_557.0 * scale) as usize).max(512);
                BenchInput::Graph(web(n, 8, seed))
            }
            DatasetId::RoadNy => {
                let n = ((264_346.0 * scale) as usize).max(256);
                let w = (n as f64).sqrt() as usize;
                BenchInput::Graph(road(w.max(8), (n / w.max(8)).max(8), seed))
            }
            DatasetId::Rand3 => {
                let vars = ((10_000.0 * scale) as usize).max(64);
                let clauses = vars * 42 / 10;
                BenchInput::Sat(random_ksat(vars, clauses, 3, seed))
            }
            DatasetId::Sat5 => {
                // ~117,296 literals at k=5 → ~23,460 clauses over ~5,600 vars.
                let clauses = ((23_460.0 * scale) as usize).max(64);
                let vars = (clauses / 4).max(32);
                BenchInput::Sat(random_ksat(vars, clauses, 5, seed))
            }
            DatasetId::T0032C16 => {
                let lines = ((20_000.0 * scale) as usize).max(64);
                BenchInput::Bezier(bezier_lines(lines, 32, 16.0, seed))
            }
            DatasetId::T2048C64 => {
                let lines = ((20_000.0 * scale) as usize).max(64);
                BenchInput::Bezier(bezier_lines(lines, 2048, 64.0, seed))
            }
        }
    }
}

/// The benchmark → datasets mapping of Table I.
pub fn datasets_for(benchmark: &str) -> Vec<DatasetId> {
    match benchmark {
        "BFS" | "MSTF" | "MSTV" | "SSSP" | "TC" => vec![DatasetId::Kron, DatasetId::Cnr],
        "BT" => vec![DatasetId::T0032C16, DatasetId::T2048C64],
        "SP" => vec![DatasetId::Rand3, DatasetId::Sat5],
        other => panic!("unknown benchmark `{other}`"),
    }
}

/// Summary statistics for Table I output.
pub fn describe(input: &BenchInput) -> String {
    match input {
        BenchInput::Graph(g) => format!(
            "{} vertices, {} edges, avg degree {:.1}, max degree {}",
            g.num_vertices,
            g.num_edges(),
            g.avg_degree(),
            g.max_degree()
        ),
        BenchInput::Sat(f) => format!(
            "{} variables, {} clauses, {} literals, max var degree {}",
            f.num_vars,
            f.num_clauses(),
            f.num_lits(),
            f.max_var_degree()
        ),
        BenchInput::Bezier(b) => format!(
            "{} lines, max tessellation {}, curvature scale {}",
            b.num_lines(),
            b.max_tess,
            b.curvature_scale
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_instantiates_at_small_scale() {
        for id in [
            DatasetId::Kron,
            DatasetId::Cnr,
            DatasetId::RoadNy,
            DatasetId::Rand3,
            DatasetId::Sat5,
            DatasetId::T0032C16,
            DatasetId::T2048C64,
        ] {
            let input = id.instantiate(0.01, 42);
            let desc = describe(&input);
            assert!(!desc.is_empty(), "{}: {desc}", id.name());
        }
    }

    #[test]
    fn table1_mapping_is_complete() {
        for b in ["BFS", "BT", "MSTF", "MSTV", "SP", "SSSP", "TC"] {
            assert_eq!(datasets_for(b).len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_panics() {
        DatasetId::Kron.instantiate(0.0, 1);
    }

    #[test]
    fn road_stays_low_degree_at_scale() {
        let BenchInput::Graph(g) = DatasetId::RoadNy.instantiate(0.02, 7) else {
            panic!("road is a graph");
        };
        assert!(g.max_degree() <= 8);
    }
}
