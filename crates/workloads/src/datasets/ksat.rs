//! Random k-SAT formula generator (substituting for RAND-3 and the SAT
//! Competition 2014 "5-SAT" instance used by Survey Propagation).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A k-SAT formula in CSR-like form: clauses over variables, plus the
/// transposed variable→occurrence view the SP benchmark's second kernel
/// needs.
#[derive(Debug, Clone, PartialEq)]
pub struct KSatFormula {
    /// Number of boolean variables.
    pub num_vars: usize,
    /// Clause offsets into `lits` (`num_clauses + 1` entries).
    pub clause_offsets: Vec<i64>,
    /// Literals: variable index, with sign in a parallel array.
    pub lits: Vec<i64>,
    /// Signs parallel to `lits` (+1 positive, -1 negated).
    pub signs: Vec<i64>,
    /// Variable offsets into `occ_clauses` (`num_vars + 1` entries).
    pub var_offsets: Vec<i64>,
    /// For each variable occurrence, the clause it appears in.
    pub occ_clauses: Vec<i64>,
}

impl KSatFormula {
    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clause_offsets.len() - 1
    }

    /// Total number of literals.
    pub fn num_lits(&self) -> usize {
        self.lits.len()
    }

    /// Occurrences of variable `v` (clause indices).
    pub fn occurrences(&self, v: usize) -> &[i64] {
        &self.occ_clauses[self.var_offsets[v] as usize..self.var_offsets[v + 1] as usize]
    }

    /// Maximum occurrences of any variable.
    pub fn max_var_degree(&self) -> usize {
        (0..self.num_vars)
            .map(|v| self.occurrences(v).len())
            .max()
            .unwrap_or(0)
    }
}

/// Generates a uniform random k-SAT formula.
///
/// Each clause draws `k` distinct variables uniformly; signs are fair
/// coins. Deterministic per seed.
///
/// # Panics
///
/// Panics if `k > num_vars` or `k == 0`.
pub fn random_ksat(num_vars: usize, num_clauses: usize, k: usize, seed: u64) -> KSatFormula {
    assert!(k > 0 && k <= num_vars, "k must be in 1..=num_vars");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut clause_offsets = Vec::with_capacity(num_clauses + 1);
    let mut lits = Vec::with_capacity(num_clauses * k);
    let mut signs = Vec::with_capacity(num_clauses * k);
    let mut var_occ: Vec<Vec<i64>> = vec![Vec::new(); num_vars];
    clause_offsets.push(0);
    for c in 0..num_clauses {
        let mut vars = Vec::with_capacity(k);
        while vars.len() < k {
            let v = rng.gen_range(0..num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        for v in vars {
            lits.push(v as i64);
            signs.push(if rng.gen_bool(0.5) { 1 } else { -1 });
            var_occ[v].push(c as i64);
        }
        clause_offsets.push(lits.len() as i64);
    }
    let mut var_offsets = Vec::with_capacity(num_vars + 1);
    let mut occ_clauses = Vec::with_capacity(lits.len());
    var_offsets.push(0);
    for occ in &var_occ {
        occ_clauses.extend_from_slice(occ);
        var_offsets.push(occ_clauses.len() as i64);
    }
    KSatFormula {
        num_vars,
        clause_offsets,
        lits,
        signs,
        var_offsets,
        occ_clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_shape() {
        let f = random_ksat(100, 420, 3, 1);
        assert_eq!(f.num_clauses(), 420);
        assert_eq!(f.num_lits(), 420 * 3);
        assert_eq!(f.var_offsets.len(), 101);
        assert_eq!(f.occ_clauses.len(), 420 * 3);
    }

    #[test]
    fn clauses_have_distinct_vars() {
        let f = random_ksat(50, 100, 5, 2);
        for c in 0..f.num_clauses() {
            let s = f.clause_offsets[c] as usize;
            let e = f.clause_offsets[c + 1] as usize;
            let mut vars: Vec<i64> = f.lits[s..e].to_vec();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 5);
        }
    }

    #[test]
    fn transpose_is_consistent() {
        let f = random_ksat(30, 60, 3, 3);
        for v in 0..f.num_vars {
            for &c in f.occurrences(v) {
                let s = f.clause_offsets[c as usize] as usize;
                let e = f.clause_offsets[c as usize + 1] as usize;
                assert!(f.lits[s..e].contains(&(v as i64)));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_ksat(20, 40, 3, 9), random_ksat(20, 40, 3, 9));
        assert_ne!(random_ksat(20, 40, 3, 9), random_ksat(20, 40, 3, 10));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn oversized_k_panics() {
        random_ksat(2, 5, 3, 0);
    }
}
