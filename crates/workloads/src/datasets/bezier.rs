//! Bézier line generator for the BT (Bezier Tessellation) benchmark
//! (CUDA samples "BezierLineCDP" flavour).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A batch of quadratic Bézier lines.
///
/// Each line has three control points; the tessellation kernel computes a
/// curvature-dependent number of sample points per line, capped at
/// `max_tess`. The paper's datasets are `T0032-C16` (max tessellation 32,
/// curvature 16) and `T2048-C64` (max 2048, curvature 64), both with
/// 20,000 lines.
#[derive(Debug, Clone, PartialEq)]
pub struct BezierLines {
    /// Control points, 6 floats per line: `x0 y0 x1 y1 x2 y2`.
    pub control_points: Vec<f64>,
    /// Maximum tessellation points per line.
    pub max_tess: u32,
    /// Curvature multiplier (higher ⇒ more tessellation per line).
    pub curvature_scale: f64,
}

impl BezierLines {
    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.control_points.len() / 6
    }

    /// Host-side reference of the curvature measure the kernel computes:
    /// the distance from the middle control point to the chord midpoint.
    pub fn curvature(&self, line: usize) -> f64 {
        let p = &self.control_points[line * 6..line * 6 + 6];
        let mx = (p[0] + p[4]) / 2.0;
        let my = (p[1] + p[5]) / 2.0;
        let dx = p[2] - mx;
        let dy = p[3] - my;
        (dx * dx + dy * dy).sqrt()
    }

    /// Host-side reference of the per-line tessellation count (must match
    /// the kernel's computation).
    pub fn tess_count(&self, line: usize) -> i64 {
        let t = (self.curvature(line) * self.curvature_scale) as i64;
        t.clamp(2, self.max_tess as i64)
    }
}

/// Generates `num_lines` random quadratic Bézier lines.
///
/// Control points are drawn in the unit square with the middle point
/// displaced to spread curvature over a wide range, so tessellation counts
/// (child grid sizes) are irregular like the benchmark expects.
pub fn bezier_lines(
    num_lines: usize,
    max_tess: u32,
    curvature_scale: f64,
    seed: u64,
) -> BezierLines {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut control_points = Vec::with_capacity(num_lines * 6);
    for _ in 0..num_lines {
        let x0: f64 = rng.gen();
        let y0: f64 = rng.gen();
        let x2: f64 = rng.gen();
        let y2: f64 = rng.gen();
        // Mid point displaced from the chord by a heavy-tailed offset.
        let t: f64 = rng.gen();
        let bulge = t * t * t * 2.0;
        let x1 = (x0 + x2) / 2.0 + rng.gen_range(-1.0..1.0) * bulge;
        let y1 = (y0 + y2) / 2.0 + rng.gen_range(-1.0..1.0) * bulge;
        control_points.extend_from_slice(&[x0, y0, x1, y1, x2, y2]);
    }
    BezierLines {
        control_points,
        max_tess,
        curvature_scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_lines() {
        let b = bezier_lines(100, 32, 16.0, 1);
        assert_eq!(b.num_lines(), 100);
        assert_eq!(b.control_points.len(), 600);
    }

    #[test]
    fn tess_counts_are_clamped_and_irregular() {
        let b = bezier_lines(500, 32, 16.0, 2);
        let counts: Vec<i64> = (0..b.num_lines()).map(|l| b.tess_count(l)).collect();
        assert!(counts.iter().all(|&c| (2..=32).contains(&c)));
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > min, "counts should vary: {min}..{max}");
    }

    #[test]
    fn curvature_is_nonnegative() {
        let b = bezier_lines(50, 2048, 64.0, 3);
        for l in 0..b.num_lines() {
            assert!(b.curvature(l) >= 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(bezier_lines(10, 32, 16.0, 7), bezier_lines(10, 32, 16.0, 7));
    }
}
