//! Synthetic graph generators substituting for the paper's datasets.
//!
//! | paper dataset | generator | preserved property |
//! |---|---|---|
//! | KRON (kron_g500-simple-logn16) | [`rmat`] R-MAT | heavy-tailed degree distribution (few huge child grids, many tiny ones) |
//! | CNR (cnr-2000 web crawl) | [`web`] preferential attachment | power-law in/out degrees with locality |
//! | USA-road-d.NY | [`road`] perturbed grid lattice | average degree ≈ 3, maximum degree ≤ 8 (uniformly low nested parallelism, paper Section VIII-D) |
//!
//! All generators are deterministic for a given seed.

use crate::datasets::csr::CsrGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT generator (Graph500 flavour, substituting for KRON).
///
/// `scale` gives `2^scale` vertices; `edge_factor` edges are drawn per
/// vertex with partition probabilities `(a, b, c, d) = (0.57, 0.19, 0.19,
/// 0.05)`, then the graph is symmetrized ("-simple" variants of the
/// Graph500 graphs are undirected with dedup).
pub fn rmat(scale: u32, edge_factor: u32, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let m = n * edge_factor as usize;
    let mut edge_list = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        edge_list.push((u as u32, v as u32));
    }
    CsrGraph::from_edges(n, &edge_list).symmetrized()
}

/// Power-law web-like graph (substituting for cnr-2000).
///
/// Uses a configuration-model-style construction: link targets follow a
/// Zipf-like rank distribution, producing the few very large hubs real web
/// crawls have (cnr-2000's maximum degree is in the tens of thousands at
/// 325k vertices), plus a local-link component; symmetrized to match the
/// benchmarks' undirected use.
pub fn web(num_vertices: usize, out_degree: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edge_list: Vec<(u32, u32)> = Vec::with_capacity(num_vertices * out_degree);
    for v in 0..num_vertices {
        for _ in 0..out_degree {
            let target = if rng.gen_bool(0.3) && v > 0 {
                // Local link: a nearby page (sites link internally).
                let lo = v.saturating_sub(64);
                rng.gen_range(lo..v) as u32
            } else {
                // Hub link: Zipf-like rank sampling. u^4 concentrates mass
                // on low ranks, giving max degree ≈ 5% of the vertex count.
                let u: f64 = rng.gen();
                ((num_vertices as f64 * u.powi(4)) as usize).min(num_vertices - 1) as u32
            };
            edge_list.push((v as u32, target));
        }
    }
    CsrGraph::from_edges(num_vertices, &edge_list).symmetrized()
}

/// Road-network-like graph (substituting for USA-road-d.NY).
///
/// A `w × h` grid lattice with a fraction of diagonal shortcuts and random
/// deletions: average degree ≈ 3, maximum degree ≤ 8 — the uniformly low
/// nested parallelism of Section VIII-D.
pub fn road(width: usize, height: usize, seed: u64) -> CsrGraph {
    let n = width * height;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edge_list = Vec::with_capacity(n * 3);
    let idx = |x: usize, y: usize| (y * width + x) as u32;
    for y in 0..height {
        for x in 0..width {
            let v = idx(x, y);
            // Grid edges, with ~20% deleted to mimic irregular road nets.
            if x + 1 < width && !rng.gen_bool(0.2) {
                edge_list.push((v, idx(x + 1, y)));
            }
            if y + 1 < height && !rng.gen_bool(0.2) {
                edge_list.push((v, idx(x, y + 1)));
            }
            // Occasional diagonal (ramps, bridges).
            if x + 1 < width && y + 1 < height && rng.gen_bool(0.05) {
                edge_list.push((v, idx(x + 1, y + 1)));
            }
        }
    }
    CsrGraph::from_edges(n, &edge_list).symmetrized()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_heavy_tailed() {
        let g = rmat(10, 8, 42);
        assert_eq!(g.num_vertices, 1024);
        assert!(g.num_edges() > 4000, "edges: {}", g.num_edges());
        // Heavy tail: max degree far above average.
        assert!(
            g.max_degree() as f64 > 8.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn rmat_is_deterministic() {
        assert_eq!(rmat(8, 4, 7), rmat(8, 4, 7));
        assert_ne!(rmat(8, 4, 7), rmat(8, 4, 8));
    }

    #[test]
    fn web_is_power_law_ish() {
        let g = web(2000, 8, 1);
        assert!(g.avg_degree() > 6.0);
        assert!(g.max_degree() > 50, "hub degree: {}", g.max_degree());
    }

    #[test]
    fn road_has_low_uniform_degree() {
        let g = road(50, 40, 3);
        assert_eq!(g.num_vertices, 2000);
        let avg = g.avg_degree();
        assert!((2.0..4.5).contains(&avg), "avg degree: {avg}");
        assert!(g.max_degree() <= 8, "max degree: {}", g.max_degree());
    }

    #[test]
    fn generators_have_no_self_loops() {
        for g in [rmat(8, 4, 9), web(500, 6, 9), road(20, 20, 9)] {
            for v in 0..g.num_vertices {
                assert!(!g.neighbours(v).contains(&(v as i64)));
            }
        }
    }
}
