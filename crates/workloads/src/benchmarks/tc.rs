//! TC — triangle counting (collaborative CPU+GPU algorithms paper flavour).
//!
//! Parent thread per vertex; child thread per neighbour `u > v` counting
//! common neighbours `w > u` by binary search in `N(u)` (adjacency lists
//! are sorted). Each triangle `v < u < w` is counted exactly once.

use super::{upload_graph, BenchInput, BenchOutput, Benchmark};
use dp_core::{Executor, Result};
use dp_vm::Value;

/// The TC benchmark.
pub struct Tc;

const CDP: &str = r#"
__global__ void tc_child(int* offsets, int* edges, long long* total, int v, int edgeBegin, int degV) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < degV) {
        int u = edges[edgeBegin + i];
        if (u > v) {
            long long local = 0;
            int ve = edgeBegin + degV;
            for (int j = edgeBegin; j < ve; ++j) {
                int w = edges[j];
                if (w > u) {
                    int lo = offsets[u];
                    int hi = offsets[u + 1] - 1;
                    while (lo <= hi) {
                        int mid = (lo + hi) / 2;
                        int x = edges[mid];
                        if (x == w) {
                            local = local + 1;
                            lo = hi + 1;
                        } else {
                            if (x < w) {
                                lo = mid + 1;
                            } else {
                                hi = mid - 1;
                            }
                        }
                    }
                }
            }
            if (local > 0) {
                atomicAdd(&total[0], local);
            }
        }
    }
}

__global__ void tc_parent(int* offsets, int* edges, long long* total, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        if (count > 1) {
            tc_child<<<(count + 127) / 128, 128>>>(offsets, edges, total, v, begin, count);
        }
    }
}
"#;

const NO_CDP: &str = r#"
__global__ void tc_parent(int* offsets, int* edges, long long* total, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        for (int i = 0; i < count; ++i) {
            int u = edges[begin + i];
            if (u > v) {
                long long local = 0;
                int ve = begin + count;
                for (int j = begin; j < ve; ++j) {
                    int w = edges[j];
                    if (w > u) {
                        int lo = offsets[u];
                        int hi = offsets[u + 1] - 1;
                        while (lo <= hi) {
                            int mid = (lo + hi) / 2;
                            int x = edges[mid];
                            if (x == w) {
                                local = local + 1;
                                lo = hi + 1;
                            } else {
                                if (x < w) {
                                    lo = mid + 1;
                                } else {
                                    hi = mid - 1;
                                }
                            }
                        }
                    }
                }
                if (local > 0) {
                    atomicAdd(&total[0], local);
                }
            }
        }
    }
}
"#;

impl Benchmark for Tc {
    fn name(&self) -> &'static str {
        "TC"
    }

    fn cdp_source(&self) -> &'static str {
        CDP
    }

    fn no_cdp_source(&self) -> &'static str {
        NO_CDP
    }

    fn run(&self, exec: &mut Executor, input: &BenchInput) -> Result<BenchOutput> {
        let g = input.graph();
        let n = g.num_vertices;
        let (offsets, edges, _) = upload_graph(exec, g);
        let total = exec.alloc_i64s(&[0]);

        let grid = (n as i64 + 255) / 256;
        exec.launch(
            "tc_parent",
            grid,
            256,
            &[
                Value::Int(offsets),
                Value::Int(edges),
                Value::Int(total),
                Value::Int(n as i64),
            ],
        )?;
        exec.sync()?;

        Ok(BenchOutput {
            ints: vec![exec.read_i64s(total, 1)?[0]],
            floats: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{run_variant, Variant};
    use crate::datasets::csr::CsrGraph;
    use crate::datasets::graphs::rmat;
    use dp_core::OptConfig;

    fn reference_triangles(g: &CsrGraph) -> i64 {
        let mut count = 0;
        for v in 0..g.num_vertices {
            for &u in g.neighbours(v) {
                if u <= v as i64 {
                    continue;
                }
                for &w in g.neighbours(v) {
                    if w > u && g.neighbours(u as usize).binary_search(&w).is_ok() {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn counts_known_triangle() {
        // K3 plus a pendant vertex: exactly one triangle.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).symmetrized();
        let input = BenchInput::Graph(g);
        let run = run_variant(&Tc, Variant::Cdp(OptConfig::none()), &input).unwrap();
        assert_eq!(run.output.ints, vec![1]);
    }

    #[test]
    fn matches_host_reference_on_rmat() {
        let g = rmat(6, 6, 61);
        let expected = reference_triangles(&g);
        let input = BenchInput::Graph(g);
        let cdp = run_variant(&Tc, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let no_cdp = run_variant(&Tc, Variant::NoCdp, &input).unwrap();
        assert_eq!(cdp.output.ints, vec![expected]);
        assert_eq!(no_cdp.output.ints, vec![expected]);
        assert!(expected > 0, "rmat graph should contain triangles");
    }
}
