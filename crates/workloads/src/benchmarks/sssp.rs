//! SSSP — single-source shortest paths (LonestarGPU flavour).
//!
//! Bellman-Ford with a worklist: each round relaxes the out-edges of every
//! frontier vertex (child grid per vertex under CDP), using `atomicMin` on
//! distances and a de-duplication flag array for the next frontier.

use super::{upload_graph, BenchInput, BenchOutput, Benchmark};
use dp_core::{Executor, Result};
use dp_vm::Value;

/// The SSSP benchmark.
pub struct Sssp;

/// "Infinite" distance (fits comfortably in the VM's i64 words).
pub const INF: i64 = 1 << 40;

const CDP: &str = r#"
__global__ void sssp_child(int* edges, int* weights, int* dist, int* inNext, int* frontierNext, int* nextSize, int srcDist, int edgeBegin, int count) {
    int e = blockIdx.x * blockDim.x + threadIdx.x;
    if (e < count) {
        int dst = edges[edgeBegin + e];
        int nd = srcDist + weights[edgeBegin + e];
        int old = atomicMin(&dist[dst], nd);
        if (nd < old) {
            if (atomicExch(&inNext[dst], 1) == 0) {
                int pos = atomicAdd(&nextSize[0], 1);
                frontierNext[pos] = dst;
            }
        }
    }
}

__global__ void sssp_parent(int* offsets, int* edges, int* weights, int* dist, int* inNext, int* frontier, int* frontierSize, int* frontierNext, int* nextSize) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < frontierSize[0]) {
        int v = frontier[i];
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        int srcDist = dist[v];
        if (count > 0) {
            sssp_child<<<(count + 127) / 128, 128>>>(edges, weights, dist, inNext, frontierNext, nextSize, srcDist, begin, count);
        }
    }
}
"#;

const NO_CDP: &str = r#"
__global__ void sssp_parent(int* offsets, int* edges, int* weights, int* dist, int* inNext, int* frontier, int* frontierSize, int* frontierNext, int* nextSize) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < frontierSize[0]) {
        int v = frontier[i];
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        int srcDist = dist[v];
        for (int e = 0; e < count; ++e) {
            int dst = edges[begin + e];
            int nd = srcDist + weights[begin + e];
            int old = atomicMin(&dist[dst], nd);
            if (nd < old) {
                if (atomicExch(&inNext[dst], 1) == 0) {
                    int pos = atomicAdd(&nextSize[0], 1);
                    frontierNext[pos] = dst;
                }
            }
        }
    }
}
"#;

impl Benchmark for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn cdp_source(&self) -> &'static str {
        CDP
    }

    fn no_cdp_source(&self) -> &'static str {
        NO_CDP
    }

    fn run(&self, exec: &mut Executor, input: &BenchInput) -> Result<BenchOutput> {
        let g = input.graph();
        let n = g.num_vertices;
        let source = g.max_degree_vertex() as i64;
        let (offsets, edges, weights) = upload_graph(exec, g);

        let mut dist = vec![INF; n];
        dist[source as usize] = 0;
        let dist_ptr = exec.alloc_i64s(&dist);
        let in_next = exec.alloc(n.max(1));
        let mut frontier_a = exec.alloc(n.max(1));
        let mut frontier_b = exec.alloc(n.max(1));
        let mut size_a = exec.alloc_i64s(&[1]);
        let mut size_b = exec.alloc_i64s(&[0]);
        exec.write_i64(frontier_a, source)?;

        let mut rounds = 0usize;
        loop {
            let frontier_size = exec.read_i64s(size_a, 1)?[0];
            if frontier_size == 0 || rounds > 4 * n + 16 {
                break;
            }
            let grid = (frontier_size + 255) / 256;
            exec.launch(
                "sssp_parent",
                grid,
                256,
                &[
                    Value::Int(offsets),
                    Value::Int(edges),
                    Value::Int(weights),
                    Value::Int(dist_ptr),
                    Value::Int(in_next),
                    Value::Int(frontier_a),
                    Value::Int(size_a),
                    Value::Int(frontier_b),
                    Value::Int(size_b),
                ],
            )?;
            exec.sync()?;
            std::mem::swap(&mut frontier_a, &mut frontier_b);
            std::mem::swap(&mut size_a, &mut size_b);
            exec.write_i64(size_b, 0)?;
            exec.fill_i64(in_next, n.max(1), 0)?;
            rounds += 1;
        }

        Ok(BenchOutput {
            ints: exec.read_i64s(dist_ptr, n)?,
            floats: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{run_variant, Variant};
    use crate::datasets::graphs::{rmat, road};
    use dp_core::OptConfig;

    fn reference_sssp(g: &crate::datasets::csr::CsrGraph, src: usize) -> Vec<i64> {
        // Bellman-Ford (graphs are small in tests).
        let mut dist = vec![INF; g.num_vertices];
        dist[src] = 0;
        loop {
            let mut changed = false;
            for v in 0..g.num_vertices {
                if dist[v] == INF {
                    continue;
                }
                let begin = g.offsets[v] as usize;
                for (i, &u) in g.neighbours(v).iter().enumerate() {
                    let nd = dist[v] + g.weights[begin + i];
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        changed = true;
                    }
                }
            }
            if !changed {
                return dist;
            }
        }
    }

    #[test]
    fn cdp_matches_host_reference() {
        let g = rmat(6, 4, 21);
        let input = BenchInput::Graph(g.clone());
        let run = run_variant(&Sssp, Variant::Cdp(OptConfig::none()), &input).unwrap();
        assert_eq!(run.output.ints, reference_sssp(&g, g.max_degree_vertex()));
    }

    #[test]
    fn road_graph_matches_reference() {
        let g = road(12, 10, 5);
        let input = BenchInput::Graph(g.clone());
        let run = run_variant(&Sssp, Variant::NoCdp, &input).unwrap();
        assert_eq!(run.output.ints, reference_sssp(&g, g.max_degree_vertex()));
    }
}
