//! BFS — breadth-first search (SHOC flavour).
//!
//! Frontier-based: one host launch per level; each frontier vertex's parent
//! thread discovers its neighbours, either through a dynamically launched
//! child grid (CDP) or a serial loop (No CDP). Nested parallelism per
//! parent thread equals the vertex out-degree, which is exactly the
//! irregular quantity the paper's optimizations target.

use super::{upload_graph, BenchInput, BenchOutput, Benchmark};
use dp_core::{Executor, Result};
use dp_vm::Value;

/// The BFS benchmark.
pub struct Bfs;

const CDP: &str = r#"
__global__ void bfs_child(int* edges, int* levels, int* frontierNext, int* nextSize, int level, int edgeBegin, int count) {
    int e = blockIdx.x * blockDim.x + threadIdx.x;
    if (e < count) {
        int dst = edges[edgeBegin + e];
        if (levels[dst] == -1) {
            int old = atomicCAS(&levels[dst], -1, level);
            if (old == -1) {
                int pos = atomicAdd(&nextSize[0], 1);
                frontierNext[pos] = dst;
            }
        }
    }
}

__global__ void bfs_parent(int* offsets, int* edges, int* levels, int* frontier, int* frontierSize, int* frontierNext, int* nextSize, int level) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < frontierSize[0]) {
        int v = frontier[i];
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        if (count > 0) {
            bfs_child<<<(count + 127) / 128, 128>>>(edges, levels, frontierNext, nextSize, level, begin, count);
        }
    }
}
"#;

const NO_CDP: &str = r#"
__global__ void bfs_parent(int* offsets, int* edges, int* levels, int* frontier, int* frontierSize, int* frontierNext, int* nextSize, int level) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < frontierSize[0]) {
        int v = frontier[i];
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        for (int e = 0; e < count; ++e) {
            int dst = edges[begin + e];
            if (levels[dst] == -1) {
                int old = atomicCAS(&levels[dst], -1, level);
                if (old == -1) {
                    int pos = atomicAdd(&nextSize[0], 1);
                    frontierNext[pos] = dst;
                }
            }
        }
    }
}
"#;

impl Benchmark for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn cdp_source(&self) -> &'static str {
        CDP
    }

    fn no_cdp_source(&self) -> &'static str {
        NO_CDP
    }

    fn run(&self, exec: &mut Executor, input: &BenchInput) -> Result<BenchOutput> {
        let g = input.graph();
        let n = g.num_vertices;
        let source = g.max_degree_vertex() as i64;
        let (offsets, edges, _) = upload_graph(exec, g);

        let mut levels = vec![-1i64; n];
        levels[source as usize] = 0;
        let levels_ptr = exec.alloc_i64s(&levels);
        let mut frontier_a = exec.alloc(n.max(1));
        let mut frontier_b = exec.alloc(n.max(1));
        let mut size_a = exec.alloc_i64s(&[1]);
        let mut size_b = exec.alloc_i64s(&[0]);
        exec.write_i64(frontier_a, source)?;

        let mut level = 1i64;
        loop {
            let frontier_size = exec.read_i64s(size_a, 1)?[0];
            if frontier_size == 0 || level > n as i64 {
                break;
            }
            let grid = (frontier_size + 255) / 256;
            exec.launch(
                "bfs_parent",
                grid,
                256,
                &[
                    Value::Int(offsets),
                    Value::Int(edges),
                    Value::Int(levels_ptr),
                    Value::Int(frontier_a),
                    Value::Int(size_a),
                    Value::Int(frontier_b),
                    Value::Int(size_b),
                    Value::Int(level),
                ],
            )?;
            exec.sync()?;
            std::mem::swap(&mut frontier_a, &mut frontier_b);
            std::mem::swap(&mut size_a, &mut size_b);
            exec.write_i64(size_b, 0)?;
            level += 1;
        }

        Ok(BenchOutput {
            ints: exec.read_i64s(levels_ptr, n)?,
            floats: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{run_variant, Variant};
    use crate::datasets::graphs::rmat;
    use dp_core::OptConfig;

    fn reference_bfs(g: &crate::datasets::csr::CsrGraph, src: usize) -> Vec<i64> {
        let mut levels = vec![-1i64; g.num_vertices];
        levels[src] = 0;
        let mut frontier = vec![src];
        let mut level = 1;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in g.neighbours(v) {
                    if levels[u as usize] == -1 {
                        levels[u as usize] = level;
                        next.push(u as usize);
                    }
                }
            }
            frontier = next;
            level += 1;
        }
        levels
    }

    #[test]
    fn cdp_matches_host_reference() {
        let g = rmat(7, 4, 11);
        let input = BenchInput::Graph(g.clone());
        let run = run_variant(&Bfs, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let expected = reference_bfs(&g, g.max_degree_vertex());
        assert_eq!(run.output.ints, expected);
    }

    #[test]
    fn no_cdp_matches_cdp() {
        let g = rmat(6, 4, 12);
        let input = BenchInput::Graph(g);
        let cdp = run_variant(&Bfs, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let no_cdp = run_variant(&Bfs, Variant::NoCdp, &input).unwrap();
        assert_eq!(cdp.output, no_cdp.output);
        assert_eq!(no_cdp.report.stats.device_launches, 0);
        assert!(cdp.report.stats.device_launches > 0);
    }
}
