//! The seven benchmarks of the paper's evaluation (Table I), each with a
//! CDP source, a No-CDP source, and a shared host driver.
//!
//! | benchmark | nested parallelism | origin |
//! |---|---|---|
//! | [`bfs`]  | per frontier vertex → per neighbour | SHOC |
//! | [`bt`]   | per Bézier line → per tessellation point | CUDA samples |
//! | [`mstf`] | per vertex → per edge (Borůvka find) | LonestarGPU |
//! | [`mstv`] | per vertex → per edge (verify) | LonestarGPU |
//! | [`sp`]   | per clause/variable → per literal/occurrence | LonestarGPU |
//! | [`sssp`] | per frontier vertex → per neighbour | LonestarGPU |
//! | [`tc`]   | per vertex → per neighbour (intersection) | HPEC'18 |
//!
//! Both sources of a benchmark define the *same* kernel names and host
//! protocol, so one driver runs either; the CDP source is additionally the
//! input to the optimization passes.

pub mod bfs;
pub mod bt;
pub mod mstf;
pub mod mstv;
pub mod sp;
pub mod sssp;
pub mod tc;

use crate::datasets::bezier::BezierLines;
use crate::datasets::csr::CsrGraph;
use crate::datasets::ksat::KSatFormula;
use dp_core::{Compiler, Executor, OptConfig, Result, RunReport};

/// Input for one benchmark run.
#[derive(Debug, Clone)]
pub enum BenchInput {
    /// A CSR graph (BFS, SSSP, MSTF, MSTV, TC).
    Graph(CsrGraph),
    /// A k-SAT formula (SP).
    Sat(KSatFormula),
    /// Bézier lines (BT).
    Bezier(BezierLines),
}

impl BenchInput {
    /// The graph, if this input is one.
    ///
    /// # Panics
    ///
    /// Panics if the input is not a graph (driver/input mismatch is a bug).
    pub fn graph(&self) -> &CsrGraph {
        match self {
            BenchInput::Graph(g) => g,
            other => panic!("benchmark expected a graph input, got {other:?}"),
        }
    }

    /// The SAT formula, if this input is one.
    ///
    /// # Panics
    ///
    /// Panics if the input is not a formula.
    pub fn sat(&self) -> &KSatFormula {
        match self {
            BenchInput::Sat(f) => f,
            other => panic!("benchmark expected a SAT input, got {other:?}"),
        }
    }

    /// The Bézier lines, if this input is one.
    ///
    /// # Panics
    ///
    /// Panics if the input is not Bézier lines.
    pub fn bezier(&self) -> &BezierLines {
        match self {
            BenchInput::Bezier(b) => b,
            other => panic!("benchmark expected Bézier input, got {other:?}"),
        }
    }
}

/// Comparable output of a benchmark run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchOutput {
    /// Integer results (levels, distances, counts, …).
    pub ints: Vec<i64>,
    /// Float results (positions, marginals, …).
    pub floats: Vec<f64>,
}

impl BenchOutput {
    /// Whether two outputs agree, with a relative/absolute tolerance on the
    /// float part (atomic float reductions reassociate across variants).
    pub fn approx_eq(&self, other: &BenchOutput, tol: f64) -> bool {
        if self.ints != other.ints || self.floats.len() != other.floats.len() {
            return false;
        }
        self.floats
            .iter()
            .zip(&other.floats)
            .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

/// One of the paper's benchmarks.
pub trait Benchmark: Send + Sync {
    /// Short name as used in the paper ("BFS", "BT", …).
    fn name(&self) -> &'static str;
    /// CUDA-subset source using dynamic parallelism.
    fn cdp_source(&self) -> &'static str;
    /// CUDA-subset source with the nested work serialized in the parent.
    fn no_cdp_source(&self) -> &'static str;
    /// Host driver: uploads the input, runs the kernels to completion, and
    /// returns the comparable output.
    fn run(&self, exec: &mut Executor, input: &BenchInput) -> Result<BenchOutput>;
}

/// Which code version to run (paper Fig. 9 series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// The original non-CDP code.
    NoCdp,
    /// The CDP code, transformed with the given configuration
    /// (`OptConfig::none()` is plain CDP).
    Cdp(OptConfig),
}

impl Variant {
    /// Paper-style label.
    pub fn label(&self) -> String {
        match self {
            Variant::NoCdp => "No CDP".to_string(),
            Variant::Cdp(c) => c.label(),
        }
    }
}

/// Output and trace of one variant run.
#[derive(Debug, Clone)]
pub struct VariantRun {
    /// Functional output (for verification).
    pub output: BenchOutput,
    /// Trace + host events (for timing).
    pub report: RunReport,
}

/// Compiles and runs one benchmark variant on an input.
pub fn run_variant(
    bench: &dyn Benchmark,
    variant: Variant,
    input: &BenchInput,
) -> Result<VariantRun> {
    let (source, config) = match variant {
        Variant::NoCdp => (bench.no_cdp_source(), OptConfig::none()),
        Variant::Cdp(config) => (bench.cdp_source(), config),
    };
    let compiled = Compiler::new().config(config).compile(source)?;
    let mut exec = compiled.executor();
    let output = bench.run(&mut exec, input)?;
    Ok(VariantRun {
        output,
        report: exec.finish(),
    })
}

/// All seven benchmarks.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(bfs::Bfs),
        Box::new(bt::Bt),
        Box::new(mstf::Mstf),
        Box::new(mstv::Mstv),
        Box::new(sp::Sp),
        Box::new(sssp::Sssp),
        Box::new(tc::Tc),
    ]
}

/// Uploads a CSR graph, returning `(offsets, edges, weights)` pointers.
pub(crate) fn upload_graph(exec: &mut Executor, g: &CsrGraph) -> (i64, i64, i64) {
    let offsets = exec.alloc_i64s(&g.offsets);
    let edges = exec.alloc_i64s(&g.edges);
    let weights = exec.alloc_i64s(&g.weights);
    (offsets, edges, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_comparison() {
        let a = BenchOutput {
            ints: vec![1, 2],
            floats: vec![1.0, 2.0],
        };
        let mut b = a.clone();
        assert!(a.approx_eq(&b, 1e-9));
        b.floats[0] += 1e-12;
        assert!(a.approx_eq(&b, 1e-9));
        b.floats[0] += 1.0;
        assert!(!a.approx_eq(&b, 1e-9));
        b = a.clone();
        b.ints[0] = 9;
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::NoCdp.label(), "No CDP");
        assert_eq!(Variant::Cdp(OptConfig::none()).label(), "CDP");
        assert_eq!(Variant::Cdp(OptConfig::all()).label(), "CDP+T+C+A");
    }

    #[test]
    fn registry_has_seven_benchmarks() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["BFS", "BT", "MSTF", "MSTV", "SP", "SSSP", "TC"]);
    }

    #[test]
    fn all_sources_parse_and_compile() {
        for bench in all_benchmarks() {
            for (label, src) in [
                ("cdp", bench.cdp_source()),
                ("no-cdp", bench.no_cdp_source()),
            ] {
                let program = dp_frontend::parse(src)
                    .unwrap_or_else(|e| panic!("{} {label}: {}", bench.name(), e.render(src)));
                dp_vm::lower::compile_program(&program)
                    .unwrap_or_else(|e| panic!("{} {label}: {e}", bench.name()));
            }
        }
    }
}
