//! MSTF — the *find* kernel of Borůvka's minimum-spanning-tree algorithm
//! (LonestarGPU flavour).
//!
//! Each round, every vertex scans its incident edges (child grid per vertex
//! under CDP) and `atomicMin`s an encoded `(weight, edge-id)` pair into its
//! component's minimum-outgoing-edge cell. The host then contracts
//! components (union-find) and repeats for a few rounds.

use super::{upload_graph, BenchInput, BenchOutput, Benchmark};
use dp_core::{Executor, Result};
use dp_vm::Value;

/// The MSTF benchmark.
pub struct Mstf;

/// Encoding stride: `enc = weight * STRIDE + edge_index`.
const STRIDE: i64 = 1 << 32;
/// Sentinel for "no outgoing edge found".
const NONE: i64 = i64::MAX / 2;
/// Borůvka rounds to run (each is one parent launch).
const ROUNDS: usize = 3;

const CDP: &str = r#"
__global__ void mstf_child(int* edges, int* weights, int* comp, long long* minEdge, int compV, int edgeBegin, int count) {
    int e = blockIdx.x * blockDim.x + threadIdx.x;
    if (e < count) {
        int dst = edges[edgeBegin + e];
        if (comp[dst] != compV) {
            long long enc = (long long)weights[edgeBegin + e] * 4294967296 + (long long)(edgeBegin + e);
            atomicMin(&minEdge[compV], enc);
        }
    }
}

__global__ void mstf_parent(int* offsets, int* edges, int* weights, int* comp, long long* minEdge, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        int compV = comp[v];
        if (count > 0) {
            mstf_child<<<(count + 127) / 128, 128>>>(edges, weights, comp, minEdge, compV, begin, count);
        }
    }
}
"#;

const NO_CDP: &str = r#"
__global__ void mstf_parent(int* offsets, int* edges, int* weights, int* comp, long long* minEdge, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        int compV = comp[v];
        for (int e = 0; e < count; ++e) {
            int dst = edges[begin + e];
            if (comp[dst] != compV) {
                long long enc = (long long)weights[begin + e] * 4294967296 + (long long)(begin + e);
                atomicMin(&minEdge[compV], enc);
            }
        }
    }
}
"#;

impl Benchmark for Mstf {
    fn name(&self) -> &'static str {
        "MSTF"
    }

    fn cdp_source(&self) -> &'static str {
        CDP
    }

    fn no_cdp_source(&self) -> &'static str {
        NO_CDP
    }

    fn run(&self, exec: &mut Executor, input: &BenchInput) -> Result<BenchOutput> {
        let g = input.graph();
        let n = g.num_vertices;
        let (offsets, edges, weights) = upload_graph(exec, g);

        let mut comp: Vec<i64> = (0..n as i64).collect();
        let comp_ptr = exec.alloc_i64s(&comp);
        let min_edge = exec.alloc(n.max(1));

        let mut mst_weight = 0i64;
        let mut mst_edges = 0i64;
        for _ in 0..ROUNDS {
            exec.fill_i64(min_edge, n.max(1), NONE)?;
            let grid = (n as i64 + 255) / 256;
            exec.launch(
                "mstf_parent",
                grid,
                256,
                &[
                    Value::Int(offsets),
                    Value::Int(edges),
                    Value::Int(weights),
                    Value::Int(comp_ptr),
                    Value::Int(min_edge),
                    Value::Int(n as i64),
                ],
            )?;
            exec.sync()?;

            // Host-side contraction: union components along their minimum
            // outgoing edges (deterministic given the atomicMin results).
            let found = exec.read_i64s(min_edge, n)?;
            let mut changed = false;
            for c in 0..n {
                let enc = found[c];
                if enc == NONE || comp[c] != c as i64 {
                    continue;
                }
                let edge_idx = (enc % STRIDE) as usize;
                let weight = enc / STRIDE;
                let dst = g.edges[edge_idx] as usize;
                let (mut a, mut b) = (c as i64, comp[dst]);
                // Resolve roots (comp is kept path-compressed).
                while comp[a as usize] != a {
                    a = comp[a as usize];
                }
                while comp[b as usize] != b {
                    b = comp[b as usize];
                }
                if a != b {
                    let (lo, hi) = (a.min(b), a.max(b));
                    comp[hi as usize] = lo;
                    mst_weight += weight;
                    mst_edges += 1;
                    changed = true;
                }
            }
            // Path-compress and push back to the device.
            for v in 0..n {
                let mut r = v as i64;
                while comp[r as usize] != r {
                    r = comp[r as usize];
                }
                comp[v] = r;
            }
            for (v, &c) in comp.iter().enumerate() {
                exec.write_i64(comp_ptr + v as i64, c)?;
            }
            if !changed {
                break;
            }
        }

        let mut ints = comp;
        ints.push(mst_weight);
        ints.push(mst_edges);
        Ok(BenchOutput {
            ints,
            floats: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{run_variant, Variant};
    use crate::datasets::graphs::rmat;
    use dp_core::OptConfig;

    #[test]
    fn cdp_and_no_cdp_agree() {
        let g = rmat(6, 4, 31);
        let input = BenchInput::Graph(g);
        let cdp = run_variant(&Mstf, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let no_cdp = run_variant(&Mstf, Variant::NoCdp, &input).unwrap();
        assert_eq!(cdp.output, no_cdp.output);
    }

    #[test]
    fn components_merge_and_weight_accumulates() {
        let g = rmat(6, 6, 32);
        let input = BenchInput::Graph(g.clone());
        let run = run_variant(&Mstf, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let n = g.num_vertices;
        let mst_weight = run.output.ints[n];
        let mst_edges = run.output.ints[n + 1];
        assert!(mst_edges > 0, "some components must merge");
        assert!(mst_weight > 0);
        // After rounds, number of distinct components decreased.
        let comps: std::collections::HashSet<i64> = run.output.ints[..n].iter().copied().collect();
        assert!(comps.len() < n);
    }
}
