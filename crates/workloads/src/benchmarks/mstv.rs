//! MSTV — the *verify* kernel of the MST benchmark (LonestarGPU flavour).
//!
//! Given a component labelling, every vertex checks its incident edges
//! (child grid per vertex under CDP) and counts edges that cross
//! components, plus the total weight of crossing edges — the quantities the
//! original benchmark uses to validate a spanning-tree contraction step.

use super::{upload_graph, BenchInput, BenchOutput, Benchmark};
use dp_core::{Executor, Result};
use dp_vm::Value;

/// The MSTV benchmark.
pub struct Mstv;

const CDP: &str = r#"
__global__ void mstv_child(int* edges, int* weights, int* comp, long long* crossCount, long long* crossWeight, int compV, int edgeBegin, int count) {
    int e = blockIdx.x * blockDim.x + threadIdx.x;
    if (e < count) {
        int dst = edges[edgeBegin + e];
        if (comp[dst] != compV) {
            atomicAdd(&crossCount[0], 1);
            atomicAdd(&crossWeight[0], (long long)weights[edgeBegin + e]);
        }
    }
}

__global__ void mstv_parent(int* offsets, int* edges, int* weights, int* comp, long long* crossCount, long long* crossWeight, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        int compV = comp[v];
        if (count > 0) {
            mstv_child<<<(count + 127) / 128, 128>>>(edges, weights, comp, crossCount, crossWeight, compV, begin, count);
        }
    }
}
"#;

const NO_CDP: &str = r#"
__global__ void mstv_parent(int* offsets, int* edges, int* weights, int* comp, long long* crossCount, long long* crossWeight, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int begin = offsets[v];
        int count = offsets[v + 1] - begin;
        int compV = comp[v];
        for (int e = 0; e < count; ++e) {
            int dst = edges[begin + e];
            if (comp[dst] != compV) {
                atomicAdd(&crossCount[0], 1);
                atomicAdd(&crossWeight[0], (long long)weights[begin + e]);
            }
        }
    }
}
"#;

impl Benchmark for Mstv {
    fn name(&self) -> &'static str {
        "MSTV"
    }

    fn cdp_source(&self) -> &'static str {
        CDP
    }

    fn no_cdp_source(&self) -> &'static str {
        NO_CDP
    }

    fn run(&self, exec: &mut Executor, input: &BenchInput) -> Result<BenchOutput> {
        let g = input.graph();
        let n = g.num_vertices;
        let (offsets, edges, weights) = upload_graph(exec, g);

        // A mid-contraction labelling: connected-component labels coarsened
        // by grouping, so a nontrivial fraction of edges cross.
        let comp: Vec<i64> = (0..n as i64).map(|v| v / 16 * 16).collect();
        let comp_ptr = exec.alloc_i64s(&comp);
        let cross_count = exec.alloc_i64s(&[0]);
        let cross_weight = exec.alloc_i64s(&[0]);

        let grid = (n as i64 + 255) / 256;
        exec.launch(
            "mstv_parent",
            grid,
            256,
            &[
                Value::Int(offsets),
                Value::Int(edges),
                Value::Int(weights),
                Value::Int(comp_ptr),
                Value::Int(cross_count),
                Value::Int(cross_weight),
                Value::Int(n as i64),
            ],
        )?;
        exec.sync()?;

        Ok(BenchOutput {
            ints: vec![
                exec.read_i64s(cross_count, 1)?[0],
                exec.read_i64s(cross_weight, 1)?[0],
            ],
            floats: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{run_variant, Variant};
    use crate::datasets::graphs::rmat;
    use dp_core::OptConfig;

    #[test]
    fn counts_match_host_reference() {
        let g = rmat(6, 4, 41);
        let input = BenchInput::Graph(g.clone());
        let run = run_variant(&Mstv, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let mut expected_count = 0i64;
        let mut expected_weight = 0i64;
        for v in 0..g.num_vertices {
            let begin = g.offsets[v] as usize;
            for (i, &u) in g.neighbours(v).iter().enumerate() {
                let cv = (v as i64) / 16 * 16;
                let cu = u / 16 * 16;
                if cv != cu {
                    expected_count += 1;
                    expected_weight += g.weights[begin + i];
                }
            }
        }
        assert_eq!(run.output.ints, vec![expected_count, expected_weight]);
    }

    #[test]
    fn variants_agree() {
        let g = rmat(6, 4, 42);
        let input = BenchInput::Graph(g);
        let cdp = run_variant(&Mstv, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let no_cdp = run_variant(&Mstv, Variant::NoCdp, &input).unwrap();
        assert_eq!(cdp.output, no_cdp.output);
    }
}
