//! BT — Bézier tessellation (CUDA samples `BezierLineCDP` flavour).
//!
//! Parent thread per line: computes a curvature-dependent tessellation
//! count and launches a child grid with one thread per sample point. The
//! amount of nested parallelism per line varies with curvature — bounded by
//! the dataset's maximum tessellation (32 for T0032-C16, 2048 for
//! T2048-C64).

use super::{BenchInput, BenchOutput, Benchmark};
use dp_core::{Executor, Result};
use dp_vm::Value;

/// The BT benchmark.
pub struct Bt;

const CDP: &str = r#"
__global__ void bt_child(double* cps, double* out, int line, int nTess, int maxTess) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < nTess) {
        double t = (double)i / (double)(nTess - 1);
        double omt = 1.0 - t;
        double x0 = cps[line * 6];
        double y0 = cps[line * 6 + 1];
        double x1 = cps[line * 6 + 2];
        double y1 = cps[line * 6 + 3];
        double x2 = cps[line * 6 + 4];
        double y2 = cps[line * 6 + 5];
        double bx = omt * omt * x0 + 2.0 * omt * t * x1 + t * t * x2;
        double by = omt * omt * y0 + 2.0 * omt * t * y1 + t * t * y2;
        out[(line * maxTess + i) * 2] = bx;
        out[(line * maxTess + i) * 2 + 1] = by;
    }
}

__global__ void bt_parent(double* cps, double* out, int* nTessOut, int numLines, int maxTess, double curvScale) {
    int line = blockIdx.x * blockDim.x + threadIdx.x;
    if (line < numLines) {
        double x0 = cps[line * 6];
        double y0 = cps[line * 6 + 1];
        double x1 = cps[line * 6 + 2];
        double y1 = cps[line * 6 + 3];
        double x2 = cps[line * 6 + 4];
        double y2 = cps[line * 6 + 5];
        double mx = (x0 + x2) / 2.0;
        double my = (y0 + y2) / 2.0;
        double dx = x1 - mx;
        double dy = y1 - my;
        double curv = sqrt(dx * dx + dy * dy);
        int nTess = (int)(curv * curvScale);
        if (nTess < 2) {
            nTess = 2;
        }
        if (nTess > maxTess) {
            nTess = maxTess;
        }
        nTessOut[line] = nTess;
        bt_child<<<(nTess + 31) / 32, 32>>>(cps, out, line, nTess, maxTess);
    }
}
"#;

const NO_CDP: &str = r#"
__global__ void bt_parent(double* cps, double* out, int* nTessOut, int numLines, int maxTess, double curvScale) {
    int line = blockIdx.x * blockDim.x + threadIdx.x;
    if (line < numLines) {
        double x0 = cps[line * 6];
        double y0 = cps[line * 6 + 1];
        double x1 = cps[line * 6 + 2];
        double y1 = cps[line * 6 + 3];
        double x2 = cps[line * 6 + 4];
        double y2 = cps[line * 6 + 5];
        double mx = (x0 + x2) / 2.0;
        double my = (y0 + y2) / 2.0;
        double dx = x1 - mx;
        double dy = y1 - my;
        double curv = sqrt(dx * dx + dy * dy);
        int nTess = (int)(curv * curvScale);
        if (nTess < 2) {
            nTess = 2;
        }
        if (nTess > maxTess) {
            nTess = maxTess;
        }
        nTessOut[line] = nTess;
        for (int i = 0; i < nTess; ++i) {
            double t = (double)i / (double)(nTess - 1);
            double omt = 1.0 - t;
            double bx = omt * omt * x0 + 2.0 * omt * t * x1 + t * t * x2;
            double by = omt * omt * y0 + 2.0 * omt * t * y1 + t * t * y2;
            out[(line * maxTess + i) * 2] = bx;
            out[(line * maxTess + i) * 2 + 1] = by;
        }
    }
}
"#;

impl Benchmark for Bt {
    fn name(&self) -> &'static str {
        "BT"
    }

    fn cdp_source(&self) -> &'static str {
        CDP
    }

    fn no_cdp_source(&self) -> &'static str {
        NO_CDP
    }

    fn run(&self, exec: &mut Executor, input: &BenchInput) -> Result<BenchOutput> {
        let b = input.bezier();
        let num_lines = b.num_lines();
        let max_tess = b.max_tess as i64;

        let cps = exec.alloc_f64s(&b.control_points);
        let out = exec.alloc(num_lines * max_tess as usize * 2);
        let n_tess_out = exec.alloc(num_lines.max(1));

        let grid = (num_lines as i64 + 255) / 256;
        exec.launch(
            "bt_parent",
            grid,
            256,
            &[
                Value::Int(cps),
                Value::Int(out),
                Value::Int(n_tess_out),
                Value::Int(num_lines as i64),
                Value::Int(max_tess),
                Value::Float(b.curvature_scale),
            ],
        )?;
        exec.sync()?;

        // Compare tessellation counts exactly and sampled positions with
        // float tolerance; reading every position would dominate runtime,
        // so sample a strided subset plus a checksum.
        let n_tess = exec.read_i64s(n_tess_out, num_lines)?;
        let mut floats = Vec::new();
        let mut checksum = 0.0f64;
        for (line, &nt) in n_tess.iter().enumerate() {
            let base = out + (line as i64 * max_tess) * 2;
            let first = exec.read_f64s(base, 2)?;
            let last = exec.read_f64s(base + (nt - 1) * 2, 2)?;
            checksum += first[0] + first[1] + last[0] + last[1];
            if line % 97 == 0 {
                floats.extend_from_slice(&first);
                floats.extend_from_slice(&last);
            }
        }
        floats.push(checksum);
        Ok(BenchOutput {
            ints: n_tess,
            floats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{run_variant, Variant};
    use crate::datasets::bezier::bezier_lines;
    use dp_core::OptConfig;

    #[test]
    fn tessellation_counts_match_host_model() {
        let b = bezier_lines(50, 32, 16.0, 71);
        let expected: Vec<i64> = (0..b.num_lines()).map(|l| b.tess_count(l)).collect();
        let input = BenchInput::Bezier(b);
        let run = run_variant(&Bt, Variant::Cdp(OptConfig::none()), &input).unwrap();
        assert_eq!(run.output.ints, expected);
    }

    #[test]
    fn endpoints_interpolate_control_points() {
        let b = bezier_lines(10, 32, 16.0, 72);
        let cps = b.control_points.clone();
        let input = BenchInput::Bezier(b);
        let run = run_variant(&Bt, Variant::Cdp(OptConfig::none()), &input).unwrap();
        // First sampled line is line 0: first point = P0, last = P2.
        let f = &run.output.floats;
        assert!((f[0] - cps[0]).abs() < 1e-12);
        assert!((f[1] - cps[1]).abs() < 1e-12);
        assert!((f[2] - cps[4]).abs() < 1e-12);
        assert!((f[3] - cps[5]).abs() < 1e-12);
    }

    #[test]
    fn variants_agree() {
        let b = bezier_lines(64, 32, 16.0, 73);
        let input = BenchInput::Bezier(b);
        let cdp = run_variant(&Bt, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let no_cdp = run_variant(&Bt, Variant::NoCdp, &input).unwrap();
        assert!(cdp.output.approx_eq(&no_cdp.output, 1e-12));
    }
}
