//! SP — survey propagation on random k-SAT (LonestarGPU flavour,
//! simplified message schedule).
//!
//! Two CDP kernels per iteration: a clause pass (parent per clause, child
//! per literal) accumulating log-survey contributions, and a variable pass
//! (parent per variable, child per clause occurrence) accumulating survey
//! mass back onto variables. On RAND-3 every clause has exactly 3 literals
//! — the uniformly tiny child grids the paper calls out as a case where
//! dynamic parallelism cannot win (Section VIII-D).

use super::{BenchInput, BenchOutput, Benchmark};
use dp_core::{Executor, Result};
use dp_vm::Value;

/// The SP benchmark.
pub struct Sp;

/// Message-update iterations.
const ITERS: usize = 3;

const CDP: &str = r#"
__global__ void sp_clause_child(int* lits, double* pi, double* etaLog, int c, int litBegin, int count) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < count) {
        int v = lits[litBegin + i];
        atomicAdd(&etaLog[c], log(1.0 - pi[v] * 0.9));
    }
}

__global__ void sp_clause_parent(int* clauseOffsets, int* lits, double* pi, double* etaLog, int numClauses) {
    int c = blockIdx.x * blockDim.x + threadIdx.x;
    if (c < numClauses) {
        int begin = clauseOffsets[c];
        int count = clauseOffsets[c + 1] - begin;
        if (count > 0) {
            sp_clause_child<<<(count + 31) / 32, 32>>>(lits, pi, etaLog, c, begin, count);
        }
    }
}

__global__ void sp_var_child(int* occ, double* etaLog, double* piAcc, int v, int occBegin, int count) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < count) {
        int c = occ[occBegin + i];
        atomicAdd(&piAcc[v], exp(etaLog[c]));
    }
}

__global__ void sp_var_parent(int* varOffsets, int* occ, double* etaLog, double* piAcc, int numVars) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numVars) {
        int begin = varOffsets[v];
        int count = varOffsets[v + 1] - begin;
        if (count > 0) {
            sp_var_child<<<(count + 31) / 32, 32>>>(occ, etaLog, piAcc, v, begin, count);
        }
    }
}
"#;

const NO_CDP: &str = r#"
__global__ void sp_clause_parent(int* clauseOffsets, int* lits, double* pi, double* etaLog, int numClauses) {
    int c = blockIdx.x * blockDim.x + threadIdx.x;
    if (c < numClauses) {
        int begin = clauseOffsets[c];
        int count = clauseOffsets[c + 1] - begin;
        for (int i = 0; i < count; ++i) {
            int v = lits[begin + i];
            atomicAdd(&etaLog[c], log(1.0 - pi[v] * 0.9));
        }
    }
}

__global__ void sp_var_parent(int* varOffsets, int* occ, double* etaLog, double* piAcc, int numVars) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numVars) {
        int begin = varOffsets[v];
        int count = varOffsets[v + 1] - begin;
        for (int i = 0; i < count; ++i) {
            int c = occ[begin + i];
            atomicAdd(&piAcc[v], exp(etaLog[c]));
        }
    }
}
"#;

impl Benchmark for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn cdp_source(&self) -> &'static str {
        CDP
    }

    fn no_cdp_source(&self) -> &'static str {
        NO_CDP
    }

    fn run(&self, exec: &mut Executor, input: &BenchInput) -> Result<BenchOutput> {
        let f = input.sat();
        let num_clauses = f.num_clauses();
        let num_vars = f.num_vars;

        let clause_offsets = exec.alloc_i64s(&f.clause_offsets);
        let lits = exec.alloc_i64s(&f.lits);
        let var_offsets = exec.alloc_i64s(&f.var_offsets);
        let occ = exec.alloc_i64s(&f.occ_clauses);

        let mut pi = vec![0.5f64; num_vars];
        let pi_ptr = exec.alloc_f64s(&pi);
        let eta_log = exec.alloc_f64s(&vec![0.0; num_clauses.max(1)]);
        let pi_acc = exec.alloc_f64s(&vec![0.0; num_vars.max(1)]);

        for _ in 0..ITERS {
            // Clause pass.
            for c in 0..num_clauses {
                exec.machine_mut()
                    .mem
                    .write(eta_log + c as i64, Value::Float(0.0))?;
            }
            let grid = (num_clauses as i64 + 255) / 256;
            exec.launch(
                "sp_clause_parent",
                grid,
                256,
                &[
                    Value::Int(clause_offsets),
                    Value::Int(lits),
                    Value::Int(pi_ptr),
                    Value::Int(eta_log),
                    Value::Int(num_clauses as i64),
                ],
            )?;
            exec.sync()?;

            // Variable pass.
            for v in 0..num_vars {
                exec.machine_mut()
                    .mem
                    .write(pi_acc + v as i64, Value::Float(0.0))?;
            }
            let grid = (num_vars as i64 + 255) / 256;
            exec.launch(
                "sp_var_parent",
                grid,
                256,
                &[
                    Value::Int(var_offsets),
                    Value::Int(occ),
                    Value::Int(eta_log),
                    Value::Int(pi_acc),
                    Value::Int(num_vars as i64),
                ],
            )?;
            exec.sync()?;

            // Host normalization (the original benchmark renormalizes
            // marginals between rounds).
            let acc = exec.read_f64s(pi_acc, num_vars)?;
            for v in 0..num_vars {
                let occs = f.occurrences(v).len() as f64;
                pi[v] = acc[v] / (1.0 + occs);
                exec.machine_mut()
                    .mem
                    .write(pi_ptr + v as i64, Value::Float(pi[v]))?;
            }
        }

        Ok(BenchOutput {
            ints: vec![],
            floats: pi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{run_variant, Variant};
    use crate::datasets::ksat::random_ksat;
    use dp_core::OptConfig;

    #[test]
    fn cdp_and_no_cdp_agree_within_tolerance() {
        let f = random_ksat(60, 120, 3, 51);
        let input = BenchInput::Sat(f);
        let cdp = run_variant(&Sp, Variant::Cdp(OptConfig::none()), &input).unwrap();
        let no_cdp = run_variant(&Sp, Variant::NoCdp, &input).unwrap();
        assert!(
            cdp.output.approx_eq(&no_cdp.output, 1e-9),
            "marginals diverged"
        );
    }

    #[test]
    fn marginals_are_probabilities() {
        let f = random_ksat(40, 80, 3, 52);
        let input = BenchInput::Sat(f);
        let run = run_variant(&Sp, Variant::Cdp(OptConfig::none()), &input).unwrap();
        assert!(run.output.floats.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
