//! Token definitions for the CUDA-C subset lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

/// The kinds of tokens produced by [`crate::lexer::Lexer`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal, e.g. `42`, `0x1F`.
    IntLit(i64),
    /// Floating-point literal, e.g. `1.5`, `2e3`, `1.0f`.
    FloatLit(f64),
    /// Identifier or non-reserved word.
    Ident(String),
    /// Reserved keyword.
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(Punct),
    /// A preprocessor directive line kept verbatim (e.g. `#include <x.h>`).
    Directive(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::IntLit(v) => write!(f, "integer `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float `{v}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Directive(d) => write!(f, "directive `{d}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Reserved words of the CUDA-C subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Keyword {
            $(#[doc = concat!("`", $text, "`")] $variant),+
        }

        impl Keyword {
            /// Looks up a keyword from its source text.
            #[allow(clippy::should_implement_trait)]
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// The source text of this keyword.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    Global => "__global__",
    Device => "__device__",
    Host => "__host__",
    Shared => "__shared__",
    Const => "const",
    Void => "void",
    Bool => "bool",
    Char => "char",
    Int => "int",
    Unsigned => "unsigned",
    Signed => "signed",
    Long => "long",
    Short => "short",
    Float => "float",
    Double => "double",
    SizeT => "size_t",
    Dim3 => "dim3",
    If => "if",
    Else => "else",
    For => "for",
    While => "while",
    Do => "do",
    Return => "return",
    Break => "break",
    Continue => "continue",
    True => "true",
    False => "false",
    Struct => "struct",
}

macro_rules! puncts {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Operators and punctuation of the CUDA-C subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Punct {
            $(#[doc = concat!("`", $text, "`")] $variant),+
        }

        impl Punct {
            /// The source text of this punctuation token.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(Punct::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Punct {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

puncts! {
    // Longest first by family (the lexer handles maximal munch itself).
    LaunchOpen => "<<<",
    LaunchClose => ">>>",
    ShlAssign => "<<=",
    ShrAssign => ">>=",
    Shl => "<<",
    Shr => ">>",
    Le => "<=",
    Ge => ">=",
    EqEq => "==",
    Ne => "!=",
    AndAnd => "&&",
    OrOr => "||",
    PlusPlus => "++",
    MinusMinus => "--",
    PlusAssign => "+=",
    MinusAssign => "-=",
    StarAssign => "*=",
    SlashAssign => "/=",
    PercentAssign => "%=",
    AmpAssign => "&=",
    PipeAssign => "|=",
    CaretAssign => "^=",
    Arrow => "->",
    Lt => "<",
    Gt => ">",
    Assign => "=",
    Plus => "+",
    Minus => "-",
    Star => "*",
    Slash => "/",
    Percent => "%",
    Amp => "&",
    Pipe => "|",
    Caret => "^",
    Tilde => "~",
    Bang => "!",
    Question => "?",
    Colon => ":",
    Semi => ";",
    Comma => ",",
    Dot => ".",
    LParen => "(",
    RParen => ")",
    LBrace => "{",
    RBrace => "}",
    LBracket => "[",
    RBracket => "]",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Global,
            Keyword::Device,
            Keyword::Shared,
            Keyword::Dim3,
            Keyword::Unsigned,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("notakeyword"), None);
    }

    #[test]
    fn punct_display() {
        assert_eq!(Punct::LaunchOpen.to_string(), "<<<");
        assert_eq!(Punct::Shl.to_string(), "<<");
        assert_eq!(Punct::Semi.to_string(), ";");
    }

    #[test]
    fn token_kind_display() {
        assert_eq!(TokenKind::IntLit(7).to_string(), "integer `7`");
        assert_eq!(
            TokenKind::Ident("foo".into()).to_string(),
            "identifier `foo`"
        );
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
