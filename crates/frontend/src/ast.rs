//! Abstract syntax tree for the CUDA-C subset.
//!
//! Every expression and statement carries a [`Span`] (pointing into the
//! original source, or [`Span::SYNTH`] for pass-generated code) and a
//! [`CodeOrigin`] tag. Origin tags are how the execution-time breakdown of
//! the paper's Fig. 10 is produced: the VM attributes each executed
//! instruction to the origin of the statement it was lowered from.

use crate::span::Span;
use std::fmt;

/// Which part of the compilation pipeline produced a piece of code.
///
/// `Original` marks user-written code; the other variants mark code
/// synthesized by the optimization passes and are used by the simulator to
/// attribute execution time (paper Fig. 10 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodeOrigin {
    /// User-written code.
    #[default]
    Original,
    /// The `if (_threads >= _THRESHOLD)` check inserted by thresholding.
    ThresholdCheck,
    /// The serialized child body executed by the parent thread
    /// (counted as *parent work* in the breakdown).
    ThresholdSerial,
    /// Loop machinery inserted by the coarsening pass.
    CoarsenLoop,
    /// Parent-side aggregation logic (scan, max, arg stores, counters).
    AggLogic,
    /// Child-side disaggregation logic (binary search, config loads).
    DisaggLogic,
}

impl fmt::Display for CodeOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CodeOrigin::Original => "original",
            CodeOrigin::ThresholdCheck => "threshold-check",
            CodeOrigin::ThresholdSerial => "threshold-serial",
            CodeOrigin::CoarsenLoop => "coarsen-loop",
            CodeOrigin::AggLogic => "aggregation",
            CodeOrigin::DisaggLogic => "disaggregation",
        };
        f.write_str(s)
    }
}

/// Scalar and pointer types of the subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` (function returns only).
    Void,
    /// `bool`.
    Bool,
    /// `int` (also `signed`, `short`, `char` map here; all 64-bit in the VM).
    Int,
    /// `unsigned int` / `unsigned` / `size_t`.
    UInt,
    /// `long long` / `long`.
    Long,
    /// `unsigned long long`.
    ULong,
    /// `float` (f64 in the VM; precision difference documented).
    Float,
    /// `double`.
    Double,
    /// CUDA `dim3` (three unsigned components, default 1).
    Dim3,
    /// Pointer to another type.
    Ptr(Box<Type>),
}

impl Type {
    /// Whether the type is an integer type (bool counts as integer).
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::Bool | Type::Int | Type::UInt | Type::Long | Type::ULong
        )
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// Creates a pointer to this type.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Bool => f.write_str("bool"),
            Type::Int => f.write_str("int"),
            Type::UInt => f.write_str("unsigned int"),
            Type::Long => f.write_str("long long"),
            Type::ULong => f.write_str("unsigned long long"),
            Type::Float => f.write_str("float"),
            Type::Double => f.write_str("double"),
            Type::Dim3 => f.write_str("dim3"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// C source text of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }

    /// Whether the operator produces a boolean result.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `*` (pointer dereference)
    Deref,
    /// `&` (address-of)
    AddrOf,
}

impl UnOp {
    /// C source text of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Deref => "*",
            UnOp::AddrOf => "&",
        }
    }
}

/// Compound assignment operators (`=` is `AssignOp::Assign`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
    /// `&=`
    And,
    /// `|=`
    Or,
    /// `^=`
    Xor,
    /// `<<=`
    Shl,
    /// `>>=`
    Shr,
}

impl AssignOp {
    /// C source text of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
            AssignOp::And => "&=",
            AssignOp::Or => "|=",
            AssignOp::Xor => "^=",
            AssignOp::Shl => "<<=",
            AssignOp::Shr => ">>=",
        }
    }

    /// The binary operator a compound assignment applies, if any.
    pub fn bin_op(&self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::Add => Some(BinOp::Add),
            AssignOp::Sub => Some(BinOp::Sub),
            AssignOp::Mul => Some(BinOp::Mul),
            AssignOp::Div => Some(BinOp::Div),
            AssignOp::Rem => Some(BinOp::Rem),
            AssignOp::And => Some(BinOp::BitAnd),
            AssignOp::Or => Some(BinOp::BitOr),
            AssignOp::Xor => Some(BinOp::BitXor),
            AssignOp::Shl => Some(BinOp::Shl),
            AssignOp::Shr => Some(BinOp::Shr),
        }
    }
}

/// An expression with span and origin metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression payload.
    pub kind: ExprKind,
    /// Source location (synthetic for generated code).
    pub span: Span,
    /// Which pipeline stage produced this expression.
    pub origin: CodeOrigin,
}

impl Expr {
    /// Creates an expression with the given span and `Original` origin.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr {
            kind,
            span,
            origin: CodeOrigin::Original,
        }
    }

    /// Creates a synthetic expression tagged with `origin`.
    pub fn synth(kind: ExprKind, origin: CodeOrigin) -> Expr {
        Expr {
            kind,
            span: Span::SYNTH,
            origin,
        }
    }

    /// Shorthand for a synthetic identifier expression.
    pub fn ident(name: impl Into<String>, origin: CodeOrigin) -> Expr {
        Expr::synth(ExprKind::Ident(name.into()), origin)
    }

    /// Shorthand for a synthetic integer literal.
    pub fn int(value: i64, origin: CodeOrigin) -> Expr {
        Expr::synth(ExprKind::IntLit(value), origin)
    }

    /// Shorthand for a synthetic binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr, origin: CodeOrigin) -> Expr {
        Expr::synth(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), origin)
    }

    /// Shorthand for a synthetic `base.field` member access.
    pub fn member(base: Expr, field: impl Into<String>, origin: CodeOrigin) -> Expr {
        Expr::synth(ExprKind::Member(Box::new(base), field.into()), origin)
    }

    /// Shorthand for a synthetic call expression.
    pub fn call(name: impl Into<String>, args: Vec<Expr>, origin: CodeOrigin) -> Expr {
        Expr::synth(ExprKind::Call(name.into(), args), origin)
    }

    /// Shorthand for a synthetic `base[index]` expression.
    pub fn index(base: Expr, index: Expr, origin: CodeOrigin) -> Expr {
        Expr::synth(ExprKind::Index(Box::new(base), Box::new(index)), origin)
    }

    /// Shorthand for a synthetic simple assignment `lhs = rhs`.
    pub fn assign(lhs: Expr, rhs: Expr, origin: CodeOrigin) -> Expr {
        Expr::synth(
            ExprKind::Assign(AssignOp::Assign, Box::new(lhs), Box::new(rhs)),
            origin,
        )
    }
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `true` / `false`.
    BoolLit(bool),
    /// Variable or builtin reference (`threadIdx` etc. are plain idents).
    Ident(String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Prefix unary operation.
    Unary(UnOp, Box<Expr>),
    /// `++x` / `x++` / `--x` / `x--`; `inc` selects ++ vs --.
    IncDec {
        /// `true` for `++`, `false` for `--`.
        inc: bool,
        /// `true` for prefix form.
        prefix: bool,
        /// The lvalue operand.
        operand: Box<Expr>,
    },
    /// Assignment (simple or compound); lhs must be an lvalue.
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Direct call `f(args)`; builtins are resolved by name downstream.
    Call(String, Vec<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` (dim3 components).
    Member(Box<Expr>, String),
    /// `(type) expr`.
    Cast(Type, Box<Expr>),
    /// `dim3(x)`, `dim3(x, y)`, `dim3(x, y, z)`.
    Dim3Ctor(Vec<Expr>),
}

impl ExprKind {
    /// Returns the identifier name if this is a plain identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            ExprKind::Ident(name) => Some(name),
            _ => None,
        }
    }
}

/// A single declared variable within a declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Variable name.
    pub name: String,
    /// `Some(len)` for array declarations `T name[len]` (only allowed with
    /// `__shared__` or constant length local arrays).
    pub array_len: Option<Expr>,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// A declaration statement, e.g. `const int a = 1, b = 2;`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Declared base type (pointer layers live in the type itself).
    pub ty: Type,
    /// `__shared__` qualifier.
    pub shared: bool,
    /// `const` qualifier (informational; the subset does not enforce it).
    pub is_const: bool,
    /// One or more declared names.
    pub declarators: Vec<Declarator>,
}

/// A statement with span and origin metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement payload.
    pub kind: StmtKind,
    /// Source location (synthetic for generated code).
    pub span: Span,
    /// Which pipeline stage produced this statement.
    pub origin: CodeOrigin,
}

impl Stmt {
    /// Creates a statement with the given span and `Original` origin.
    pub fn new(kind: StmtKind, span: Span) -> Stmt {
        Stmt {
            kind,
            span,
            origin: CodeOrigin::Original,
        }
    }

    /// Creates a synthetic statement tagged with `origin`.
    pub fn synth(kind: StmtKind, origin: CodeOrigin) -> Stmt {
        Stmt {
            kind,
            span: Span::SYNTH,
            origin,
        }
    }

    /// Shorthand for a synthetic expression statement.
    pub fn expr(expr: Expr, origin: CodeOrigin) -> Stmt {
        Stmt::synth(StmtKind::Expr(expr), origin)
    }

    /// Shorthand for a synthetic single-declarator declaration.
    pub fn decl(ty: Type, name: impl Into<String>, init: Option<Expr>, origin: CodeOrigin) -> Stmt {
        Stmt::synth(
            StmtKind::Decl(VarDecl {
                ty,
                shared: false,
                is_const: false,
                declarators: vec![Declarator {
                    name: name.into(),
                    array_len: None,
                    init,
                }],
            }),
            origin,
        )
    }
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Variable declaration.
    Decl(VarDecl),
    /// Expression evaluated for side effects.
    Expr(Expr),
    /// `if (cond) then else els`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond` is non-zero.
        then_branch: Box<Stmt>,
        /// Taken otherwise, if present.
        else_branch: Option<Box<Stmt>>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Declaration or expression statement, if present.
        init: Option<Box<Stmt>>,
        /// Loop condition (absent means `true`).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
    },
    /// `return expr?;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// Kernel launch `kernel<<<grid, block[, shmem[, stream]]>>>(args);`.
    Launch(LaunchStmt),
    /// `;`
    Empty,
}

/// A dynamic (or host-side) kernel launch statement.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchStmt {
    /// Name of the launched kernel.
    pub kernel: String,
    /// Grid dimension expression (int or dim3).
    pub grid: Expr,
    /// Block dimension expression (int or dim3).
    pub block: Expr,
    /// Optional dynamic shared memory size (parsed, not modelled).
    pub shmem: Option<Expr>,
    /// Optional stream argument (parsed, not modelled; per-thread default
    /// streams are assumed as in the paper's methodology).
    pub stream: Option<Expr>,
    /// Kernel arguments.
    pub args: Vec<Expr>,
}

/// Function qualifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FnQual {
    /// `__global__` — a kernel.
    Global,
    /// `__device__` — device-side function.
    Device,
    /// `__host__` or unqualified — host-side function.
    Host,
}

impl fmt::Display for FnQual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnQual::Global => f.write_str("__global__"),
            FnQual::Device => f.write_str("__device__"),
            FnQual::Host => f.write_str("__host__"),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Kernel/device/host qualifier.
    pub qual: FnQual,
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body statements (the subset requires definitions, not declarations).
    pub body: Vec<Stmt>,
    /// Source span of the whole definition.
    pub span: Span,
}

impl Function {
    /// Whether this is a `__global__` kernel.
    pub fn is_kernel(&self) -> bool {
        self.qual == FnQual::Global
    }
}

/// Top-level program items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function definition.
    Function(Function),
    /// A `#define NAME <integer>` object macro (understood, re-printed).
    Define {
        /// Macro name.
        name: String,
        /// Integer value.
        value: i64,
    },
    /// Any other preprocessor line, preserved verbatim.
    Directive(String),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Iterates over the function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|item| match item {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Iterates mutably over the function definitions.
    pub fn functions_mut(&mut self) -> impl Iterator<Item = &mut Function> {
        self.items.iter_mut().filter_map(|item| match item {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions_mut().find(|f| f.name == name)
    }

    /// Looks up a `#define` integer macro value.
    pub fn define(&self, name: &str) -> Option<i64> {
        self.items.iter().find_map(|item| match item {
            Item::Define { name: n, value } if n == name => Some(*value),
            _ => None,
        })
    }

    /// Inserts or replaces a `#define NAME value` at the top of the program.
    pub fn set_define(&mut self, name: &str, value: i64) {
        for item in &mut self.items {
            if let Item::Define { name: n, value: v } = item {
                if n == name {
                    *v = value;
                    return;
                }
            }
        }
        self.items.insert(
            0,
            Item::Define {
                name: name.to_string(),
                value,
            },
        );
    }
}

/// The reserved builtin index/dimension variable names.
pub const BUILTIN_DIM_VARS: [&str; 4] = ["threadIdx", "blockIdx", "blockDim", "gridDim"];

/// Names treated as barrier/warp-synchronization intrinsics when deciding
/// transformability (paper Section III-C).
pub const SYNC_INTRINSICS: [&str; 8] = [
    "__syncthreads",
    "__syncwarp",
    "__shfl_sync",
    "__shfl_up_sync",
    "__shfl_down_sync",
    "__shfl_xor_sync",
    "__ballot_sync",
    "__activemask",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates() {
        assert!(Type::Int.is_integer());
        assert!(Type::UInt.is_integer());
        assert!(!Type::Float.is_integer());
        assert!(Type::Double.is_float());
        assert!(!Type::Dim3.is_float());
        assert_eq!(Type::Int.ptr_to(), Type::Ptr(Box::new(Type::Int)));
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Ptr(Box::new(Type::Float)).to_string(), "float*");
        assert_eq!(
            Type::Ptr(Box::new(Type::Ptr(Box::new(Type::Int)))).to_string(),
            "int**"
        );
        assert_eq!(Type::ULong.to_string(), "unsigned long long");
    }

    #[test]
    fn assign_op_decomposition() {
        assert_eq!(AssignOp::Assign.bin_op(), None);
        assert_eq!(AssignOp::Add.bin_op(), Some(BinOp::Add));
        assert_eq!(AssignOp::Shr.bin_op(), Some(BinOp::Shr));
    }

    #[test]
    fn expr_builders_are_synthetic() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::ident("a", CodeOrigin::AggLogic),
            Expr::int(1, CodeOrigin::AggLogic),
            CodeOrigin::AggLogic,
        );
        assert!(e.span.is_synthetic());
        assert_eq!(e.origin, CodeOrigin::AggLogic);
    }

    #[test]
    fn program_function_lookup() {
        let mut p = Program::new();
        p.items.push(Item::Function(Function {
            qual: FnQual::Global,
            ret: Type::Void,
            name: "k".into(),
            params: vec![],
            body: vec![],
            span: Span::SYNTH,
        }));
        assert!(p.function("k").is_some());
        assert!(p.function("k").unwrap().is_kernel());
        assert!(p.function("missing").is_none());
        assert_eq!(p.functions().count(), 1);
    }

    #[test]
    fn program_defines() {
        let mut p = Program::new();
        assert_eq!(p.define("_THRESHOLD"), None);
        p.set_define("_THRESHOLD", 128);
        assert_eq!(p.define("_THRESHOLD"), Some(128));
        p.set_define("_THRESHOLD", 256);
        assert_eq!(p.define("_THRESHOLD"), Some(256));
        // Replacement did not duplicate.
        let count = p
            .items
            .iter()
            .filter(|i| matches!(i, Item::Define { .. }))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn origin_display_names() {
        assert_eq!(CodeOrigin::Original.to_string(), "original");
        assert_eq!(CodeOrigin::DisaggLogic.to_string(), "disaggregation");
    }
}
