//! AST walkers used by the analyses and transformation passes.
//!
//! All walkers are plain functions over the AST (no visitor trait): the
//! passes in `dp-transform` mostly need "apply this closure to every
//! expression/statement", and closures compose better than trait impls for
//! that shape of work.

use crate::ast::*;
use crate::span::Span;

/// Walks `expr` post-order (children before parents), letting `f` mutate
/// every node in place.
///
/// Post-order means a callback that replaces a node wholesale (for example
/// rewriting `blockIdx.x` to `_bx`) never re-visits its own replacement.
pub fn walk_expr_mut(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match &mut expr.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::BoolLit(_) | ExprKind::Ident(_) => {
        }
        ExprKind::Binary(_, lhs, rhs) => {
            walk_expr_mut(lhs, f);
            walk_expr_mut(rhs, f);
        }
        ExprKind::Unary(_, operand) => walk_expr_mut(operand, f),
        ExprKind::IncDec { operand, .. } => walk_expr_mut(operand, f),
        ExprKind::Assign(_, lhs, rhs) => {
            walk_expr_mut(lhs, f);
            walk_expr_mut(rhs, f);
        }
        ExprKind::Ternary(c, t, e) => {
            walk_expr_mut(c, f);
            walk_expr_mut(t, f);
            walk_expr_mut(e, f);
        }
        ExprKind::Call(_, args) | ExprKind::Dim3Ctor(args) => {
            for arg in args {
                walk_expr_mut(arg, f);
            }
        }
        ExprKind::Index(base, index) => {
            walk_expr_mut(base, f);
            walk_expr_mut(index, f);
        }
        ExprKind::Member(base, _) => walk_expr_mut(base, f),
        ExprKind::Cast(_, operand) => walk_expr_mut(operand, f),
    }
    f(expr);
}

/// Walks every expression contained in `stmt` (including nested statements),
/// post-order within each expression.
pub fn walk_stmt_exprs_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut stmt.kind {
        StmtKind::Decl(decl) => {
            for d in &mut decl.declarators {
                if let Some(len) = &mut d.array_len {
                    walk_expr_mut(len, f);
                }
                if let Some(init) = &mut d.init {
                    walk_expr_mut(init, f);
                }
            }
        }
        StmtKind::Expr(e) => walk_expr_mut(e, f),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            walk_expr_mut(cond, f);
            walk_stmt_exprs_mut(then_branch, f);
            if let Some(e) = else_branch {
                walk_stmt_exprs_mut(e, f);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                walk_stmt_exprs_mut(i, f);
            }
            if let Some(c) = cond {
                walk_expr_mut(c, f);
            }
            if let Some(s) = step {
                walk_expr_mut(s, f);
            }
            walk_stmt_exprs_mut(body, f);
        }
        StmtKind::While { cond, body } => {
            walk_expr_mut(cond, f);
            walk_stmt_exprs_mut(body, f);
        }
        StmtKind::DoWhile { body, cond } => {
            walk_stmt_exprs_mut(body, f);
            walk_expr_mut(cond, f);
        }
        StmtKind::Return(Some(e)) => walk_expr_mut(e, f),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
        StmtKind::Block(stmts) => {
            for s in stmts {
                walk_stmt_exprs_mut(s, f);
            }
        }
        StmtKind::Launch(launch) => {
            walk_expr_mut(&mut launch.grid, f);
            walk_expr_mut(&mut launch.block, f);
            if let Some(s) = &mut launch.shmem {
                walk_expr_mut(s, f);
            }
            if let Some(s) = &mut launch.stream {
                walk_expr_mut(s, f);
            }
            for arg in &mut launch.args {
                walk_expr_mut(arg, f);
            }
        }
    }
}

/// Walks `stmt` and every nested statement post-order, letting `f` mutate
/// each one.
pub fn walk_stmt_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Stmt)) {
    match &mut stmt.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_stmt_mut(then_branch, f);
            if let Some(e) = else_branch {
                walk_stmt_mut(e, f);
            }
        }
        StmtKind::For { init, body, .. } => {
            if let Some(i) = init {
                walk_stmt_mut(i, f);
            }
            walk_stmt_mut(body, f);
        }
        StmtKind::While { body, .. } => walk_stmt_mut(body, f),
        StmtKind::DoWhile { body, .. } => walk_stmt_mut(body, f),
        StmtKind::Block(stmts) => {
            for s in stmts {
                walk_stmt_mut(s, f);
            }
        }
        _ => {}
    }
    f(stmt);
}

/// Immutable expression walk (post-order).
pub fn for_each_expr(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    match &expr.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::BoolLit(_) | ExprKind::Ident(_) => {
        }
        ExprKind::Binary(_, lhs, rhs) => {
            for_each_expr(lhs, f);
            for_each_expr(rhs, f);
        }
        ExprKind::Unary(_, operand) => for_each_expr(operand, f),
        ExprKind::IncDec { operand, .. } => for_each_expr(operand, f),
        ExprKind::Assign(_, lhs, rhs) => {
            for_each_expr(lhs, f);
            for_each_expr(rhs, f);
        }
        ExprKind::Ternary(c, t, e) => {
            for_each_expr(c, f);
            for_each_expr(t, f);
            for_each_expr(e, f);
        }
        ExprKind::Call(_, args) | ExprKind::Dim3Ctor(args) => {
            for arg in args {
                for_each_expr(arg, f);
            }
        }
        ExprKind::Index(base, index) => {
            for_each_expr(base, f);
            for_each_expr(index, f);
        }
        ExprKind::Member(base, _) => for_each_expr(base, f),
        ExprKind::Cast(_, operand) => for_each_expr(operand, f),
    }
    f(expr);
}

/// Immutable walk over every expression in a statement tree.
pub fn for_each_stmt_expr(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    for_each_stmt(stmt, &mut |s| match &s.kind {
        StmtKind::Decl(decl) => {
            for d in &decl.declarators {
                if let Some(len) = &d.array_len {
                    for_each_expr(len, f);
                }
                if let Some(init) = &d.init {
                    for_each_expr(init, f);
                }
            }
        }
        StmtKind::Expr(e) => for_each_expr(e, f),
        StmtKind::If { cond, .. } => for_each_expr(cond, f),
        StmtKind::For { cond, step, .. } => {
            if let Some(c) = cond {
                for_each_expr(c, f);
            }
            if let Some(st) = step {
                for_each_expr(st, f);
            }
        }
        StmtKind::While { cond, .. } => for_each_expr(cond, f),
        StmtKind::DoWhile { cond, .. } => for_each_expr(cond, f),
        StmtKind::Return(Some(e)) => for_each_expr(e, f),
        StmtKind::Launch(launch) => {
            for_each_expr(&launch.grid, f);
            for_each_expr(&launch.block, f);
            if let Some(s) = &launch.shmem {
                for_each_expr(s, f);
            }
            if let Some(s) = &launch.stream {
                for_each_expr(s, f);
            }
            for arg in &launch.args {
                for_each_expr(arg, f);
            }
        }
        _ => {}
    });
}

/// Immutable walk over `stmt` and every nested statement (pre-order).
pub fn for_each_stmt(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(stmt);
    match &stmt.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            for_each_stmt(then_branch, f);
            if let Some(e) = else_branch {
                for_each_stmt(e, f);
            }
        }
        StmtKind::For { init, body, .. } => {
            if let Some(i) = init {
                for_each_stmt(i, f);
            }
            for_each_stmt(body, f);
        }
        StmtKind::While { body, .. } => for_each_stmt(body, f),
        StmtKind::DoWhile { body, .. } => for_each_stmt(body, f),
        StmtKind::Block(stmts) => {
            for s in stmts {
                for_each_stmt(s, f);
            }
        }
        _ => {}
    }
}

/// Erases spans and origin tags everywhere in the program.
///
/// Used by round-trip tests: `parse(print(p))` equals `strip_meta(p)` up to
/// metadata, since printing discards spans.
pub fn strip_meta(program: &mut Program) {
    for func in program.functions_mut() {
        func.span = Span::SYNTH;
        for stmt in &mut func.body {
            walk_stmt_mut(stmt, &mut |s| {
                s.span = Span::SYNTH;
                s.origin = CodeOrigin::Original;
            });
            walk_stmt_exprs_mut(stmt, &mut |e| {
                e.span = Span::SYNTH;
                e.origin = CodeOrigin::Original;
            });
        }
    }
}

/// Replaces every use of builtin member `base.field` (e.g. `blockIdx.x`)
/// with the identifier `replacement` inside `stmt`.
///
/// This is the workhorse of the serialization/coarsening rewrites
/// (paper Fig. 3b line 12-14, Fig. 6 line 03-04).
pub fn replace_builtin_member(stmt: &mut Stmt, base: &str, field: &str, replacement: &str) {
    walk_stmt_exprs_mut(stmt, &mut |e| {
        if let ExprKind::Member(b, fld) = &e.kind {
            if fld == field && b.kind.as_ident() == Some(base) {
                e.kind = ExprKind::Ident(replacement.to_string());
            }
        }
    });
}

/// Replaces every use of the *whole* builtin identifier `base` (e.g. a bare
/// `gridDim` passed around as `dim3`) with `replacement`.
///
/// Member accesses like `gridDim.x` become `replacement.x` because the walk
/// rewrites the inner identifier.
pub fn replace_builtin_ident(stmt: &mut Stmt, base: &str, replacement: &str) {
    walk_stmt_exprs_mut(stmt, &mut |e| {
        if e.kind.as_ident() == Some(base) {
            e.kind = ExprKind::Ident(replacement.to_string());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_stmt};

    #[test]
    fn walk_expr_visits_all_nodes() {
        let mut e = parse_expr("a + b * f(c, d[e])").unwrap();
        let mut count = 0;
        walk_expr_mut(&mut e, &mut |_| count += 1);
        // a, b, c, d, e, d[e], f(..), b*f, a+...
        assert_eq!(count, 9);
    }

    #[test]
    fn replace_member_rewrites_only_target() {
        let mut s = parse_stmt("x = blockIdx.x + threadIdx.x + v.x;").unwrap();
        replace_builtin_member(&mut s, "blockIdx", "x", "_bx");
        let mut found_bx = false;
        let mut found_thread = false;
        for_each_stmt_expr(&s, &mut |e| {
            if e.kind.as_ident() == Some("_bx") {
                found_bx = true;
            }
            if let ExprKind::Member(b, _) = &e.kind {
                if b.kind.as_ident() == Some("threadIdx") {
                    found_thread = true;
                }
            }
        });
        assert!(found_bx, "blockIdx.x should be replaced");
        assert!(found_thread, "threadIdx.x should remain");
    }

    #[test]
    fn replace_ident_rewrites_member_bases() {
        let mut s = parse_stmt("y = gridDim.x * 2 + f(gridDim);").unwrap();
        replace_builtin_ident(&mut s, "gridDim", "_gDim");
        let mut count = 0;
        for_each_stmt_expr(&s, &mut |e| {
            if e.kind.as_ident() == Some("_gDim") {
                count += 1;
            }
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn walk_stmts_reaches_nested() {
        let mut s = parse_stmt("if (a) { for (;;) { x = 1; } } else y = 2;").unwrap();
        let mut exprs = 0;
        walk_stmt_exprs_mut(&mut s, &mut |_| exprs += 1);
        assert!(exprs >= 5, "found {exprs}");
        let mut stmts = 0;
        walk_stmt_mut(&mut s, &mut |_| stmts += 1);
        // if, block, for, inner block, x=1, y=2
        assert_eq!(stmts, 6);
    }

    #[test]
    fn launch_exprs_are_walked() {
        let mut s = parse_stmt("k<<<g + 1, b>>>(p, n * 2);").unwrap();
        let mut idents = Vec::new();
        walk_stmt_exprs_mut(&mut s, &mut |e| {
            if let ExprKind::Ident(name) = &e.kind {
                idents.push(name.clone());
            }
        });
        assert_eq!(idents, vec!["g", "b", "p", "n"]);
    }
}
