//! Pretty-printer: AST back to CUDA-subset source.
//!
//! The printer emits minimally-parenthesized, consistently indented source.
//! `parse(print(program))` reproduces the same AST up to spans (checked by
//! property tests), which is what makes the transformation passes
//! composable source-to-source stages as in the paper's Fig. 8(a).

use crate::ast::*;

/// Pretty-prints a whole translation unit.
///
/// # Examples
///
/// ```
/// use dp_frontend::{parser::parse, printer::print_program};
/// let p = parse("__global__ void k(int* p){p[0]=1;}").unwrap();
/// let text = print_program(&p);
/// assert!(text.contains("__global__ void k(int* p)"));
/// ```
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, item) in program.items.iter().enumerate() {
        match item {
            Item::Define { name, value } => {
                out.push_str(&format!("#define {name} {value}\n"));
            }
            Item::Directive(text) => {
                out.push_str(text);
                out.push('\n');
            }
            Item::Function(func) => {
                if i > 0 {
                    out.push('\n');
                }
                print_function(&mut out, func);
            }
        }
    }
    out
}

/// Pretty-prints a single function definition.
pub fn print_function(out: &mut String, func: &Function) {
    match func.qual {
        FnQual::Global => out.push_str("__global__ "),
        FnQual::Device => out.push_str("__device__ "),
        FnQual::Host => {}
    }
    out.push_str(&func.ret.to_string());
    out.push(' ');
    out.push_str(&func.name);
    out.push('(');
    for (i, p) in func.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{} {}", p.ty, p.name));
    }
    out.push_str(") {\n");
    for stmt in &func.body {
        print_stmt(out, stmt, 1);
    }
    out.push_str("}\n");
}

/// Pretty-prints a statement at the given indent level.
pub fn print_stmt(out: &mut String, stmt: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match &stmt.kind {
        StmtKind::Decl(decl) => {
            out.push_str(&pad);
            print_decl(out, decl);
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            out.push_str(&pad);
            out.push_str(&print_expr(e));
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str(&pad);
            out.push_str(&format!("if ({}) ", print_expr(cond)));
            print_braced(out, then_branch, indent);
            if let Some(els) = else_branch {
                out.push_str(&pad);
                out.push_str("else ");
                print_braced(out, els, indent);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str(&pad);
            out.push_str("for (");
            match init {
                Some(s) => match &s.kind {
                    StmtKind::Decl(d) => {
                        print_decl(out, d);
                        out.push_str("; ");
                    }
                    StmtKind::Expr(e) => {
                        out.push_str(&print_expr(e));
                        out.push_str("; ");
                    }
                    _ => out.push_str("; "),
                },
                None => out.push_str("; "),
            }
            if let Some(c) = cond {
                out.push_str(&print_expr(c));
            }
            out.push_str("; ");
            if let Some(s) = step {
                out.push_str(&print_expr(s));
            }
            out.push_str(") ");
            print_braced(out, body, indent);
        }
        StmtKind::While { cond, body } => {
            out.push_str(&pad);
            out.push_str(&format!("while ({}) ", print_expr(cond)));
            print_braced(out, body, indent);
        }
        StmtKind::DoWhile { body, cond } => {
            out.push_str(&pad);
            out.push_str("do ");
            print_braced_no_newline(out, body, indent);
            out.push_str(&format!(" while ({});\n", print_expr(cond)));
        }
        StmtKind::Return(value) => {
            out.push_str(&pad);
            match value {
                Some(e) => out.push_str(&format!("return {};\n", print_expr(e))),
                None => out.push_str("return;\n"),
            }
        }
        StmtKind::Break => {
            out.push_str(&pad);
            out.push_str("break;\n");
        }
        StmtKind::Continue => {
            out.push_str(&pad);
            out.push_str("continue;\n");
        }
        StmtKind::Block(stmts) => {
            out.push_str(&pad);
            out.push_str("{\n");
            for s in stmts {
                print_stmt(out, s, indent + 1);
            }
            out.push_str(&pad);
            out.push_str("}\n");
        }
        StmtKind::Launch(launch) => {
            out.push_str(&pad);
            out.push_str(&launch.kernel);
            out.push_str("<<<");
            out.push_str(&print_expr(&launch.grid));
            out.push_str(", ");
            out.push_str(&print_expr(&launch.block));
            if let Some(s) = &launch.shmem {
                out.push_str(", ");
                out.push_str(&print_expr(s));
            }
            if let Some(s) = &launch.stream {
                out.push_str(", ");
                out.push_str(&print_expr(s));
            }
            out.push_str(">>>(");
            for (i, arg) in launch.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&print_expr(arg));
            }
            out.push_str(");\n");
        }
        StmtKind::Empty => {
            out.push_str(&pad);
            out.push_str(";\n");
        }
    }
}

/// Prints a statement as a braced body (wrapping non-blocks in braces so the
/// output is always unambiguous).
fn print_braced(out: &mut String, stmt: &Stmt, indent: usize) {
    print_braced_no_newline(out, stmt, indent);
    out.push('\n');
}

fn print_braced_no_newline(out: &mut String, stmt: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match &stmt.kind {
        StmtKind::Block(stmts) => {
            out.push_str("{\n");
            for s in stmts {
                print_stmt(out, s, indent + 1);
            }
            out.push_str(&pad);
            out.push('}');
        }
        _ => {
            out.push_str("{\n");
            print_stmt(out, stmt, indent + 1);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn print_decl(out: &mut String, decl: &VarDecl) {
    if decl.shared {
        out.push_str("__shared__ ");
    }
    if decl.is_const {
        out.push_str("const ");
    }
    out.push_str(&decl.ty.to_string());
    out.push(' ');
    for (i, d) in decl.declarators.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&d.name);
        if let Some(len) = &d.array_len {
            out.push_str(&format!("[{}]", print_expr(len)));
        }
        if let Some(init) = &d.init {
            out.push_str(&format!(" = {}", print_expr(init)));
        }
    }
}

/// Binding power of an expression for parenthesization decisions.
/// Mirrors the parser's Pratt table; higher binds tighter.
fn prec(expr: &Expr) -> u8 {
    match &expr.kind {
        ExprKind::Assign(..) => 2,
        ExprKind::Ternary(..) => 4,
        ExprKind::Binary(op, ..) => match op {
            BinOp::LogOr => 6,
            BinOp::LogAnd => 8,
            BinOp::BitOr => 10,
            BinOp::BitXor => 12,
            BinOp::BitAnd => 14,
            BinOp::Eq | BinOp::Ne => 16,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 18,
            BinOp::Shl | BinOp::Shr => 20,
            BinOp::Add | BinOp::Sub => 22,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 24,
        },
        ExprKind::Unary(..) | ExprKind::Cast(..) | ExprKind::IncDec { prefix: true, .. } => 26,
        _ => 30, // literals, idents, calls, postfix forms
    }
}

/// Pretty-prints an expression with minimal parentheses.
pub fn print_expr(expr: &Expr) -> String {
    match &expr.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::FloatLit(v) => {
            // Always keep a decimal point or exponent so it re-lexes as float.
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        ExprKind::BoolLit(b) => b.to_string(),
        ExprKind::Ident(name) => name.clone(),
        ExprKind::Binary(op, lhs, rhs) => {
            let p = prec(expr);
            let l = child(lhs, p, false);
            let r = child(rhs, p, true);
            format!("{l} {op} {r}")
        }
        ExprKind::Unary(op, operand) => {
            let o = child(operand, prec(expr), false);
            // Avoid `--x` from Neg(Neg(x)) and `&&` from AddrOf chains.
            match (&op, &operand.kind) {
                (UnOp::Neg, ExprKind::Unary(UnOp::Neg, _))
                | (UnOp::AddrOf, ExprKind::Unary(UnOp::AddrOf, _)) => {
                    format!("{}({})", op.as_str(), print_expr(operand))
                }
                _ => format!("{}{o}", op.as_str()),
            }
        }
        ExprKind::IncDec {
            inc,
            prefix,
            operand,
        } => {
            let op = if *inc { "++" } else { "--" };
            let o = child(operand, 26, false);
            if *prefix {
                format!("{op}{o}")
            } else {
                format!("{o}{op}")
            }
        }
        ExprKind::Assign(op, lhs, rhs) => {
            let l = child(lhs, prec(expr) + 1, false);
            let r = child(rhs, prec(expr), false);
            format!("{l} {} {r}", op.as_str())
        }
        ExprKind::Ternary(c, t, e) => {
            let pc = child(c, prec(expr) + 1, false);
            let pt = print_expr(t);
            let pe = child(e, prec(expr), false);
            format!("{pc} ? {pt} : {pe}")
        }
        ExprKind::Call(name, args) => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
        ExprKind::Index(base, index) => {
            let b = child(base, 30, false);
            format!("{b}[{}]", print_expr(index))
        }
        ExprKind::Member(base, field) => {
            let b = child(base, 30, false);
            format!("{b}.{field}")
        }
        ExprKind::Cast(ty, operand) => {
            let o = child(operand, prec(expr), false);
            format!("({ty}){o}")
        }
        ExprKind::Dim3Ctor(args) => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("dim3({})", inner.join(", "))
        }
    }
}

/// Prints a child expression, parenthesizing when its precedence is lower
/// than required (or equal, for the right operand of left-associative ops).
fn child(expr: &Expr, parent_prec: u8, is_right_of_left_assoc: bool) -> String {
    let p = prec(expr);
    let needs_parens = p < parent_prec || (p == parent_prec && is_right_of_left_assoc);
    if needs_parens {
        format!("({})", print_expr(expr))
    } else {
        print_expr(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr, parse_stmt};
    use crate::visit::strip_meta;

    fn round_trip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        // Compare structurally, ignoring spans.
        assert_eq!(
            format_structure(&e1),
            format_structure(&e2),
            "round trip changed `{src}` -> `{printed}`"
        );
    }

    /// Span-insensitive structural fingerprint.
    fn format_structure(e: &Expr) -> String {
        format!("{:?}", StripSpans(e))
    }

    struct StripSpans<'a>(&'a Expr);
    impl std::fmt::Debug for StripSpans<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let mut e = self.0.clone();
            crate::visit::walk_expr_mut(&mut e, &mut |x| {
                x.span = crate::span::Span::SYNTH;
            });
            write!(f, "{:?}", e.kind)
        }
    }

    #[test]
    fn expr_round_trips() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "a - b - c",
            "a - (b - c)",
            "a / b / c",
            "(N - 1) / b + 1",
            "(N + b - 1) / b",
            "N / b + (N % b == 0 ? 0 : 1)",
            "ceil((float)N / b)",
            "a << b >> 2",
            "a < b == c > d",
            "a & b | c ^ d",
            "!a && ~b || -c",
            "x = y += z",
            "a ? b : c ? d : e",
            "(a ? b : c) * 2",
            "f(a, g(b), c[d])",
            "p[i].x",
            "dim3(a, b + 1, 1)",
            "*(&x)",
            "-(-x)",
            "i++ + ++j",
            "(float)(a + b)",
            "atomicAdd(&count[i], 1)",
        ] {
            round_trip_expr(src);
        }
    }

    #[test]
    fn float_literals_stay_floats() {
        let e = parse_expr("2.0").unwrap();
        assert_eq!(print_expr(&e), "2.0");
        let e = parse_expr("1.5e10").unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap();
        assert!(matches!(e2.kind, ExprKind::FloatLit(v) if v == 1.5e10));
    }

    #[test]
    fn program_round_trips() {
        let src = "\
#define _THRESHOLD 128
__device__ int add(int a, int b) {
    return a + b;
}

__global__ void child(int* data, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        data[i] = add(data[i], 1);
    }
}

__global__ void parent(int* data, int* offsets, int n) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    int count = offsets[v + 1] - offsets[v];
    child<<<(count + 31) / 32, 32>>>(data, count);
}
";
        let mut p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let mut p2 =
            parse(&printed).unwrap_or_else(|e| panic!("{}\n{}", e.render(&printed), printed));
        strip_meta(&mut p1);
        strip_meta(&mut p2);
        assert_eq!(p1, p2, "program round trip failed:\n{printed}");
    }

    #[test]
    fn statements_print_readably() {
        let s = parse_stmt("for (int i = 0; i < n; ++i) sum += a[i];").unwrap();
        let mut out = String::new();
        print_stmt(&mut out, &s, 0);
        assert_eq!(out, "for (int i = 0; i < n; ++i) {\n    sum += a[i];\n}\n");
    }

    #[test]
    fn do_while_prints() {
        let s = parse_stmt("do { x--; } while (x > 0);").unwrap();
        let mut out = String::new();
        print_stmt(&mut out, &s, 0);
        assert!(out.starts_with("do {"));
        assert!(out.trim_end().ends_with("while (x > 0);"));
    }

    #[test]
    fn launch_prints_all_forms() {
        for src in [
            "k<<<g, b>>>();",
            "k<<<g, b>>>(a);",
            "k<<<(n + 255) / 256, 256, 0, s>>>(a, b);",
        ] {
            let s = parse_stmt(src).unwrap();
            let mut out = String::new();
            print_stmt(&mut out, &s, 0);
            let s2 = parse_stmt(out.trim()).unwrap();
            let mut a = s.clone();
            let mut b = s2.clone();
            crate::visit::walk_stmt_mut(&mut a, &mut |st| st.span = crate::span::Span::SYNTH);
            crate::visit::walk_stmt_exprs_mut(&mut a, &mut |e| e.span = crate::span::Span::SYNTH);
            crate::visit::walk_stmt_mut(&mut b, &mut |st| st.span = crate::span::Span::SYNTH);
            crate::visit::walk_stmt_exprs_mut(&mut b, &mut |e| e.span = crate::span::Span::SYNTH);
            assert_eq!(a, b, "launch round trip failed for `{src}`");
        }
    }

    #[test]
    fn nested_if_else_keeps_structure() {
        let src = "if (a) if (b) x = 1; else x = 2;";
        let s = parse_stmt(src).unwrap();
        let mut out = String::new();
        print_stmt(&mut out, &s, 0);
        // The printer braces everything, so the dangling else is explicit.
        let s2 = parse_stmt(out.trim()).unwrap();
        let mut a = s.clone();
        let mut b = s2;
        for st in [&mut a, &mut b] {
            crate::visit::walk_stmt_mut(st, &mut |x| x.span = crate::span::Span::SYNTH);
            crate::visit::walk_stmt_exprs_mut(st, &mut |e| e.span = crate::span::Span::SYNTH);
        }
        // Structure differs in Block wrapping; compare by printing both.
        let mut out2 = String::new();
        print_stmt(&mut out2, &b, 0);
        assert_eq!(out, out2);
    }

    #[test]
    fn shared_decl_prints() {
        let s = parse_stmt("__shared__ float tile[128];").unwrap();
        let mut out = String::new();
        print_stmt(&mut out, &s, 0);
        assert_eq!(out, "__shared__ float tile[128];\n");
    }
}
