//! Recursive-descent parser for the CUDA-C subset.
//!
//! The grammar covers what the paper's transformations and benchmarks need:
//! function definitions with CUDA qualifiers, the full C statement set,
//! C expressions with correct precedence (Pratt parsing), `dim3`, kernel
//! launch statements, `__shared__` arrays, and simple `#define` macros.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Parses a translation unit.
///
/// # Errors
///
/// Returns a spanned [`ParseError`] on the first lexical or syntactic
/// problem.
///
/// # Examples
///
/// ```
/// use dp_frontend::parser::parse;
/// let program = parse("__global__ void k(int* p) { p[threadIdx.x] = 1; }").unwrap();
/// assert!(program.function("k").unwrap().is_kernel());
/// ```
pub fn parse(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    Parser::new(tokens).program()
}

/// Parses a single expression (useful for tests and analysis tooling).
///
/// # Errors
///
/// Returns an error if the text is not exactly one expression.
pub fn parse_expr(source: &str) -> Result<Expr> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    let expr = p.expr()?;
    p.expect_eof()?;
    Ok(expr)
}

/// Parses a single statement (useful for tests).
///
/// # Errors
///
/// Returns an error if the text is not exactly one statement.
pub fn parse_stmt(source: &str) -> Result<Stmt> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    let stmt = p.stmt()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected `{p}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.unexpected("expected end of input"))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::new(format!("{expected}, found {}", self.peek()), self.span())
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program> {
        let mut program = Program::new();
        loop {
            match self.peek().clone() {
                TokenKind::Eof => return Ok(program),
                TokenKind::Directive(text) => {
                    self.bump();
                    program.items.push(parse_directive(&text));
                }
                _ => {
                    let func = self.function()?;
                    program.items.push(Item::Function(func));
                }
            }
        }
    }

    fn function(&mut self) -> Result<Function> {
        let start = self.span();
        let mut qual = FnQual::Host;
        loop {
            if self.eat_keyword(Keyword::Global) {
                qual = FnQual::Global;
            } else if self.eat_keyword(Keyword::Device) {
                qual = FnQual::Device;
            } else if self.eat_keyword(Keyword::Host) {
                // `__host__ __device__` keeps the stronger qualifier.
                if qual == FnQual::Host {
                    qual = FnQual::Host;
                }
            } else {
                break;
            }
        }
        let ret = self.ty()?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                if self.eat_keyword(Keyword::Const) {
                    // `const T*` parameters: qualifier is informational.
                }
                let ty = self.ty()?;
                let pname = self.expect_ident()?;
                params.push(Param { ty, name: pname });
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        let span = start.join(self.prev_span());
        if qual == FnQual::Global && ret != Type::Void {
            return Err(ParseError::new(
                format!("kernel `{name}` must return void"),
                span,
            ));
        }
        Ok(Function {
            qual,
            ret,
            name,
            params,
            body,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Keyword(
                Keyword::Void
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Int
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::SizeT
                    | Keyword::Dim3
            )
        )
    }

    fn ty(&mut self) -> Result<Type> {
        let base = match self.peek().clone() {
            TokenKind::Keyword(Keyword::Void) => {
                self.bump();
                Type::Void
            }
            TokenKind::Keyword(Keyword::Bool) => {
                self.bump();
                Type::Bool
            }
            TokenKind::Keyword(Keyword::Char) | TokenKind::Keyword(Keyword::Short) => {
                self.bump();
                Type::Int
            }
            TokenKind::Keyword(Keyword::Signed) => {
                self.bump();
                self.eat_keyword(Keyword::Int);
                Type::Int
            }
            TokenKind::Keyword(Keyword::Int) => {
                self.bump();
                Type::Int
            }
            TokenKind::Keyword(Keyword::SizeT) => {
                self.bump();
                Type::UInt
            }
            TokenKind::Keyword(Keyword::Unsigned) => {
                self.bump();
                if self.eat_keyword(Keyword::Long) {
                    self.eat_keyword(Keyword::Long);
                    self.eat_keyword(Keyword::Int);
                    Type::ULong
                } else {
                    self.eat_keyword(Keyword::Int);
                    Type::UInt
                }
            }
            TokenKind::Keyword(Keyword::Long) => {
                self.bump();
                self.eat_keyword(Keyword::Long);
                self.eat_keyword(Keyword::Int);
                Type::Long
            }
            TokenKind::Keyword(Keyword::Float) => {
                self.bump();
                Type::Float
            }
            TokenKind::Keyword(Keyword::Double) => {
                self.bump();
                Type::Double
            }
            TokenKind::Keyword(Keyword::Dim3) => {
                self.bump();
                Type::Dim3
            }
            TokenKind::Keyword(Keyword::Struct) => {
                return Err(ParseError::new(
                    "struct types are not supported in the CUDA subset",
                    self.span(),
                ))
            }
            _ => return Err(self.unexpected("expected type")),
        };
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) {
                return Ok(stmts);
            }
            if self.peek() == &TokenKind::Eof {
                return Err(self.unexpected("expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let stmts = self.block_body()?;
                Ok(Stmt::new(
                    StmtKind::Block(stmts),
                    start.join(self.prev_span()),
                ))
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::new(StmtKind::Empty, start))
            }
            TokenKind::Keyword(Keyword::If) => self.if_stmt(start),
            TokenKind::Keyword(Keyword::For) => self.for_stmt(start),
            TokenKind::Keyword(Keyword::While) => self.while_stmt(start),
            TokenKind::Keyword(Keyword::Do) => self.do_while_stmt(start),
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.eat_punct(Punct::Semi) {
                    None
                } else {
                    let e = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(e)
                };
                Ok(Stmt::new(
                    StmtKind::Return(value),
                    start.join(self.prev_span()),
                ))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::new(StmtKind::Break, start.join(self.prev_span())))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::new(StmtKind::Continue, start.join(self.prev_span())))
            }
            TokenKind::Keyword(Keyword::Shared) | TokenKind::Keyword(Keyword::Const) => {
                self.decl_stmt(start)
            }
            TokenKind::Keyword(Keyword::Dim3)
                if self.peek_at(1) == &TokenKind::Punct(Punct::LParen) =>
            {
                // `dim3(...)` used as an expression statement (rare).
                self.expr_stmt(start)
            }
            _ if self.at_type_start() => self.decl_stmt(start),
            TokenKind::Ident(_) if self.peek_at(1) == &TokenKind::Punct(Punct::LaunchOpen) => {
                self.launch_stmt(start)
            }
            _ => self.expr_stmt(start),
        }
    }

    fn expr_stmt(&mut self, start: Span) -> Result<Stmt> {
        let expr = self.expr()?;
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::new(
            StmtKind::Expr(expr),
            start.join(self.prev_span()),
        ))
    }

    fn decl_stmt(&mut self, start: Span) -> Result<Stmt> {
        let decl = self.var_decl()?;
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::new(
            StmtKind::Decl(decl),
            start.join(self.prev_span()),
        ))
    }

    /// Parses a declaration without the trailing `;` (shared with for-init).
    fn var_decl(&mut self) -> Result<VarDecl> {
        let mut shared = false;
        let mut is_const = false;
        loop {
            if self.eat_keyword(Keyword::Shared) {
                shared = true;
            } else if self.eat_keyword(Keyword::Const) {
                is_const = true;
            } else {
                break;
            }
        }
        let ty = self.ty()?;
        let mut declarators = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let array_len = if self.eat_punct(Punct::LBracket) {
                let len = self.expr()?;
                self.expect_punct(Punct::RBracket)?;
                Some(len)
            } else {
                None
            };
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            declarators.push(Declarator {
                name,
                array_len,
                init,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(VarDecl {
            ty,
            shared,
            is_const,
            declarators,
        })
    }

    fn if_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.bump(); // if
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_branch = Box::new(self.stmt()?);
        let else_branch = if self.eat_keyword(Keyword::Else) {
            Some(Box::new(self.stmt()?))
        } else {
            None
        };
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            start.join(self.prev_span()),
        ))
    }

    fn for_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.bump(); // for
        self.expect_punct(Punct::LParen)?;
        let init = if self.eat_punct(Punct::Semi) {
            None
        } else if self.at_type_start()
            || matches!(
                self.peek(),
                TokenKind::Keyword(Keyword::Const) | TokenKind::Keyword(Keyword::Shared)
            )
        {
            let d_start = self.span();
            let decl = self.var_decl()?;
            self.expect_punct(Punct::Semi)?;
            Some(Box::new(Stmt::new(
                StmtKind::Decl(decl),
                d_start.join(self.prev_span()),
            )))
        } else {
            let e_start = self.span();
            let e = self.expr()?;
            self.expect_punct(Punct::Semi)?;
            Some(Box::new(Stmt::new(
                StmtKind::Expr(e),
                e_start.join(self.prev_span()),
            )))
        };
        let cond = if self.peek() == &TokenKind::Punct(Punct::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_punct(Punct::Semi)?;
        let step = if self.peek() == &TokenKind::Punct(Punct::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::new(
            StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            start.join(self.prev_span()),
        ))
    }

    fn while_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.bump(); // while
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::new(
            StmtKind::While { cond, body },
            start.join(self.prev_span()),
        ))
    }

    fn do_while_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.bump(); // do
        let body = Box::new(self.stmt()?);
        if !self.eat_keyword(Keyword::While) {
            return Err(self.unexpected("expected `while`"));
        }
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::new(
            StmtKind::DoWhile { body, cond },
            start.join(self.prev_span()),
        ))
    }

    fn launch_stmt(&mut self, start: Span) -> Result<Stmt> {
        let kernel = self.expect_ident()?;
        self.expect_punct(Punct::LaunchOpen)?;
        let grid = self.expr()?;
        self.expect_punct(Punct::Comma)?;
        let block = self.expr()?;
        let shmem = if self.eat_punct(Punct::Comma) {
            Some(self.expr()?)
        } else {
            None
        };
        let stream = if self.eat_punct(Punct::Comma) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_punct(Punct::LaunchClose)?;
        self.expect_punct(Punct::LParen)?;
        let mut args = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::new(
            StmtKind::Launch(LaunchStmt {
                kernel,
                grid,
                block,
                shmem,
                stream,
                args,
            }),
            start.join(self.prev_span()),
        ))
    }

    // ------------------------------------------------------------------
    // Expressions (Pratt)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.expr_bp(0)
    }

    fn expr_bp(&mut self, min_bp: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let (op_bp, right_assoc): (u8, bool) = match self.peek() {
                TokenKind::Punct(Punct::Assign)
                | TokenKind::Punct(Punct::PlusAssign)
                | TokenKind::Punct(Punct::MinusAssign)
                | TokenKind::Punct(Punct::StarAssign)
                | TokenKind::Punct(Punct::SlashAssign)
                | TokenKind::Punct(Punct::PercentAssign)
                | TokenKind::Punct(Punct::AmpAssign)
                | TokenKind::Punct(Punct::PipeAssign)
                | TokenKind::Punct(Punct::CaretAssign)
                | TokenKind::Punct(Punct::ShlAssign)
                | TokenKind::Punct(Punct::ShrAssign) => (2, true),
                TokenKind::Punct(Punct::Question) => (4, true),
                TokenKind::Punct(Punct::OrOr) => (6, false),
                TokenKind::Punct(Punct::AndAnd) => (8, false),
                TokenKind::Punct(Punct::Pipe) => (10, false),
                TokenKind::Punct(Punct::Caret) => (12, false),
                TokenKind::Punct(Punct::Amp) => (14, false),
                TokenKind::Punct(Punct::EqEq) | TokenKind::Punct(Punct::Ne) => (16, false),
                TokenKind::Punct(Punct::Lt)
                | TokenKind::Punct(Punct::Le)
                | TokenKind::Punct(Punct::Gt)
                | TokenKind::Punct(Punct::Ge) => (18, false),
                TokenKind::Punct(Punct::Shl) | TokenKind::Punct(Punct::Shr) => (20, false),
                TokenKind::Punct(Punct::Plus) | TokenKind::Punct(Punct::Minus) => (22, false),
                TokenKind::Punct(Punct::Star)
                | TokenKind::Punct(Punct::Slash)
                | TokenKind::Punct(Punct::Percent) => (24, false),
                _ => break,
            };
            if op_bp < min_bp {
                break;
            }
            let tok = self.bump();
            let next_bp = if right_assoc { op_bp } else { op_bp + 1 };
            lhs = match tok {
                TokenKind::Punct(Punct::Question) => {
                    let then_e = self.expr_bp(0)?;
                    self.expect_punct(Punct::Colon)?;
                    let else_e = self.expr_bp(next_bp)?;
                    let span = lhs.span.join(else_e.span);
                    Expr::new(
                        ExprKind::Ternary(Box::new(lhs), Box::new(then_e), Box::new(else_e)),
                        span,
                    )
                }
                TokenKind::Punct(p) => {
                    if let Some(aop) = assign_op_of(p) {
                        let rhs = self.expr_bp(next_bp)?;
                        let span = lhs.span.join(rhs.span);
                        Expr::new(ExprKind::Assign(aop, Box::new(lhs), Box::new(rhs)), span)
                    } else {
                        let bop = bin_op_of(p).expect("binary operator");
                        let rhs = self.expr_bp(next_bp)?;
                        let span = lhs.span.join(rhs.span);
                        Expr::new(ExprKind::Binary(bop, Box::new(lhs), Box::new(rhs)), span)
                    }
                }
                _ => unreachable!("operator token"),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        let start = self.span();
        let expr = match self.peek().clone() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                let operand = self.unary()?;
                let span = start.join(operand.span);
                Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(operand)), span)
            }
            TokenKind::Punct(Punct::Bang) => {
                self.bump();
                let operand = self.unary()?;
                let span = start.join(operand.span);
                Expr::new(ExprKind::Unary(UnOp::Not, Box::new(operand)), span)
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                let operand = self.unary()?;
                let span = start.join(operand.span);
                Expr::new(ExprKind::Unary(UnOp::BitNot, Box::new(operand)), span)
            }
            TokenKind::Punct(Punct::Star) => {
                self.bump();
                let operand = self.unary()?;
                let span = start.join(operand.span);
                Expr::new(ExprKind::Unary(UnOp::Deref, Box::new(operand)), span)
            }
            TokenKind::Punct(Punct::Amp) => {
                self.bump();
                let operand = self.unary()?;
                let span = start.join(operand.span);
                Expr::new(ExprKind::Unary(UnOp::AddrOf, Box::new(operand)), span)
            }
            TokenKind::Punct(Punct::Plus) => {
                self.bump();
                self.unary()?
            }
            TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                let inc = self.bump() == TokenKind::Punct(Punct::PlusPlus);
                let operand = self.unary()?;
                let span = start.join(operand.span);
                Expr::new(
                    ExprKind::IncDec {
                        inc,
                        prefix: true,
                        operand: Box::new(operand),
                    },
                    span,
                )
            }
            TokenKind::Punct(Punct::LParen) if self.is_cast_start() => {
                self.bump();
                let ty = self.ty()?;
                self.expect_punct(Punct::RParen)?;
                let operand = self.unary()?;
                let span = start.join(operand.span);
                Expr::new(ExprKind::Cast(ty, Box::new(operand)), span)
            }
            _ => self.postfix()?,
        };
        Ok(expr)
    }

    /// After seeing `(`, decides whether a cast follows: `(` type-keyword.
    fn is_cast_start(&self) -> bool {
        matches!(
            self.peek_at(1),
            TokenKind::Keyword(
                Keyword::Void
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Int
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::SizeT
            )
        )
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let span = expr.span.join(self.prev_span());
                    expr = Expr::new(ExprKind::Index(Box::new(expr), Box::new(index)), span);
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let field = self.expect_ident()?;
                    let span = expr.span.join(self.prev_span());
                    expr = Expr::new(ExprKind::Member(Box::new(expr), field), span);
                }
                TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                    let inc = self.bump() == TokenKind::Punct(Punct::PlusPlus);
                    let span = expr.span.join(self.prev_span());
                    expr = Expr::new(
                        ExprKind::IncDec {
                            inc,
                            prefix: false,
                            operand: Box::new(expr),
                        },
                        span,
                    );
                }
                _ => return Ok(expr),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), start))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), start))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(true), start))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(false), start))
            }
            TokenKind::Keyword(Keyword::Dim3) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let mut args = Vec::new();
                if !self.eat_punct(Punct::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_punct(Punct::RParen) {
                            break;
                        }
                        self.expect_punct(Punct::Comma)?;
                    }
                }
                if args.is_empty() || args.len() > 3 {
                    return Err(ParseError::new(
                        "dim3 constructor takes 1 to 3 arguments",
                        start.join(self.prev_span()),
                    ));
                }
                Ok(Expr::new(
                    ExprKind::Dim3Ctor(args),
                    start.join(self.prev_span()),
                ))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    Ok(Expr::new(
                        ExprKind::Call(name, args),
                        start.join(self.prev_span()),
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), start))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let inner = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(inner)
            }
            _ => Err(self.unexpected("expected expression")),
        }
    }
}

fn parse_directive(text: &str) -> Item {
    let mut parts = text.split_whitespace();
    if parts.next() == Some("#define") {
        if let (Some(name), Some(value), None) = (parts.next(), parts.next(), parts.next()) {
            let parsed = if let Some(hex) = value.strip_prefix("0x") {
                i64::from_str_radix(hex, 16).ok()
            } else {
                value.parse::<i64>().ok()
            };
            if let Some(v) = parsed {
                if name.chars().all(|c| c == '_' || c.is_ascii_alphanumeric()) {
                    return Item::Define {
                        name: name.to_string(),
                        value: v,
                    };
                }
            }
        }
    }
    Item::Directive(text.to_string())
}

fn bin_op_of(p: Punct) -> Option<BinOp> {
    Some(match p {
        Punct::Plus => BinOp::Add,
        Punct::Minus => BinOp::Sub,
        Punct::Star => BinOp::Mul,
        Punct::Slash => BinOp::Div,
        Punct::Percent => BinOp::Rem,
        Punct::Lt => BinOp::Lt,
        Punct::Le => BinOp::Le,
        Punct::Gt => BinOp::Gt,
        Punct::Ge => BinOp::Ge,
        Punct::EqEq => BinOp::Eq,
        Punct::Ne => BinOp::Ne,
        Punct::AndAnd => BinOp::LogAnd,
        Punct::OrOr => BinOp::LogOr,
        Punct::Amp => BinOp::BitAnd,
        Punct::Pipe => BinOp::BitOr,
        Punct::Caret => BinOp::BitXor,
        Punct::Shl => BinOp::Shl,
        Punct::Shr => BinOp::Shr,
        _ => return None,
    })
}

fn assign_op_of(p: Punct) -> Option<AssignOp> {
    Some(match p {
        Punct::Assign => AssignOp::Assign,
        Punct::PlusAssign => AssignOp::Add,
        Punct::MinusAssign => AssignOp::Sub,
        Punct::StarAssign => AssignOp::Mul,
        Punct::SlashAssign => AssignOp::Div,
        Punct::PercentAssign => AssignOp::Rem,
        Punct::AmpAssign => AssignOp::And,
        Punct::PipeAssign => AssignOp::Or,
        Punct::CaretAssign => AssignOp::Xor,
        Punct::ShlAssign => AssignOp::Shl,
        Punct::ShrAssign => AssignOp::Shr,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_kernel() {
        let p = parse("__global__ void k(int* out) { out[threadIdx.x] = 1; }").unwrap();
        let f = p.function("k").unwrap();
        assert_eq!(f.qual, FnQual::Global);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].ty, Type::Int.ptr_to());
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn kernel_must_return_void() {
        let err = parse("__global__ int k() { return 1; }").unwrap_err();
        assert!(err.message().contains("must return void"));
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("a + b * c").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_vs_compare() {
        // `a << b < c` parses as `(a << b) < c`.
        let e = parse_expr("a << b < c").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = parse_expr("a = b = c").unwrap();
        match e.kind {
            ExprKind::Assign(AssignOp::Assign, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Assign(AssignOp::Assign, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn ternary_nests() {
        let e = parse_expr("a ? b : c ? d : e").unwrap();
        match e.kind {
            ExprKind::Ternary(_, _, els) => {
                assert!(matches!(els.kind, ExprKind::Ternary(_, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn ceiling_division_expression() {
        // The exact pattern from paper Fig. 4(a).
        let e = parse_expr("(N - 1) / b + 1").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn cast_parses() {
        let e = parse_expr("(float)N / b").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Div, lhs, _) => {
                assert!(matches!(lhs.kind, ExprKind::Cast(Type::Float, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expr_is_not_cast() {
        let e = parse_expr("(N) / b").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Div, lhs, _) => {
                assert_eq!(lhs.kind.as_ident(), Some("N"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dim3_ctor() {
        let e = parse_expr("dim3(a, b, 1)").unwrap();
        match e.kind {
            ExprKind::Dim3Ctor(args) => assert_eq!(args.len(), 3),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(parse_expr("dim3()").is_err());
        assert!(parse_expr("dim3(1,2,3,4)").is_err());
    }

    #[test]
    fn member_access_on_builtins() {
        let e = parse_expr("blockIdx.x * blockDim.x + threadIdx.x").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn launch_statement_full_config() {
        let s = parse_stmt("child<<<gDim, bDim, 0, stream>>>(a, b);").unwrap();
        match s.kind {
            StmtKind::Launch(l) => {
                assert_eq!(l.kernel, "child");
                assert!(l.shmem.is_some());
                assert!(l.stream.is_some());
                assert_eq!(l.args.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn launch_with_expression_config() {
        let s = parse_stmt("child<<<(n + 255) / 256, 256>>>(p, n);").unwrap();
        match s.kind {
            StmtKind::Launch(l) => {
                assert!(matches!(l.grid.kind, ExprKind::Binary(BinOp::Div, _, _)));
                assert_eq!(l.args.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn launch_with_no_args() {
        let s = parse_stmt("k<<<1, 32>>>();").unwrap();
        match s.kind {
            StmtKind::Launch(l) => assert!(l.args.is_empty()),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn for_loop_with_decl_init() {
        let s = parse_stmt("for (int i = 0; i < n; ++i) { sum += i; }").unwrap();
        match s.kind {
            StmtKind::For {
                init, cond, step, ..
            } => {
                assert!(matches!(init.unwrap().kind, StmtKind::Decl(_)));
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn for_loop_all_empty() {
        let s = parse_stmt("for (;;) break;").unwrap();
        match s.kind {
            StmtKind::For {
                init, cond, step, ..
            } => {
                assert!(init.is_none());
                assert!(cond.is_none());
                assert!(step.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dangling_else_binds_to_nearest_if() {
        let s = parse_stmt("if (a) if (b) x = 1; else x = 2;").unwrap();
        match s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert!(else_branch.is_none());
                assert!(matches!(
                    then_branch.kind,
                    StmtKind::If {
                        else_branch: Some(_),
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn multi_declarator_decl() {
        let s = parse_stmt("int a = 1, b, c = a + 2;").unwrap();
        match s.kind {
            StmtKind::Decl(d) => {
                assert_eq!(d.declarators.len(), 3);
                assert!(d.declarators[0].init.is_some());
                assert!(d.declarators[1].init.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn shared_array_decl() {
        let s = parse_stmt("__shared__ float tile[256];").unwrap();
        match s.kind {
            StmtKind::Decl(d) => {
                assert!(d.shared);
                assert_eq!(d.ty, Type::Float);
                assert!(d.declarators[0].array_len.is_some());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unsigned_long_long_type() {
        let p =
            parse("__device__ unsigned long long f(unsigned long long x) { return x; }").unwrap();
        let f = p.function("f").unwrap();
        assert_eq!(f.ret, Type::ULong);
        assert_eq!(f.params[0].ty, Type::ULong);
    }

    #[test]
    fn defines_and_directives() {
        let p =
            parse("#include <cuda.h>\n#define _THRESHOLD 128\n__global__ void k() { }").unwrap();
        assert_eq!(p.define("_THRESHOLD"), Some(128));
        assert!(matches!(p.items[0], Item::Directive(_)));
    }

    #[test]
    fn define_hex() {
        let p = parse("#define MASK 0xFF\n").unwrap();
        assert_eq!(p.define("MASK"), Some(255));
    }

    #[test]
    fn function_like_define_is_directive() {
        let p = parse("#define MAX(a,b) ((a)>(b)?(a):(b))\n").unwrap();
        assert!(matches!(p.items[0], Item::Directive(_)));
    }

    #[test]
    fn syncthreads_is_a_call() {
        let s = parse_stmt("__syncthreads();").unwrap();
        match s.kind {
            StmtKind::Expr(e) => {
                assert!(matches!(e.kind, ExprKind::Call(name, _) if name == "__syncthreads"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn error_spans_point_at_problem() {
        let err = parse("__global__ void k() { int = 3; }").unwrap_err();
        assert!(err.span().start > 0);
        assert!(err.message().contains("expected identifier"));
    }

    #[test]
    fn inc_dec_forms() {
        let post = parse_expr("i++").unwrap();
        assert!(
            matches!(
                post.kind,
                ExprKind::IncDec {
                    inc: true,
                    prefix: false,
                    ..
                }
            ),
            "got {post:?}"
        );
        let pre = parse_expr("--i").unwrap();
        assert!(matches!(
            pre.kind,
            ExprKind::IncDec {
                inc: false,
                prefix: true,
                ..
            }
        ));
    }

    #[test]
    fn address_of_and_deref() {
        let e = parse_expr("*(&x)").unwrap();
        match e.kind {
            ExprKind::Unary(UnOp::Deref, inner) => {
                assert!(matches!(inner.kind, ExprKind::Unary(UnOp::AddrOf, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn comment_only_program() {
        let p = parse("// nothing here\n/* or here */").unwrap();
        assert!(p.items.is_empty());
    }
}
