//! Hand-written lexer for the CUDA-C subset.
//!
//! The lexer produces a flat [`Token`] stream. Comments and whitespace are
//! skipped; preprocessor lines are either parsed (`#define NAME <int>` is
//! understood by the parser) or preserved verbatim as
//! [`TokenKind::Directive`] tokens so a source-to-source pipeline can print
//! them back out.
//!
//! One CUDA-specific wrinkle handled here: `>>>` is only a launch-close token
//! in launch position. The lexer always emits `>>>` as
//! [`Punct::LaunchClose`]; the parser re-splits it when it is actually
//! parsing nested template-free expressions (the subset has no templates, so
//! `>>>` never appears outside launches in valid input).

use crate::error::{ParseError, Result};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Converts CUDA-subset source text into tokens.
///
/// # Examples
///
/// ```
/// use dp_frontend::lexer::lex;
/// let tokens = lex("int x = 42;").unwrap();
/// assert_eq!(tokens.len(), 6); // int, x, =, 42, ;, EOF
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'#' => self.lex_directive(start)?,
                b'0'..=b'9' => self.lex_number(start)?,
                b'.' if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) => {
                    self.lex_number(start)?
                }
                c if c == b'_' || c.is_ascii_alphabetic() => self.lex_word(start),
                b'"' => self.lex_string(start)?,
                b'\'' => self.lex_char(start)?,
                _ => self.lex_punct(start)?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<u8> {
        self.src.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    Span::new(start as u32, self.pos as u32),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes a whole preprocessor line verbatim (handling `\` continuations).
    fn lex_directive(&mut self, start: usize) -> Result<()> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == b'\n' {
                if text.ends_with('\\') {
                    text.pop();
                    self.pos += 1;
                    continue;
                }
                break;
            }
            text.push(c as char);
            self.pos += 1;
        }
        self.push(TokenKind::Directive(text.trim_end().to_string()), start);
        Ok(())
    }

    fn lex_number(&mut self, start: usize) -> Result<()> {
        // Hex integers.
        if self.peek() == Some(b'0')
            && matches!(self.peek_at(1), Some(b'x') | Some(b'X'))
            && self.peek_at(2).is_some_and(|c| c.is_ascii_hexdigit())
        {
            self.pos += 2;
            let digits_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            let value = i64::from_str_radix(text, 16).map_err(|_| {
                ParseError::new(
                    "hexadecimal literal out of range",
                    Span::new(start as u32, self.pos as u32),
                )
            })?;
            self.skip_int_suffix();
            self.push(TokenKind::IntLit(value), start);
            return Ok(());
        }

        let mut is_float = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && self.peek_at(1) != Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut look = 1;
            if matches!(self.peek_at(1), Some(b'+') | Some(b'-')) {
                look = 2;
            }
            if self.peek_at(look).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += look;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float || matches!(self.peek(), Some(b'f') | Some(b'F')) {
            let value: f64 = text.parse().map_err(|_| {
                ParseError::new(
                    "invalid float literal",
                    Span::new(start as u32, self.pos as u32),
                )
            })?;
            // Consume `f`/`F` suffix.
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.pos += 1;
            }
            self.push(TokenKind::FloatLit(value), start);
        } else {
            let value: i64 = text.parse().map_err(|_| {
                ParseError::new(
                    "integer literal out of range",
                    Span::new(start as u32, self.pos as u32),
                )
            })?;
            self.skip_int_suffix();
            self.push(TokenKind::IntLit(value), start);
        }
        Ok(())
    }

    fn skip_int_suffix(&mut self) {
        while matches!(
            self.peek(),
            Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')
        ) {
            self.pos += 1;
        }
    }

    fn lex_word(&mut self, start: usize) {
        while self
            .peek()
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let kind = match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        };
        self.push(kind, start);
    }

    /// String literals only appear in directives/printf-style calls we don't
    /// model; lex and discard content, emitting an identifier-like token so
    /// the parser can give a precise error.
    fn lex_string(&mut self, start: usize) -> Result<()> {
        self.pos += 1;
        while let Some(c) = self.bump() {
            match c {
                b'"' => {
                    return Err(ParseError::new(
                        "string literals are not supported in the CUDA subset",
                        Span::new(start as u32, self.pos as u32),
                    ))
                }
                b'\\' => {
                    self.pos += 1;
                }
                _ => {}
            }
        }
        Err(ParseError::new(
            "unterminated string literal",
            Span::new(start as u32, self.pos as u32),
        ))
    }

    fn lex_char(&mut self, start: usize) -> Result<()> {
        self.pos += 1;
        let mut value = None;
        while let Some(c) = self.bump() {
            match c {
                b'\'' => {
                    return match value {
                        Some(v) => {
                            self.push(TokenKind::IntLit(v), start);
                            Ok(())
                        }
                        None => Err(ParseError::new(
                            "empty character literal",
                            Span::new(start as u32, self.pos as u32),
                        )),
                    };
                }
                b'\\' => {
                    let esc = self.bump().ok_or_else(|| {
                        ParseError::new(
                            "unterminated character literal",
                            Span::new(start as u32, self.pos as u32),
                        )
                    })?;
                    value = Some(match esc {
                        b'n' => b'\n' as i64,
                        b't' => b'\t' as i64,
                        b'0' => 0,
                        b'\\' => b'\\' as i64,
                        b'\'' => b'\'' as i64,
                        other => other as i64,
                    });
                }
                c => value = Some(c as i64),
            }
        }
        Err(ParseError::new(
            "unterminated character literal",
            Span::new(start as u32, self.pos as u32),
        ))
    }

    fn lex_punct(&mut self, start: usize) -> Result<()> {
        use Punct::*;
        // Maximal munch over explicit lookahead.
        let c0 = self.peek().unwrap();
        let c1 = self.peek_at(1);
        let c2 = self.peek_at(2);
        let (punct, len) = match (c0, c1, c2) {
            (b'<', Some(b'<'), Some(b'<')) => (LaunchOpen, 3),
            (b'>', Some(b'>'), Some(b'>')) => (LaunchClose, 3),
            (b'<', Some(b'<'), Some(b'=')) => (ShlAssign, 3),
            (b'>', Some(b'>'), Some(b'=')) => (ShrAssign, 3),
            (b'<', Some(b'<'), _) => (Shl, 2),
            (b'>', Some(b'>'), _) => (Shr, 2),
            (b'<', Some(b'='), _) => (Le, 2),
            (b'>', Some(b'='), _) => (Ge, 2),
            (b'=', Some(b'='), _) => (EqEq, 2),
            (b'!', Some(b'='), _) => (Ne, 2),
            (b'&', Some(b'&'), _) => (AndAnd, 2),
            (b'|', Some(b'|'), _) => (OrOr, 2),
            (b'+', Some(b'+'), _) => (PlusPlus, 2),
            (b'-', Some(b'-'), _) => (MinusMinus, 2),
            (b'+', Some(b'='), _) => (PlusAssign, 2),
            (b'-', Some(b'='), _) => (MinusAssign, 2),
            (b'*', Some(b'='), _) => (StarAssign, 2),
            (b'/', Some(b'='), _) => (SlashAssign, 2),
            (b'%', Some(b'='), _) => (PercentAssign, 2),
            (b'&', Some(b'='), _) => (AmpAssign, 2),
            (b'|', Some(b'='), _) => (PipeAssign, 2),
            (b'^', Some(b'='), _) => (CaretAssign, 2),
            (b'-', Some(b'>'), _) => (Arrow, 2),
            (b'<', _, _) => (Lt, 1),
            (b'>', _, _) => (Gt, 1),
            (b'=', _, _) => (Assign, 1),
            (b'+', _, _) => (Plus, 1),
            (b'-', _, _) => (Minus, 1),
            (b'*', _, _) => (Star, 1),
            (b'/', _, _) => (Slash, 1),
            (b'%', _, _) => (Percent, 1),
            (b'&', _, _) => (Amp, 1),
            (b'|', _, _) => (Pipe, 1),
            (b'^', _, _) => (Caret, 1),
            (b'~', _, _) => (Tilde, 1),
            (b'!', _, _) => (Bang, 1),
            (b'?', _, _) => (Question, 1),
            (b':', _, _) => (Colon, 1),
            (b';', _, _) => (Semi, 1),
            (b',', _, _) => (Comma, 1),
            (b'.', _, _) => (Dot, 1),
            (b'(', _, _) => (LParen, 1),
            (b')', _, _) => (RParen, 1),
            (b'{', _, _) => (LBrace, 1),
            (b'}', _, _) => (RBrace, 1),
            (b'[', _, _) => (LBracket, 1),
            (b']', _, _) => (RBracket, 1),
            _ => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", c0 as char),
                    Span::new(start as u32, start as u32 + 1),
                ))
            }
        };
        self.pos += len;
        self.push(TokenKind::Punct(punct), start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_source_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }

    #[test]
    fn integers_and_floats() {
        assert_eq!(
            kinds("42 0x1F 1.5 2e3 7f 3.0f 1e-2"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::IntLit(31),
                TokenKind::FloatLit(1.5),
                TokenKind::FloatLit(2000.0),
                TokenKind::FloatLit(7.0),
                TokenKind::FloatLit(3.0),
                TokenKind::FloatLit(0.01),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn integer_suffixes_are_skipped() {
        assert_eq!(
            kinds("1u 2U 3l 4LL 5ull"),
            vec![
                TokenKind::IntLit(1),
                TokenKind::IntLit(2),
                TokenKind::IntLit(3),
                TokenKind::IntLit(4),
                TokenKind::IntLit(5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("__global__ foo int intx"),
            vec![
                TokenKind::Keyword(Keyword::Global),
                TokenKind::Ident("foo".into()),
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("intx".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn launch_brackets() {
        assert_eq!(
            kinds("k<<<g, b>>>(x);"),
            vec![
                TokenKind::Ident("k".into()),
                TokenKind::Punct(Punct::LaunchOpen),
                TokenKind::Ident("g".into()),
                TokenKind::Punct(Punct::Comma),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(Punct::LaunchClose),
                TokenKind::Punct(Punct::LParen),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::RParen),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch_of_shifts_and_compares() {
        assert_eq!(
            kinds("a<<b >>c <= >= == != && ||"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::Shl),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(Punct::Shr),
                TokenKind::Ident("c".into()),
                TokenKind::Punct(Punct::Le),
                TokenKind::Punct(Punct::Ge),
                TokenKind::Punct(Punct::EqEq),
                TokenKind::Punct(Punct::Ne),
                TokenKind::Punct(Punct::AndAnd),
                TokenKind::Punct(Punct::OrOr),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line comment\n b /* block \n comment */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("a /* oops").is_err());
    }

    #[test]
    fn directives_are_verbatim() {
        let toks = kinds("#include <cuda.h>\n#define N 5\nint x;");
        assert_eq!(toks[0], TokenKind::Directive("#include <cuda.h>".into()));
        assert_eq!(toks[1], TokenKind::Directive("#define N 5".into()));
    }

    #[test]
    fn directive_with_continuation() {
        let toks = kinds("#define M(a) \\\n  (a + 1)\nx");
        assert_eq!(
            toks[0],
            TokenKind::Directive("#define M(a)   (a + 1)".into())
        );
        assert_eq!(toks[1], TokenKind::Ident("x".into()));
    }

    #[test]
    fn char_literals_become_ints() {
        assert_eq!(
            kinds("'a' '\\n' '\\0'"),
            vec![
                TokenKind::IntLit(97),
                TokenKind::IntLit(10),
                TokenKind::IntLit(0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_literal_is_rejected() {
        let err = lex("printf(\"hi\")").unwrap_err();
        assert!(err.message().contains("string literals"));
    }

    #[test]
    fn unexpected_character_errors_with_span() {
        let err = lex("int @x;").unwrap_err();
        assert!(err.message().contains('@'));
        assert_eq!(err.span().start, 4);
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }
}
