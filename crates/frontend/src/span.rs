//! Byte-offset source spans used by every token and AST node.

use std::fmt;

/// A half-open byte range `[start, end)` into the original source text.
///
/// Spans survive transformation passes: nodes synthesized by a pass carry
/// [`Span::SYNTH`] so diagnostics can distinguish user code from generated
/// code.
///
/// # Examples
///
/// ```
/// use dp_frontend::Span;
/// let s = Span::new(3, 7);
/// assert_eq!(s.len(), 4);
/// assert!(!s.is_synthetic());
/// assert!(Span::SYNTH.is_synthetic());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Span used for nodes synthesized by transformation passes.
    pub const SYNTH: Span = Span {
        start: u32::MAX,
        end: u32::MAX,
    };

    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// Length of the span in bytes. Synthetic spans have length 0.
    pub fn len(&self) -> u32 {
        if self.is_synthetic() {
            0
        } else {
            self.end - self.start
        }
    }

    /// Whether the span is empty (including the synthetic span).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this span marks compiler-generated code.
    pub fn is_synthetic(&self) -> bool {
        *self == Span::SYNTH
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Joining with a synthetic span yields the non-synthetic operand.
    pub fn join(self, other: Span) -> Span {
        if self.is_synthetic() {
            return other;
        }
        if other.is_synthetic() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Extracts the text this span covers from `source`.
    ///
    /// Returns an empty string for synthetic or out-of-range spans.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        if self.is_synthetic() || self.end as usize > source.len() {
            ""
        } else {
            &source[self.start as usize..self.end as usize]
        }
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::SYNTH
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<generated>")
        } else {
            write!(f, "{}..{}", self.start, self.end)
        }
    }
}

/// 1-based line/column position, computed lazily for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Computes the [`LineCol`] of a byte offset within `source`.
///
/// Offsets past the end of the source saturate at the final position.
///
/// # Examples
///
/// ```
/// use dp_frontend::span::line_col;
/// let lc = line_col("ab\ncd", 3);
/// assert_eq!((lc.line, lc.col), (2, 1));
/// ```
pub fn line_col(source: &str, offset: u32) -> LineCol {
    let offset = (offset as usize).min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (i, b) in source.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_len() {
        let s = Span::new(2, 5);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(Span::new(4, 4).len(), 0);
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn reversed_span_panics() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn synth_is_default_and_empty() {
        assert_eq!(Span::default(), Span::SYNTH);
        assert!(Span::SYNTH.is_empty());
        assert_eq!(Span::SYNTH.to_string(), "<generated>");
    }

    #[test]
    fn join_covers_both() {
        let a = Span::new(2, 4);
        let b = Span::new(6, 9);
        assert_eq!(a.join(b), Span::new(2, 9));
        assert_eq!(b.join(a), Span::new(2, 9));
    }

    #[test]
    fn join_with_synth_keeps_real_span() {
        let a = Span::new(1, 3);
        assert_eq!(a.join(Span::SYNTH), a);
        assert_eq!(Span::SYNTH.join(a), a);
        assert_eq!(Span::SYNTH.join(Span::SYNTH), Span::SYNTH);
    }

    #[test]
    fn text_extraction() {
        let src = "hello world";
        assert_eq!(Span::new(0, 5).text(src), "hello");
        assert_eq!(Span::new(6, 11).text(src), "world");
        assert_eq!(Span::SYNTH.text(src), "");
        assert_eq!(Span::new(0, 100).text(src), "");
    }

    #[test]
    fn line_col_basic() {
        let src = "int x;\nint y;\n";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 4), LineCol { line: 1, col: 5 });
        assert_eq!(line_col(src, 7), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 11), LineCol { line: 2, col: 5 });
    }

    #[test]
    fn line_col_saturates() {
        let lc = line_col("ab", 99);
        assert_eq!(lc, LineCol { line: 1, col: 3 });
    }
}
