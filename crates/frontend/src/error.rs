//! Frontend error types with source spans.

use crate::span::{line_col, Span};
use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing CUDA-subset source.
///
/// Implements [`std::error::Error`] and renders as
/// `parse error at <line>:<col>: <message>` when formatted with a source via
/// [`ParseError::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates a new error covering `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable message (lowercase, no trailing punctuation).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span the error points at.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the error with line/column information resolved against
    /// `source`, including the offending line of text.
    pub fn render(&self, source: &str) -> String {
        if self.span.is_synthetic() {
            return format!("parse error: {}", self.message);
        }
        let lc = line_col(source, self.span.start);
        let line_text = source
            .lines()
            .nth((lc.line - 1) as usize)
            .unwrap_or_default();
        format!(
            "parse error at {lc}: {}\n  | {line_text}\n  | {:>width$}",
            self.message,
            "^",
            width = lc.col as usize
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_synthetic() {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(
                f,
                "parse error at byte {}: {}",
                self.span.start, self.message
            )
        }
    }
}

impl Error for ParseError {}

/// Convenience alias for frontend results.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", Span::new(4, 5));
        assert_eq!(e.to_string(), "parse error at byte 4: unexpected token");
        assert_eq!(e.message(), "unexpected token");
        assert_eq!(e.span(), Span::new(4, 5));
    }

    #[test]
    fn render_points_at_column() {
        let src = "int x\nint y;\n";
        let e = ParseError::new("expected `;`", Span::new(4, 5));
        let rendered = e.render(src);
        assert!(rendered.contains("1:5"), "rendered: {rendered}");
        assert!(rendered.contains("int x"));
    }

    #[test]
    fn render_synthetic_has_no_location() {
        let e = ParseError::new("boom", Span::SYNTH);
        assert_eq!(e.render("src"), "parse error: boom");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}
