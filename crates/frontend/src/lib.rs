//! # dp-frontend
//!
//! Frontend for the CUDA-C subset used by the dynamic-parallelism
//! optimization framework (a Rust reproduction of *"A Compiler Framework for
//! Optimizing Dynamic Parallelism on GPUs"*, CGO 2022).
//!
//! The crate provides:
//!
//! - [`lexer::lex`] — hand-written lexer producing [`token::Token`]s,
//! - [`parser::parse`] — recursive-descent parser producing an [`ast::Program`],
//! - [`printer::print_program`] — pretty-printer back to `.cu`-subset text,
//! - [`visit`] — AST walkers shared by the analyses and passes.
//!
//! Together these make each optimization a *source-to-source* stage exactly
//! like the paper's Clang passes: `.cu` text in, `.cu` text out, composable
//! in any order (paper Section VI).
//!
//! ## Example
//!
//! ```
//! use dp_frontend::{parser::parse, printer::print_program};
//!
//! let source = "__global__ void child(int* data, int n) { \
//!                   int i = blockIdx.x * blockDim.x + threadIdx.x; \
//!                   if (i < n) { data[i] = i; } }";
//! let program = parse(source)?;
//! let kernel = program.function("child").unwrap();
//! assert!(kernel.is_kernel());
//! let printed = print_program(&program);
//! assert!(printed.contains("__global__"));
//! # Ok::<(), dp_frontend::ParseError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{
    AssignOp, BinOp, CodeOrigin, Declarator, Expr, ExprKind, FnQual, Function, Item, LaunchStmt,
    Param, Program, Stmt, StmtKind, Type, UnOp, VarDecl,
};
pub use error::ParseError;
pub use parser::parse;
pub use printer::print_program;
pub use span::Span;
