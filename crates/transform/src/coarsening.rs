//! The coarsening transformation (paper Section IV, Fig. 6).
//!
//! Each coarsened child block executes the work of `_CFACTOR` original child
//! blocks through a block-stride loop. The child kernel gains a trailing
//! parameter carrying the original (uncoarsened) grid dimension, and every
//! launch site divides its grid dimension by the factor.
//!
//! Deviation from Fig. 6 noted in DESIGN.md: since only the x-dimension is
//! coarsened (as in the paper's example and evaluation), the original grid
//! dimension is passed as a scalar `int` rather than a `dim3`. This keeps
//! the aggregation pass composable (all child arguments stay single words)
//! without changing 1-D semantics.

use crate::manifest::{CoarsenSiteMeta, Diagnostic, TransformManifest};
use crate::util::*;
use dp_frontend::ast::*;
use dp_frontend::visit::{for_each_stmt, replace_builtin_member};
use std::collections::HashSet;

/// Name of the compile-time coarsening-factor macro.
pub const CFACTOR_MACRO: &str = "_CFACTOR";

/// Applies coarsening to every child kernel that is dynamically launched.
///
/// Children that cannot be coarsened (undefined, use `gridDim` as a whole
/// value, or are launched with a multi-dimensional grid) are skipped with a
/// diagnostic.
pub fn apply(program: &mut Program, factor: i64) -> TransformManifest {
    let mut manifest = TransformManifest::new();
    program.set_define(CFACTOR_MACRO, factor);

    // Candidate children: kernels launched from device code.
    let sites = dp_analysis::launch_sites(program);
    let mut children: Vec<String> = Vec::new();
    for site in &sites {
        if site.from_device && !children.contains(&site.kernel) {
            children.push(site.kernel.clone());
        }
    }

    for child in children {
        if let Err(diag) = coarsen_child(program, &child, &sites) {
            manifest.diagnostics.push(diag);
            continue;
        }
        rewrite_launch_sites(program, &child);
        manifest.coarsen_sites.push(CoarsenSiteMeta {
            child: child.clone(),
            factor,
        });
    }
    manifest
}

/// Checks preconditions and rewrites the child kernel in place.
fn coarsen_child(
    program: &mut Program,
    child: &str,
    sites: &[dp_analysis::LaunchSite],
) -> Result<(), Diagnostic> {
    let Some(child_fn) = program.function(child) else {
        return Err(diag(child, "child kernel is not defined"));
    };
    if uses_builtin_whole(&child_fn.body, "gridDim") {
        return Err(diag(
            child,
            "child uses gridDim as a whole value; x-dimension coarsening would be unsound",
        ));
    }
    // Every launch site must have a 1-D (int-like) grid expression.
    for site in sites.iter().filter(|s| s.kernel == child) {
        let parent = program.function(&site.parent).expect("site parent exists");
        let mut ok = true;
        for stmt in &parent.body {
            for_each_stmt(stmt, &mut |s| {
                if let StmtKind::Launch(l) = &s.kind {
                    if l.kernel == child && !grid_is_one_dimensional(&l.grid) {
                        ok = false;
                    }
                }
            });
        }
        if !ok {
            return Err(diag(
                child,
                "launch site uses a multi-dimensional grid; only x-dimension coarsening is supported",
            ));
        }
    }

    let child_fn = program.function_mut(child).expect("checked above");
    let used = idents_in_function(child_fn);
    let g = fresh_name("_c_gDim", &used);
    let bx = fresh_name("_c_bx", &used);

    let mut body = std::mem::take(&mut child_fn.body);
    for stmt in &mut body {
        replace_builtin_member(stmt, "blockIdx", "x", &bx);
        replace_builtin_member(stmt, "gridDim", "x", &g);
    }
    child_fn.params.push(Param {
        ty: Type::Int,
        name: g.clone(),
    });

    if contains_return(&body) {
        // `return` would abort the remaining coarsening iterations, so the
        // body moves to a device function (per-original-block semantics).
        let body_name = format!("_{child}_coarsen_body");
        let mut body_params = child_fn.params.clone();
        body_params.push(Param {
            ty: Type::Int,
            name: bx.clone(),
        });
        let params_src = params_source(&body_params);
        let body_fn_src = format!("__device__ void {body_name}({params_src}) {{ }}");
        let body_prog = dp_frontend::parse(&body_fn_src).expect("internal template");
        let Item::Function(mut body_fn) = body_prog.items.into_iter().next().unwrap() else {
            unreachable!()
        };
        body_fn.body = body;

        let fwd = args_source(&body_params);
        let loop_src = format!(
            "for (int {bx} = blockIdx.x; {bx} < {g}; {bx} += gridDim.x) {{ {body_name}({fwd}); }}"
        );
        let mut loop_stmts = parse_template_stmts(&loop_src);
        tag_origin(&mut loop_stmts, CodeOrigin::CoarsenLoop);
        let child_fn = program.function_mut(child).expect("still present");
        child_fn.body = loop_stmts;

        // Insert the body function before the child kernel.
        let pos = program
            .items
            .iter()
            .position(|item| matches!(item, Item::Function(f) if f.name == child))
            .unwrap_or(0);
        program.items.insert(pos, Item::Function(body_fn));
    } else {
        let loop_src = format!(
            "for (int {bx} = blockIdx.x; {bx} < {g}; {bx} += gridDim.x) {{ {BODY_MARKER}(); }}"
        );
        let mut loop_stmts = parse_template_stmts(&loop_src);
        tag_origin(&mut loop_stmts, CodeOrigin::CoarsenLoop);
        assert!(splice_body(&mut loop_stmts, body));
        child_fn.body = loop_stmts;
    }
    Ok(())
}

/// Rewrites every launch of `child` (device and host) to launch the
/// coarsened grid and pass the original grid dimension (Fig. 6 lines 08–10).
fn rewrite_launch_sites(program: &mut Program, child: &str) {
    let mut counter = 0usize;
    let func_names: Vec<String> = program.functions().map(|f| f.name.clone()).collect();
    for name in func_names {
        let func = program.function_mut(&name).expect("function exists");
        for stmt in &mut func.body {
            dp_frontend::visit::walk_stmt_mut(stmt, &mut |s| {
                let StmtKind::Launch(launch) = &mut s.kind else {
                    return;
                };
                if launch.kernel != child {
                    return;
                }
                let g_name = format!("_c_gDim{counter}");
                let cg_name = format!("_c_cgDim{counter}");
                counter += 1;

                let grid_int = one_dimensional_grid(&launch.grid);
                let mut launch_new = launch.clone();
                launch_new.grid = Expr::ident(&cg_name, CodeOrigin::CoarsenLoop);
                launch_new
                    .args
                    .push(Expr::ident(&g_name, CodeOrigin::CoarsenLoop));

                let g_decl = Stmt::decl(
                    Type::Int,
                    g_name.clone(),
                    Some(grid_int),
                    CodeOrigin::CoarsenLoop,
                );
                let cg_init = parse_template_expr(&format!(
                    "({g_name} + {CFACTOR_MACRO} - 1) / {CFACTOR_MACRO}"
                ));
                let mut cg_decl =
                    Stmt::decl(Type::Int, cg_name, Some(cg_init), CodeOrigin::CoarsenLoop);
                cg_decl.origin = CodeOrigin::CoarsenLoop;
                tag_stmt(&mut cg_decl);

                let launch_span = s.span;
                let mut launch_stmt = Stmt::new(StmtKind::Launch(launch_new), launch_span);
                launch_stmt.origin = CodeOrigin::Original;
                s.kind = StmtKind::Block(vec![g_decl, cg_decl, launch_stmt]);
                s.origin = CodeOrigin::CoarsenLoop;
            });
        }
    }
}

fn tag_stmt(stmt: &mut Stmt) {
    let mut v = vec![std::mem::replace(
        stmt,
        Stmt::synth(StmtKind::Empty, CodeOrigin::CoarsenLoop),
    )];
    tag_origin(&mut v, CodeOrigin::CoarsenLoop);
    *stmt = v.pop().unwrap();
}

/// Whether a grid expression denotes a 1-D grid we can coarsen.
fn grid_is_one_dimensional(grid: &Expr) -> bool {
    match &grid.kind {
        ExprKind::Dim3Ctor(args) => args
            .iter()
            .skip(1)
            .all(|a| matches!(a.kind, ExprKind::IntLit(1))),
        _ => true, // int expression
    }
}

/// The x-extent of a 1-D grid expression.
fn one_dimensional_grid(grid: &Expr) -> Expr {
    match &grid.kind {
        ExprKind::Dim3Ctor(args) => args[0].clone(),
        _ => grid.clone(),
    }
}

/// Identifier prefixes reserved by this pass (exposed for tests).
pub fn reserved_prefixes() -> HashSet<&'static str> {
    ["_c_gDim", "_c_bx", "_c_cgDim"].into_iter().collect()
}

fn diag(child: &str, message: &str) -> Diagnostic {
    Diagnostic {
        pass: "coarsening",
        function: child.to_string(),
        message: message.to_string(),
        span: dp_frontend::Span::SYNTH,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frontend::printer::print_program;

    const BASIC: &str = "\
__global__ void child(int* data, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        data[i] = data[i] + 1;
    }
}

__global__ void parent(int* data, int* offsets, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int count = offsets[v + 1] - offsets[v];
        child<<<(count + 31) / 32, 32>>>(data, count);
    }
}
";

    #[test]
    fn coarsens_child_and_rewrites_launch() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        let manifest = apply(&mut p, 8);
        assert_eq!(manifest.coarsen_sites.len(), 1);
        assert!(manifest.diagnostics.is_empty());
        assert_eq!(p.define("_CFACTOR"), Some(8));

        let child = p.function("child").unwrap();
        assert_eq!(child.params.last().unwrap().name, "_c_gDim");
        assert_eq!(child.params.last().unwrap().ty, Type::Int);

        let out = print_program(&p);
        assert!(
            out.contains("for (int _c_bx = blockIdx.x; _c_bx < _c_gDim; _c_bx += gridDim.x)"),
            "stride loop missing:\n{out}"
        );
        assert!(
            out.contains("(_c_gDim0 + _CFACTOR - 1) / _CFACTOR"),
            "{out}"
        );
        assert!(
            out.contains("child<<<_c_cgDim0, 32>>>(data, count, _c_gDim0);"),
            "{out}"
        );
        dp_frontend::parse(&out).unwrap();
    }

    #[test]
    fn body_blockidx_uses_are_replaced() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        apply(&mut p, 4);
        let child = p.function("child").unwrap();
        let mut printed = String::new();
        dp_frontend::printer::print_function(&mut printed, child);
        // The stride loop header still reads blockIdx.x/gridDim.x; the body
        // must not.
        let body_only = printed
            .split("for (")
            .nth(1)
            .unwrap()
            .split_once('{')
            .unwrap()
            .1;
        assert!(!body_only.contains("blockIdx.x"), "{printed}");
        assert!(body_only.contains("_c_bx"), "{printed}");
    }

    #[test]
    fn child_with_return_gets_body_function() {
        let src = "\
__global__ void child(int* d, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) { return; }
    d[i] = i;
}
__global__ void parent(int* d, int n) {
    child<<<(n + 63) / 64, 64>>>(d, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 16);
        assert_eq!(manifest.coarsen_sites.len(), 1);
        assert!(p.function("_child_coarsen_body").is_some());
        let out = print_program(&p);
        assert!(
            out.contains("_child_coarsen_body(d, n, _c_gDim, _c_bx);"),
            "{out}"
        );
    }

    #[test]
    fn whole_griddim_use_is_rejected() {
        let src = "\
__device__ int f(dim3 g) { return g.x; }
__global__ void child(int* d) { d[0] = f(gridDim); }
__global__ void parent(int* d, int n) {
    child<<<(n + 31) / 32, 32>>>(d);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let before = print_program(&p);
        let manifest = apply(&mut p, 8);
        assert!(manifest.coarsen_sites.is_empty());
        assert_eq!(manifest.diagnostics.len(), 1);
        let after = print_program(&p).replace("#define _CFACTOR 8\n", "");
        assert_eq!(after.trim_start(), before.trim_start());
    }

    #[test]
    fn multi_dimensional_grid_is_rejected() {
        let src = "\
__global__ void child(int* d) { d[blockIdx.x] = blockIdx.y; }
__global__ void parent(int* d, int n) {
    child<<<dim3((n + 31) / 32, 4, 1), 32>>>(d);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 8);
        assert!(manifest.coarsen_sites.is_empty());
        assert_eq!(manifest.diagnostics.len(), 1);
        assert!(manifest.diagnostics[0]
            .message
            .contains("multi-dimensional"));
    }

    #[test]
    fn dim3_with_unit_yz_is_accepted() {
        let src = "\
__global__ void child(int* d, int n) { if (blockIdx.x < n) { d[blockIdx.x] = 1; } }
__global__ void parent(int* d, int n) {
    child<<<dim3((n + 31) / 32, 1, 1), 32>>>(d, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 8);
        assert_eq!(manifest.coarsen_sites.len(), 1);
        let out = print_program(&p);
        assert!(out.contains("int _c_gDim0 = (n + 31) / 32;"), "{out}");
    }

    #[test]
    fn host_only_kernels_are_untouched() {
        let src = "\
__global__ void k(int* d, int n) { d[blockIdx.x] = n; }
void host_main(int* d, int n) {
    k<<<(n + 31) / 32, 32>>>(d, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 8);
        assert!(manifest.coarsen_sites.is_empty());
        let k = p.function("k").unwrap();
        assert_eq!(
            k.params.len(),
            2,
            "host-only kernel must keep its signature"
        );
    }

    #[test]
    fn multiple_sites_of_same_child_all_rewritten() {
        let src = "\
__global__ void child(int* d, int n) { d[blockIdx.x] = n; }
__global__ void parent(int* d, int n, int m) {
    child<<<(n + 31) / 32, 32>>>(d, n);
    child<<<(m + 31) / 32, 32>>>(d, m);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 2);
        assert_eq!(manifest.coarsen_sites.len(), 1);
        let out = print_program(&p);
        assert!(out.contains("_c_gDim0"));
        assert!(out.contains("_c_gDim1"));
    }

    #[test]
    fn name_collision_with_user_code_is_avoided() {
        let src = "\
__global__ void child(int* d, int _c_bx) { d[blockIdx.x] = _c_bx; }
__global__ void parent(int* d, int n) {
    child<<<(n + 31) / 32, 32>>>(d, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        apply(&mut p, 8);
        let child = p.function("child").unwrap();
        let mut printed = String::new();
        dp_frontend::printer::print_function(&mut printed, child);
        assert!(printed.contains("_c_bx_2"), "{printed}");
    }
}
