//! The pass pipeline (paper Section VI, Fig. 8a).
//!
//! The three passes are independent source-to-source stages and can be
//! composed in any order; the default order is thresholding → coarsening →
//! aggregation, for the reasons the paper gives:
//!
//! - thresholding before coarsening, because coarsening rewrites the grid
//!   dimension and would obscure the ceiling-division pattern;
//! - thresholding before aggregation, because small grids are easier to
//!   isolate before they are combined into larger ones;
//! - coarsening before aggregation, so the disaggregation logic lands
//!   outside the coarsening loop and is amortized across original blocks.

use crate::config::OptConfig;
use crate::manifest::TransformManifest;
use crate::{aggregation, coarsening, thresholding};
use dp_frontend::ast::Program;

/// Applies the configured passes in the paper's default order.
///
/// # Examples
///
/// ```
/// use dp_transform::{apply_pipeline, OptConfig};
/// let mut program = dp_frontend::parse(
///     "__global__ void c(int* d, int n) { if (blockIdx.x < n) { d[blockIdx.x] = n; } }\n\
///      __global__ void p(int* d, int n) { c<<<(n + 31) / 32, 32>>>(d, n); }",
/// ).unwrap();
/// let manifest = apply_pipeline(&mut program, &OptConfig::all());
/// assert_eq!(manifest.threshold_sites.len(), 1);
/// assert_eq!(manifest.coarsen_sites.len(), 1);
/// assert_eq!(manifest.agg_sites.len(), 1);
/// ```
pub fn apply_pipeline(program: &mut Program, config: &OptConfig) -> TransformManifest {
    let mut manifest = TransformManifest::new();
    if let Some(threshold) = config.threshold {
        manifest.merge(thresholding::apply(program, threshold));
    }
    if let Some(factor) = config.coarsen_factor {
        manifest.merge(coarsening::apply(program, factor));
    }
    if let Some(agg) = &config.aggregation {
        manifest.merge(aggregation::apply(program, agg));
    }
    manifest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AggConfig, AggGranularity};
    use dp_frontend::printer::print_program;

    const BASIC: &str = "\
__global__ void child(int* data, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        data[i] = data[i] + 1;
    }
}

__global__ void parent(int* data, int* offsets, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int count = offsets[v + 1] - offsets[v];
        child<<<(count + 31) / 32, 32>>>(data, count);
    }
}
";

    #[test]
    fn full_pipeline_composes() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        let m = apply_pipeline(
            &mut p,
            &OptConfig::none()
                .threshold(64)
                .coarsen_factor(4)
                .aggregation(AggConfig::new(AggGranularity::MultiBlock(8))),
        );
        assert_eq!(m.threshold_sites.len(), 1);
        assert_eq!(m.coarsen_sites.len(), 1);
        assert_eq!(m.agg_sites.len(), 1);

        let out = print_program(&p);
        // Thresholding artifacts.
        assert!(out.contains("_THRESHOLD"), "{out}");
        assert!(out.contains("child_serial"), "{out}");
        // Coarsening artifacts.
        assert!(out.contains("_CFACTOR"), "{out}");
        assert!(out.contains("_c_bx"), "{out}");
        // Aggregation artifacts on the *coarsened* child.
        assert!(out.contains("child_agg"), "{out}");
        assert!(out.contains("_AGG_GRANULARITY"), "{out}");
        // The aggregated child carries the coarsening parameter array
        // (coarsened child has 3 params, so 3 argument arrays).
        let agg = p.function("child_agg").unwrap();
        assert_eq!(
            agg.params.len(),
            3 + 3, // 3 arg arrays + scan + bArr + np
        );
        dp_frontend::parse(&out).unwrap();
    }

    #[test]
    fn pipeline_with_no_passes_is_identity() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        let before = print_program(&p);
        let m = apply_pipeline(&mut p, &OptConfig::none());
        assert_eq!(m, TransformManifest::new());
        assert_eq!(print_program(&p), before);
    }

    #[test]
    fn passes_commute_without_errors() {
        // The paper: "any combination of them could be applied in any order
        // while generating correct code." Apply C then T (reverse order) and
        // check both still fire.
        let mut p = dp_frontend::parse(BASIC).unwrap();
        let mc = coarsening::apply(&mut p, 4);
        assert_eq!(mc.coarsen_sites.len(), 1);
        let mt = thresholding::apply(&mut p, 64);
        assert_eq!(mt.threshold_sites.len(), 1, "diags: {:?}", mt.diagnostics);
        let out = print_program(&p);
        // The serial function now serializes the *coarsened* child.
        let serial = p.function("child_serial").unwrap();
        assert_eq!(serial.params.len(), 3 + 2); // coarsened params + dims
        dp_frontend::parse(&out).unwrap();
    }

    #[test]
    fn aggregation_after_thresholding_sees_guarded_launch() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        apply_pipeline(
            &mut p,
            &OptConfig::none()
                .threshold(64)
                .aggregation(AggConfig::new(AggGranularity::Block)),
        );
        let out = print_program(&p);
        // The launch inside the threshold's then-branch became
        // participation assignments.
        assert!(out.contains("_a_g0 = "), "{out}");
        // The serial path remains.
        assert!(out.contains("child_serial("), "{out}");
    }
}
