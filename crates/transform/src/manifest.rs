//! Transformation manifest: metadata the runtime needs to execute
//! transformed code, plus per-site diagnostics.
//!
//! The paper's artifact pairs its Clang passes with a small runtime library
//! that pre-allocates the aggregation buffer pool. Our equivalent is this
//! manifest: the aggregation pass records, for every transformed parent
//! kernel, which hidden parameters it appended and how large each buffer
//! must be as a function of the parent launch configuration. `dp-core`'s
//! executor consumes it.

use crate::config::AggGranularity;
use dp_frontend::ast::Type;
use dp_frontend::Span;
use std::fmt;

/// A diagnostic emitted by a pass when it declines to transform a site.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which pass emitted it.
    pub pass: &'static str,
    /// The function containing the site.
    pub function: String,
    /// Human-readable reason.
    pub message: String,
    /// Source location of the site.
    pub span: Span,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] `{}`: {} (at {})",
            self.pass, self.function, self.message, self.span
        )
    }
}

/// One hidden parameter appended to a transformed parent kernel by the
/// aggregation pass, in appended order.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferParam {
    /// Per-parent argument array for original child parameter `index`,
    /// one element (word) per parent slot.
    ArgArray {
        /// Index of the original child parameter.
        index: usize,
        /// Element type of the array.
        ty: Type,
    },
    /// Scanned grid-dimension array (one `int` per parent slot).
    GDimScanned,
    /// Block-dimension array (one `int` per parent slot).
    BDimArray,
    /// Packed 64-bit `(numParents, sumGDim)` counter (one per group).
    PackedCounter,
    /// Maximum block dimension (one `int` per group).
    MaxBDim,
    /// Finished-blocks counter used by multi-block granularity
    /// (one `int` per group).
    FinishedCounter,
    /// Participating-parents counter used by the aggregation threshold
    /// (one `int` per group).
    ParticipantCounter,
    /// Scalar `int`: number of parent slots per group.
    SlotsPerGroup,
}

impl BufferParam {
    /// Whether the parameter is a pointer into the buffer pool (as opposed
    /// to a scalar).
    pub fn is_buffer(&self) -> bool {
        !matches!(self, BufferParam::SlotsPerGroup)
    }
}

/// Metadata for one aggregated launch site.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSiteMeta {
    /// Parent kernel that contains the aggregation logic.
    pub parent: String,
    /// Original child kernel name.
    pub child: String,
    /// Generated aggregated child kernel name.
    pub agg_kernel: String,
    /// Aggregation granularity.
    pub granularity: AggGranularity,
    /// Hidden parameters appended to the parent, in order.
    pub buffer_params: Vec<BufferParam>,
    /// Whether the aggregated launch is performed by the host after the
    /// parent grid completes (grid granularity).
    pub host_side_launch: bool,
}

impl AggSiteMeta {
    /// Number of groups for a parent launch with `grid_blocks` blocks of
    /// `block_threads` threads.
    pub fn group_count(&self, grid_blocks: u64, block_threads: u64) -> u64 {
        match self.granularity {
            AggGranularity::Warp => grid_blocks * block_threads.div_ceil(32),
            AggGranularity::Block => grid_blocks,
            AggGranularity::MultiBlock(n) => grid_blocks.div_ceil(n as u64),
            AggGranularity::Grid => 1,
        }
    }

    /// Parent-thread slots per group for the same launch.
    pub fn slots_per_group(&self, grid_blocks: u64, block_threads: u64) -> u64 {
        match self.granularity {
            AggGranularity::Warp => 32,
            AggGranularity::Block => block_threads,
            AggGranularity::MultiBlock(n) => n as u64 * block_threads,
            AggGranularity::Grid => grid_blocks * block_threads,
        }
    }
}

/// Metadata for one thresholded launch site.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSiteMeta {
    /// Function containing the launch.
    pub parent: String,
    /// Child kernel.
    pub child: String,
    /// Generated serial device function.
    pub serial_fn: String,
}

/// Metadata for one coarsened child kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarsenSiteMeta {
    /// The coarsened child kernel.
    pub child: String,
    /// Coarsening factor applied at its launch sites.
    pub factor: i64,
}

/// Everything the passes report back to the driver.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransformManifest {
    /// Aggregated launch sites.
    pub agg_sites: Vec<AggSiteMeta>,
    /// Thresholded launch sites.
    pub threshold_sites: Vec<ThresholdSiteMeta>,
    /// Coarsened child kernels.
    pub coarsen_sites: Vec<CoarsenSiteMeta>,
    /// Sites each pass declined, with reasons.
    pub diagnostics: Vec<Diagnostic>,
}

impl TransformManifest {
    /// Creates an empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another manifest (used by the pipeline driver).
    pub fn merge(&mut self, other: TransformManifest) {
        self.agg_sites.extend(other.agg_sites);
        self.threshold_sites.extend(other.threshold_sites);
        self.coarsen_sites.extend(other.coarsen_sites);
        self.diagnostics.extend(other.diagnostics);
    }

    /// Aggregation metadata for a parent kernel, if any.
    pub fn agg_site_for_parent(&self, parent: &str) -> Option<&AggSiteMeta> {
        self.agg_sites.iter().find(|s| s.parent == parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(granularity: AggGranularity) -> AggSiteMeta {
        AggSiteMeta {
            parent: "p".into(),
            child: "c".into(),
            agg_kernel: "c_agg".into(),
            granularity,
            buffer_params: vec![],
            host_side_launch: granularity == AggGranularity::Grid,
        }
    }

    #[test]
    fn group_counts_by_granularity() {
        assert_eq!(meta(AggGranularity::Warp).group_count(4, 96), 4 * 3);
        assert_eq!(meta(AggGranularity::Warp).group_count(4, 100), 4 * 4);
        assert_eq!(meta(AggGranularity::Block).group_count(10, 256), 10);
        assert_eq!(meta(AggGranularity::MultiBlock(4)).group_count(10, 256), 3);
        assert_eq!(meta(AggGranularity::Grid).group_count(10, 256), 1);
    }

    #[test]
    fn slots_by_granularity() {
        assert_eq!(meta(AggGranularity::Warp).slots_per_group(4, 96), 32);
        assert_eq!(meta(AggGranularity::Block).slots_per_group(4, 96), 96);
        assert_eq!(
            meta(AggGranularity::MultiBlock(4)).slots_per_group(10, 256),
            1024
        );
        assert_eq!(meta(AggGranularity::Grid).slots_per_group(10, 256), 2560);
    }

    #[test]
    fn diagnostics_render() {
        let d = Diagnostic {
            pass: "thresholding",
            function: "parent".into(),
            message: "uses `__syncthreads` in `child`".into(),
            span: Span::SYNTH,
        };
        let s = d.to_string();
        assert!(s.contains("thresholding"));
        assert!(s.contains("parent"));
    }

    #[test]
    fn manifest_merge_concatenates() {
        let mut a = TransformManifest::new();
        a.agg_sites.push(meta(AggGranularity::Block));
        let mut b = TransformManifest::new();
        b.agg_sites.push(meta(AggGranularity::Grid));
        a.merge(b);
        assert_eq!(a.agg_sites.len(), 2);
        assert!(a.agg_site_for_parent("p").is_some());
    }
}
