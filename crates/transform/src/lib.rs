//! # dp-transform
//!
//! The three dynamic-parallelism optimizations of the paper, implemented as
//! independent source-to-source passes over the `dp-frontend` AST:
//!
//! - [`thresholding`] — serialize small child grids in the parent thread
//!   (paper Section III),
//! - [`coarsening`] — one coarsened child block runs several original
//!   blocks (Section IV),
//! - [`aggregation`] — combine child grids across parent threads at warp,
//!   block, **multi-block** (this paper's contribution), or grid
//!   granularity (Section V), with an optional aggregation threshold
//!   (Section V-B).
//!
//! [`apply_pipeline`] composes them in the paper's default order (Fig. 8a).
//! Each pass records what it did (and what it declined, with reasons) in a
//! [`TransformManifest`]; the aggregation metadata tells the runtime how to
//! provision buffer pools, playing the role of KLAP's runtime library.

pub mod aggregation;
pub mod coarsening;
pub mod config;
pub mod manifest;
pub mod pipeline;
pub mod thresholding;
pub mod util;

pub use config::{AggConfig, AggGranularity, OptConfig};
pub use manifest::{
    AggSiteMeta, BufferParam, CoarsenSiteMeta, Diagnostic, ThresholdSiteMeta, TransformManifest,
};
pub use pipeline::apply_pipeline;
