//! The aggregation transformation (paper Sections II-B, V; Fig. 7).
//!
//! Child grids launched by many parent threads are combined into one
//! aggregated grid. Parent threads store their launch configurations and
//! arguments into pre-allocated buffers (the *aggregation logic*); child
//! blocks binary-search the scanned grid-dimension array to recover their
//! original parent's configuration (the *disaggregation logic*).
//!
//! Granularities:
//!
//! - **Warp** — per-warp counters; the last warp thread to finish storing
//!   performs the launch.
//! - **Block** — `__syncthreads()` then thread 0 launches (prior work /
//!   KLAP).
//! - **Multi-block** *(this paper's contribution)* — groups of
//!   `_AGG_GRANULARITY` blocks share buffers; a packed 64-bit atomic counter
//!   implements the `(numParents, sumGDim)` simultaneous increment of
//!   Fig. 7 lines 19–20; a group-wide finished-blocks counter decides which
//!   block performs the launch (lines 28–35).
//! - **Grid** — parent threads only store; the aggregated launch is
//!   performed from the host after the parent grid completes.
//!
//! The transformation hoists each launch site into "participation"
//! assignments (`_a_g = gDim; _a_b = bDim; _a_arg_j = arg_j;`) and appends a
//! uniform aggregation epilogue at the end of the parent kernel, so launches
//! guarded by data-dependent conditions work: non-participating threads
//! simply keep `_a_g == 0`. This mirrors how thresholding composes with
//! aggregation in the paper (a serialized child grid never reaches the
//! aggregation logic).

use crate::config::{AggConfig, AggGranularity};
use crate::manifest::{AggSiteMeta, BufferParam, Diagnostic, TransformManifest};
use crate::thresholding::normalize_blocks;
use crate::util::*;
use dp_frontend::ast::*;
use dp_frontend::visit::replace_builtin_member;

/// Name of the multi-block group-size macro.
pub const AGG_GRANULARITY_MACRO: &str = "_AGG_GRANULARITY";
/// Name of the aggregation-threshold macro (Section V-B).
pub const AGG_THRESHOLD_MACRO: &str = "_AGG_THRESHOLD";

/// Applies aggregation to every dynamic launch site in the program.
pub fn apply(program: &mut Program, config: &AggConfig) -> TransformManifest {
    let mut manifest = TransformManifest::new();
    if let AggGranularity::MultiBlock(n) = config.granularity {
        program.set_define(AGG_GRANULARITY_MACRO, n as i64);
    }
    let mut agg_threshold = config.agg_threshold;
    if agg_threshold.is_some() && config.granularity != AggGranularity::Block {
        manifest.diagnostics.push(Diagnostic {
            pass: "aggregation",
            function: String::new(),
            message: format!(
                "aggregation threshold requires block granularity (got {}); ignoring it",
                config.granularity
            ),
            span: dp_frontend::Span::SYNTH,
        });
        agg_threshold = None;
    }
    if let Some(t) = agg_threshold {
        program.set_define(AGG_THRESHOLD_MACRO, t);
    }

    let parent_names: Vec<String> = program
        .functions()
        .filter(|f| f.qual == FnQual::Global)
        .map(|f| f.name.clone())
        .collect();

    let mut site_counter = 0usize;
    for parent in parent_names {
        transform_parent(
            program,
            &parent,
            config.granularity,
            agg_threshold,
            &mut site_counter,
            &mut manifest,
        );
    }

    // Device-function launch sites cannot host the epilogue; report them.
    for site in dp_analysis::launch_sites(program) {
        if site.from_device {
            if let Some(f) = program.function(&site.parent) {
                if f.qual == FnQual::Device {
                    manifest.diagnostics.push(Diagnostic {
                        pass: "aggregation",
                        function: site.parent.clone(),
                        message: "launch inside a __device__ function cannot be aggregated"
                            .to_string(),
                        span: site.span,
                    });
                }
            }
        }
    }
    manifest
}

struct SiteInfo {
    id: usize,
    child: String,
    grid: Expr,
    block: Expr,
    args: Vec<Expr>,
}

fn transform_parent(
    program: &mut Program,
    parent_name: &str,
    granularity: AggGranularity,
    agg_threshold: Option<i64>,
    site_counter: &mut usize,
    manifest: &mut TransformManifest,
) {
    let snapshot = program.clone();
    let Some(parent) = program.function(parent_name) else {
        return;
    };
    let has_launch = {
        let mut found = false;
        for stmt in &parent.body {
            dp_frontend::visit::for_each_stmt(stmt, &mut |s| {
                if matches!(s.kind, StmtKind::Launch(_)) {
                    found = true;
                }
            });
        }
        found
    };
    if !has_launch {
        return;
    }
    if contains_return(&parent.body) {
        manifest.diagnostics.push(Diagnostic {
            pass: "aggregation",
            function: parent_name.to_string(),
            message: "parent kernel uses early return; the uniform aggregation epilogue \
                      would not be reached by all threads"
                .to_string(),
            span: parent.span,
        });
        return;
    }

    let parent = program.function_mut(parent_name).expect("parent exists");
    normalize_blocks(parent);

    // Replace each valid launch statement with participation assignments.
    let mut sites: Vec<SiteInfo> = Vec::new();
    let mut body = std::mem::take(&mut parent.body);
    for stmt in &mut body {
        replace_launches(
            stmt,
            0,
            &snapshot,
            parent_name,
            site_counter,
            &mut sites,
            manifest,
        );
    }

    if sites.is_empty() {
        let parent = program.function_mut(parent_name).expect("parent exists");
        parent.body = body;
        return;
    }

    // Hoisted participation variables at the top of the kernel.
    let mut hoisted = Vec::new();
    for site in &sites {
        let s = site.id;
        hoisted.push(Stmt::decl(
            Type::Int,
            format!("_a_g{s}"),
            Some(Expr::int(0, CodeOrigin::AggLogic)),
            CodeOrigin::AggLogic,
        ));
        hoisted.push(Stmt::decl(
            Type::Int,
            format!("_a_b{s}"),
            Some(Expr::int(0, CodeOrigin::AggLogic)),
            CodeOrigin::AggLogic,
        ));
        let child_fn = snapshot.function(&site.child).expect("validated");
        for (j, param) in child_fn.params.iter().enumerate() {
            hoisted.push(Stmt::decl(
                param.ty.clone(),
                format!("_a_arg{s}_{j}"),
                None,
                CodeOrigin::AggLogic,
            ));
        }
    }
    for h in &mut hoisted {
        h.origin = CodeOrigin::AggLogic;
    }

    // Aggregation epilogue per site, at the end of the kernel.
    let mut epilogue = Vec::new();
    for site in &sites {
        let child_fn = snapshot.function(&site.child).expect("validated");
        let stmts = build_epilogue(site, child_fn, granularity, agg_threshold);
        epilogue.extend(stmts);
    }

    let parent = program.function_mut(parent_name).expect("parent exists");
    let mut new_body = hoisted;
    new_body.extend(body);
    new_body.extend(epilogue);
    parent.body = new_body;

    // Appended buffer parameters + manifest entries.
    for site in &sites {
        let s = site.id;
        let child_fn = snapshot.function(&site.child).expect("validated");
        let mut buffer_params = Vec::new();
        let parent = program.function_mut(parent_name).expect("parent exists");
        for (j, param) in child_fn.params.iter().enumerate() {
            parent.params.push(Param {
                ty: param.ty.clone().ptr_to(),
                name: format!("_a_arr{s}_{j}"),
            });
            buffer_params.push(BufferParam::ArgArray {
                index: j,
                ty: param.ty.clone(),
            });
        }
        parent.params.push(Param {
            ty: Type::Int.ptr_to(),
            name: format!("_a_scan{s}"),
        });
        buffer_params.push(BufferParam::GDimScanned);
        parent.params.push(Param {
            ty: Type::Int.ptr_to(),
            name: format!("_a_bArr{s}"),
        });
        buffer_params.push(BufferParam::BDimArray);
        parent.params.push(Param {
            ty: Type::Long.ptr_to(),
            name: format!("_a_ctr{s}"),
        });
        buffer_params.push(BufferParam::PackedCounter);
        parent.params.push(Param {
            ty: Type::Int.ptr_to(),
            name: format!("_a_maxB{s}"),
        });
        buffer_params.push(BufferParam::MaxBDim);
        if matches!(
            granularity,
            AggGranularity::Warp | AggGranularity::MultiBlock(_)
        ) {
            parent.params.push(Param {
                ty: Type::Int.ptr_to(),
                name: format!("_a_fin{s}"),
            });
            buffer_params.push(BufferParam::FinishedCounter);
        }
        if agg_threshold.is_some() {
            parent.params.push(Param {
                ty: Type::Int.ptr_to(),
                name: format!("_a_part{s}"),
            });
            buffer_params.push(BufferParam::ParticipantCounter);
        }
        parent.params.push(Param {
            ty: Type::Int,
            name: format!("_a_slots{s}"),
        });
        buffer_params.push(BufferParam::SlotsPerGroup);

        // Generate the aggregated child kernel (once per child).
        let agg_kernel = format!("{}_agg", site.child);
        if program.function(&agg_kernel).is_none() {
            let kernel = build_agg_child(&agg_kernel, child_fn);
            let pos = program
                .items
                .iter()
                .position(|item| matches!(item, Item::Function(f) if f.name == site.child))
                .map(|p| p + 1)
                .unwrap_or(program.items.len());
            program.items.insert(pos, Item::Function(kernel));
        }

        manifest.agg_sites.push(AggSiteMeta {
            parent: parent_name.to_string(),
            child: site.child.clone(),
            agg_kernel,
            granularity,
            buffer_params,
            host_side_launch: granularity == AggGranularity::Grid,
        });
    }
}

/// Recursively replaces valid launch statements with participation
/// assignments, collecting site info. `loop_depth` tracks whether we are
/// under a loop (launches in loops cannot be aggregated: a thread would
/// participate more than once per kernel execution).
fn replace_launches(
    stmt: &mut Stmt,
    loop_depth: usize,
    snapshot: &Program,
    parent_name: &str,
    site_counter: &mut usize,
    sites: &mut Vec<SiteInfo>,
    manifest: &mut TransformManifest,
) {
    match &mut stmt.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                replace_launches(
                    s,
                    loop_depth,
                    snapshot,
                    parent_name,
                    site_counter,
                    sites,
                    manifest,
                );
            }
            return;
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            replace_launches(
                then_branch,
                loop_depth,
                snapshot,
                parent_name,
                site_counter,
                sites,
                manifest,
            );
            if let Some(e) = else_branch {
                replace_launches(
                    e,
                    loop_depth,
                    snapshot,
                    parent_name,
                    site_counter,
                    sites,
                    manifest,
                );
            }
            return;
        }
        StmtKind::For { body, .. }
        | StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. } => {
            replace_launches(
                body,
                loop_depth + 1,
                snapshot,
                parent_name,
                site_counter,
                sites,
                manifest,
            );
            return;
        }
        StmtKind::Launch(_) => {}
        _ => return,
    }

    let StmtKind::Launch(launch) = &stmt.kind else {
        unreachable!()
    };
    let span = stmt.span;
    if let Err(message) = validate_site(snapshot, launch, loop_depth) {
        manifest.diagnostics.push(Diagnostic {
            pass: "aggregation",
            function: parent_name.to_string(),
            message,
            span,
        });
        return;
    }

    let id = *site_counter;
    *site_counter += 1;
    let info = SiteInfo {
        id,
        child: launch.kernel.clone(),
        grid: one_dimensional(&launch.grid),
        block: one_dimensional(&launch.block),
        args: launch.args.clone(),
    };

    // `{ _a_gS = grid; _a_bS = block; _a_argS_j = arg_j; ... }`
    let mut stmts = Vec::new();
    stmts.push(Stmt::expr(
        Expr::assign(
            Expr::ident(format!("_a_g{id}"), CodeOrigin::AggLogic),
            info.grid.clone(),
            CodeOrigin::AggLogic,
        ),
        CodeOrigin::AggLogic,
    ));
    stmts.push(Stmt::expr(
        Expr::assign(
            Expr::ident(format!("_a_b{id}"), CodeOrigin::AggLogic),
            info.block.clone(),
            CodeOrigin::AggLogic,
        ),
        CodeOrigin::AggLogic,
    ));
    for (j, arg) in info.args.iter().enumerate() {
        stmts.push(Stmt::expr(
            Expr::assign(
                Expr::ident(format!("_a_arg{id}_{j}"), CodeOrigin::AggLogic),
                arg.clone(),
                CodeOrigin::AggLogic,
            ),
            CodeOrigin::AggLogic,
        ));
    }
    stmt.kind = StmtKind::Block(stmts);
    stmt.origin = CodeOrigin::AggLogic;
    sites.push(info);
}

fn validate_site(program: &Program, launch: &LaunchStmt, loop_depth: usize) -> Result<(), String> {
    if loop_depth > 0 {
        return Err(
            "launch inside a loop cannot be aggregated (a parent thread would \
                    participate multiple times)"
                .to_string(),
        );
    }
    let Some(child) = program.function(&launch.kernel) else {
        return Err(format!("child kernel `{}` is not defined", launch.kernel));
    };
    if child.params.len() != launch.args.len() {
        return Err(format!(
            "launch passes {} arguments but `{}` takes {}",
            launch.args.len(),
            launch.kernel,
            child.params.len()
        ));
    }
    if !is_one_dimensional(&launch.grid) || !is_one_dimensional(&launch.block) {
        return Err("aggregation supports only 1-D launch configurations".to_string());
    }
    for base in ["gridDim", "blockDim"] {
        if uses_builtin_whole(&child.body, base) {
            return Err(format!("child uses `{base}` as a whole value"));
        }
    }
    for base in ["gridDim", "blockDim", "blockIdx", "threadIdx"] {
        for field in ["y", "z"] {
            if uses_builtin_member(&child.body, base, field) {
                return Err(format!(
                    "child uses `{base}.{field}`; aggregation rebinds only the x dimension"
                ));
            }
        }
    }
    Ok(())
}

fn is_one_dimensional(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Dim3Ctor(args) => args
            .iter()
            .skip(1)
            .all(|a| matches!(a.kind, ExprKind::IntLit(1))),
        _ => true,
    }
}

fn one_dimensional(e: &Expr) -> Expr {
    match &e.kind {
        ExprKind::Dim3Ctor(args) => args[0].clone(),
        _ => e.clone(),
    }
}

/// Builds the per-site aggregation epilogue appended to the parent kernel.
fn build_epilogue(
    site: &SiteInfo,
    child_fn: &Function,
    granularity: AggGranularity,
    agg_threshold: Option<i64>,
) -> Vec<Stmt> {
    let s = site.id;
    let group_expr = match granularity {
        AggGranularity::Warp => {
            "blockIdx.x * ((blockDim.x + 31) / 32) + threadIdx.x / 32".to_string()
        }
        AggGranularity::Block => "blockIdx.x".to_string(),
        AggGranularity::MultiBlock(_) => format!("blockIdx.x / {AGG_GRANULARITY_MACRO}"),
        AggGranularity::Grid => "0".to_string(),
    };

    let arg_stores: String = (0..child_fn.params.len())
        .map(|j| format!("_a_arr{s}_{j}[_a_base{s} + _a_pi{s}] = _a_arg{s}_{j};\n"))
        .collect();

    let store_phase = format!(
        "if (_a_g{s} > 0) {{
             long long _a_pk{s} = atomicAdd(&_a_ctr{s}[_a_grp{s}], ((long long)1 << 32) + (long long)_a_g{s});
             int _a_pi{s} = (int)(_a_pk{s} >> 32);
             int _a_sp{s} = (int)(_a_pk{s} & 4294967295);
             {arg_stores}
             _a_scan{s}[_a_base{s} + _a_pi{s}] = _a_sp{s} + _a_g{s};
             _a_bArr{s}[_a_base{s} + _a_pi{s}] = _a_b{s};
             atomicMax(&_a_maxB{s}[_a_grp{s}], _a_b{s});
         }}"
    );

    let agg_args: String = (0..child_fn.params.len())
        .map(|j| format!("_a_arr{s}_{j} + _a_base{s}, "))
        .collect();
    let agg_launch = format!(
        "{child}_agg<<<_a_tot{s}, _a_maxB{s}[_a_grp{s}]>>>({agg_args}_a_scan{s} + _a_base{s}, _a_bArr{s} + _a_base{s}, _a_np{s});",
        child = site.child
    );
    let read_and_launch = format!(
        "long long _a_pkf{s} = _a_ctr{s}[_a_grp{s}];
         int _a_np{s} = (int)(_a_pkf{s} >> 32);
         int _a_tot{s} = (int)(_a_pkf{s} & 4294967295);
         if (_a_np{s} > 0) {{
             {agg_launch}
         }}"
    );

    let completion = match granularity {
        AggGranularity::Warp => format!(
            "__threadfence();
             int _a_fn{s} = atomicAdd(&_a_fin{s}[_a_grp{s}], 1) + 1;
             int _a_wsz{s} = min(32, blockDim.x - (threadIdx.x / 32) * 32);
             if (_a_fn{s} == _a_wsz{s}) {{
                 {read_and_launch}
             }}"
        ),
        AggGranularity::Block => format!(
            "__syncthreads();
             if (threadIdx.x == 0) {{
                 {read_and_launch}
             }}"
        ),
        AggGranularity::MultiBlock(_) => format!(
            "__threadfence();
             __syncthreads();
             if (threadIdx.x == 0) {{
                 int _a_nfb{s} = atomicAdd(&_a_fin{s}[_a_grp{s}], 1) + 1;
                 int _a_gb{s} = min({AGG_GRANULARITY_MACRO}, gridDim.x - _a_grp{s} * {AGG_GRANULARITY_MACRO});
                 if (_a_nfb{s} == _a_gb{s}) {{
                     {read_and_launch}
                 }}
             }}"
        ),
        AggGranularity::Grid => String::new(),
    };

    let body = if agg_threshold.is_some() {
        // Section V-B: count participants first; aggregate only when enough
        // parent threads participate, otherwise launch directly.
        let direct_args = args_list(site);
        format!(
            "int _a_grp{s} = {group_expr};
             int _a_base{s} = _a_grp{s} * _a_slots{s};
             if (_a_g{s} > 0) {{
                 atomicAdd(&_a_part{s}[_a_grp{s}], 1);
             }}
             __syncthreads();
             if (_a_part{s}[_a_grp{s}] >= {AGG_THRESHOLD_MACRO}) {{
                 {store_phase}
                 {completion}
             }} else {{
                 if (_a_g{s} > 0) {{
                     {child}<<<_a_g{s}, _a_b{s}>>>({direct_args});
                 }}
             }}",
            child = site.child
        )
    } else {
        format!(
            "int _a_grp{s} = {group_expr};
             int _a_base{s} = _a_grp{s} * _a_slots{s};
             {store_phase}
             {completion}"
        )
    };

    let mut stmts = parse_template_stmts(&body);
    tag_origin(&mut stmts, CodeOrigin::AggLogic);
    stmts
}

fn args_list(site: &SiteInfo) -> String {
    (0..site.args.len())
        .map(|j| format!("_a_arg{}_{j}", site.id))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Builds the aggregated child kernel with the disaggregation prologue
/// (Fig. 7 lines 01–11).
fn build_agg_child(name: &str, child_fn: &Function) -> Function {
    let arr_params: String = child_fn
        .params
        .iter()
        .enumerate()
        .map(|(j, p)| format!("{}* _da_arr{j}, ", p.ty))
        .collect();
    let param_loads: String = child_fn
        .params
        .iter()
        .enumerate()
        .map(|(j, p)| format!("{} {} = _da_arr{j}[_da_pi];\n", p.ty, p.name))
        .collect();

    let src = format!(
        "__global__ void {name}({arr_params}int* _da_scan, int* _da_bArr, int _da_np) {{
             int _da_lo = 0;
             int _da_hi = _da_np - 1;
             while (_da_lo < _da_hi) {{
                 int _da_mid = (_da_lo + _da_hi) / 2;
                 if (_da_scan[_da_mid] > blockIdx.x) {{
                     _da_hi = _da_mid;
                 }} else {{
                     _da_lo = _da_mid + 1;
                 }}
             }}
             int _da_pi = _da_lo;
             int _da_prev = 0;
             if (_da_pi > 0) {{
                 _da_prev = _da_scan[_da_pi - 1];
             }}
             {param_loads}
             int _da_gd = _da_scan[_da_pi] - _da_prev;
             int _da_bx = blockIdx.x - _da_prev;
             int _da_bd = _da_bArr[_da_pi];
             if (threadIdx.x < _da_bd) {{
                 {BODY_MARKER}();
             }}
         }}"
    );
    let program = dp_frontend::parse(&src)
        .unwrap_or_else(|e| panic!("internal agg-child template failed: {e}\n{src}"));
    let Item::Function(mut kernel) = program.items.into_iter().next().unwrap() else {
        unreachable!()
    };
    tag_origin(&mut kernel.body, CodeOrigin::DisaggLogic);

    // Child body with x-dimension builtins rebound to the disaggregated
    // values (body keeps its own origin tags).
    let mut body = child_fn.body.clone();
    for stmt in &mut body {
        replace_builtin_member(stmt, "blockIdx", "x", "_da_bx");
        replace_builtin_member(stmt, "gridDim", "x", "_da_gd");
        replace_builtin_member(stmt, "blockDim", "x", "_da_bd");
    }
    assert!(splice_body(&mut kernel.body, body));
    kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frontend::printer::print_program;

    const BASIC: &str = "\
__global__ void child(int* data, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        data[i] = data[i] + 1;
    }
}

__global__ void parent(int* data, int* offsets, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int count = offsets[v + 1] - offsets[v];
        child<<<(count + 31) / 32, 32>>>(data, count);
    }
}
";

    fn apply_gran(src: &str, granularity: AggGranularity) -> (Program, TransformManifest) {
        let mut p = dp_frontend::parse(src).unwrap();
        let m = apply(&mut p, &AggConfig::new(granularity));
        (p, m)
    }

    #[test]
    fn multiblock_generates_fig7_structure() {
        let (p, m) = apply_gran(BASIC, AggGranularity::MultiBlock(4));
        assert_eq!(m.agg_sites.len(), 1);
        let site = &m.agg_sites[0];
        assert_eq!(site.agg_kernel, "child_agg");
        assert!(!site.host_side_launch);
        assert_eq!(p.define("_AGG_GRANULARITY"), Some(4));

        let out = print_program(&p);
        assert!(out.contains("blockIdx.x / _AGG_GRANULARITY"), "{out}");
        assert!(out.contains("atomicAdd(&_a_ctr0[_a_grp0]"), "{out}");
        assert!(out.contains("atomicMax(&_a_maxB0[_a_grp0]"), "{out}");
        assert!(out.contains("__threadfence()"), "{out}");
        assert!(out.contains("__syncthreads()"), "{out}");
        assert!(out.contains("child_agg<<<"), "{out}");
        dp_frontend::parse(&out).unwrap();
    }

    #[test]
    fn agg_child_has_binary_search_and_guard() {
        let (p, _) = apply_gran(BASIC, AggGranularity::Block);
        let agg = p.function("child_agg").unwrap();
        let mut printed = String::new();
        dp_frontend::printer::print_function(&mut printed, agg);
        assert!(printed.contains("while (_da_lo < _da_hi)"), "{printed}");
        assert!(printed.contains("if (threadIdx.x < _da_bd)"), "{printed}");
        assert!(printed.contains("int n = _da_arr1[_da_pi];"), "{printed}");
        // Body rebinds blockIdx.x.
        assert!(
            printed.contains("_da_bx * _da_bd + threadIdx.x"),
            "{printed}"
        );
    }

    #[test]
    fn parent_gains_buffer_params_in_manifest_order() {
        let (p, m) = apply_gran(BASIC, AggGranularity::MultiBlock(8));
        let parent = p.function("parent").unwrap();
        let site = &m.agg_sites[0];
        // original 3 + 2 arg arrays + scan + bArr + ctr + maxB + fin + slots
        assert_eq!(parent.params.len(), 3 + site.buffer_params.len());
        assert!(matches!(
            site.buffer_params[0],
            BufferParam::ArgArray { index: 0, .. }
        ));
        assert!(matches!(
            site.buffer_params.last(),
            Some(BufferParam::SlotsPerGroup)
        ));
        assert!(site
            .buffer_params
            .iter()
            .any(|b| matches!(b, BufferParam::FinishedCounter)));
    }

    #[test]
    fn block_granularity_uses_syncthreads_no_fence() {
        let (p, _) = apply_gran(BASIC, AggGranularity::Block);
        let out = print_program(&p);
        assert!(out.contains("__syncthreads()"));
        assert!(!out.contains("__threadfence()"));
        assert!(out.contains("if (threadIdx.x == 0)"));
    }

    #[test]
    fn warp_granularity_uses_warp_counters() {
        let (p, m) = apply_gran(BASIC, AggGranularity::Warp);
        let out = print_program(&p);
        assert!(out.contains("threadIdx.x / 32"), "{out}");
        assert!(
            out.contains("min(32, blockDim.x - threadIdx.x / 32 * 32)"),
            "{out}"
        );
        assert!(m.agg_sites[0]
            .buffer_params
            .iter()
            .any(|b| matches!(b, BufferParam::FinishedCounter)));
    }

    #[test]
    fn grid_granularity_defers_launch_to_host() {
        let (p, m) = apply_gran(BASIC, AggGranularity::Grid);
        assert!(m.agg_sites[0].host_side_launch);
        let out = print_program(&p);
        // Parent stores but never launches the aggregated child.
        assert!(!out.contains("child_agg<<<"), "{out}");
        assert!(p.function("child_agg").is_some());
    }

    #[test]
    fn aggregation_threshold_adds_direct_path() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        let m = apply(
            &mut p,
            &AggConfig {
                granularity: AggGranularity::Block,
                agg_threshold: Some(16),
            },
        );
        assert_eq!(p.define("_AGG_THRESHOLD"), Some(16));
        let out = print_program(&p);
        assert!(out.contains("_a_part0"), "{out}");
        assert!(out.contains(">= _AGG_THRESHOLD"), "{out}");
        // Direct (non-aggregated) fallback launch of the original child.
        assert!(
            out.contains("child<<<_a_g0, _a_b0>>>(_a_arg0_0, _a_arg0_1);"),
            "{out}"
        );
        assert!(m.agg_sites[0]
            .buffer_params
            .iter()
            .any(|b| matches!(b, BufferParam::ParticipantCounter)));
    }

    #[test]
    fn threshold_with_non_block_granularity_is_ignored() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        let m = apply(
            &mut p,
            &AggConfig {
                granularity: AggGranularity::Grid,
                agg_threshold: Some(16),
            },
        );
        assert!(m
            .diagnostics
            .iter()
            .any(|d| d.message.contains("requires block")));
        assert_eq!(p.define("_AGG_THRESHOLD"), None);
    }

    #[test]
    fn parent_with_return_is_skipped() {
        let src = "\
__global__ void child(int* d, int n) { d[0] = n; }
__global__ void parent(int* d, int n) {
    int v = blockIdx.x;
    if (v >= n) { return; }
    child<<<(n + 31) / 32, 32>>>(d, n);
}
";
        let (p, m) = apply_gran(src, AggGranularity::Block);
        assert!(m.agg_sites.is_empty());
        assert!(m
            .diagnostics
            .iter()
            .any(|d| d.message.contains("early return")));
        assert!(p.function("child_agg").is_none());
    }

    #[test]
    fn launch_in_loop_is_skipped() {
        let src = "\
__global__ void child(int* d, int n) { d[0] = n; }
__global__ void parent(int* d, int n) {
    for (int i = 0; i < n; ++i) {
        child<<<(i + 31) / 32, 32>>>(d, i);
    }
}
";
        let (_, m) = apply_gran(src, AggGranularity::Block);
        assert!(m.agg_sites.is_empty());
        assert!(m
            .diagnostics
            .iter()
            .any(|d| d.message.contains("inside a loop")));
    }

    #[test]
    fn child_using_y_dimension_is_skipped() {
        let src = "\
__global__ void child(int* d) { d[blockIdx.x] = threadIdx.y; }
__global__ void parent(int* d, int n) {
    child<<<(n + 31) / 32, 32>>>(d);
}
";
        let (_, m) = apply_gran(src, AggGranularity::Block);
        assert!(m.agg_sites.is_empty());
        assert!(m
            .diagnostics
            .iter()
            .any(|d| d.message.contains("threadIdx.y")));
    }

    #[test]
    fn two_sites_in_one_parent_get_distinct_buffers() {
        let src = "\
__global__ void child(int* d, int n) { d[blockIdx.x] = n; }
__global__ void parent(int* d, int n, int m) {
    if (n > 0) {
        child<<<(n + 31) / 32, 32>>>(d, n);
    }
    if (m > 0) {
        child<<<(m + 31) / 32, 32>>>(d, m);
    }
}
";
        let (p, m) = apply_gran(src, AggGranularity::Block);
        assert_eq!(m.agg_sites.len(), 2);
        let out = print_program(&p);
        assert!(out.contains("_a_ctr0"));
        assert!(out.contains("_a_ctr1"));
        // One shared aggregated child kernel.
        assert_eq!(p.functions().filter(|f| f.name == "child_agg").count(), 1);
    }

    #[test]
    fn output_reparses() {
        for g in [
            AggGranularity::Warp,
            AggGranularity::Block,
            AggGranularity::MultiBlock(8),
            AggGranularity::Grid,
        ] {
            let (p, _) = apply_gran(BASIC, g);
            let out = print_program(&p);
            dp_frontend::parse(&out).unwrap_or_else(|e| panic!("{g}: {}", e.render(&out)));
        }
    }
}
