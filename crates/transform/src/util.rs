//! Shared helpers for the transformation passes.
//!
//! The passes generate code from *source templates*: the generated code is
//! written as CUDA-subset text (mirroring the paper's figures), parsed with
//! the regular frontend, origin-tagged, and spliced into the AST. This keeps
//! each pass readable and guarantees the generated code stays inside the
//! supported subset.

use dp_frontend::ast::*;
use dp_frontend::parser::parse;
use dp_frontend::visit::{for_each_stmt_expr, walk_stmt_exprs_mut, walk_stmt_mut};
use std::collections::HashSet;

/// Parses a brace-free sequence of statements from template text.
///
/// # Panics
///
/// Panics if the template does not parse — templates are compiler-internal,
/// so a parse failure is a bug in the pass, not user error.
pub fn parse_template_stmts(template: &str) -> Vec<Stmt> {
    let wrapped = format!("__device__ void __template__() {{\n{template}\n}}");
    let program = parse(&wrapped).unwrap_or_else(|e| {
        panic!(
            "internal template failed to parse: {}\n{template}",
            e.render(&wrapped)
        )
    });
    let Item::Function(mut f) = program.items.into_iter().next().unwrap() else {
        unreachable!("template wraps a single function")
    };
    f.body.drain(..).collect()
}

/// Parses a single statement from template text.
pub fn parse_template_stmt(template: &str) -> Stmt {
    let mut stmts = parse_template_stmts(template);
    assert_eq!(stmts.len(), 1, "template must be one statement: {template}");
    stmts.pop().unwrap()
}

/// Parses one expression from template text.
pub fn parse_template_expr(template: &str) -> Expr {
    dp_frontend::parser::parse_expr(template)
        .unwrap_or_else(|e| panic!("internal template expr failed to parse: {e}\n{template}"))
}

/// Tags every statement and expression in `stmts` with `origin`,
/// *without* overwriting nested statements already tagged differently
/// (spliced bodies keep their own origins).
pub fn tag_origin(stmts: &mut [Stmt], origin: CodeOrigin) {
    for stmt in stmts {
        walk_stmt_mut(stmt, &mut |s| {
            if s.origin == CodeOrigin::Original {
                s.origin = origin;
            }
        });
        walk_stmt_exprs_mut(stmt, &mut |e| {
            if e.origin == CodeOrigin::Original {
                e.origin = origin;
            }
        });
    }
}

/// Marker call used in templates where a body will be spliced:
/// `__DPOPT_BODY__();`.
pub const BODY_MARKER: &str = "__DPOPT_BODY__";

/// Replaces the `__DPOPT_BODY__();` marker statement with `body`
/// (recursively searching nested statements). Returns `true` if found.
pub fn splice_body(stmts: &mut Vec<Stmt>, body: Vec<Stmt>) -> bool {
    // Find the marker at this level first.
    for i in 0..stmts.len() {
        if is_marker(&stmts[i]) {
            stmts.splice(i..=i, body);
            return true;
        }
        if splice_in_stmt(&mut stmts[i], &body) {
            return true;
        }
    }
    false
}

fn is_marker(stmt: &Stmt) -> bool {
    matches!(
        &stmt.kind,
        StmtKind::Expr(Expr {
            kind: ExprKind::Call(name, _),
            ..
        }) if name == BODY_MARKER
    )
}

fn splice_in_stmt(stmt: &mut Stmt, body: &[Stmt]) -> bool {
    match &mut stmt.kind {
        StmtKind::Block(stmts) => {
            for i in 0..stmts.len() {
                if is_marker(&stmts[i]) {
                    stmts.splice(i..=i, body.to_vec());
                    return true;
                }
                if splice_in_stmt(&mut stmts[i], body) {
                    return true;
                }
            }
            false
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            if splice_in_stmt(then_branch, body) {
                return true;
            }
            if let Some(e) = else_branch {
                return splice_in_stmt(e, body);
            }
            false
        }
        StmtKind::For { body: b, .. }
        | StmtKind::While { body: b, .. }
        | StmtKind::DoWhile { body: b, .. } => splice_in_stmt(b, body),
        _ => false,
    }
}

/// Collects every identifier mentioned anywhere in a function.
pub fn idents_in_function(func: &Function) -> HashSet<String> {
    let mut names: HashSet<String> = func.params.iter().map(|p| p.name.clone()).collect();
    names.insert(func.name.clone());
    for stmt in &func.body {
        dp_frontend::visit::for_each_stmt(stmt, &mut |s| {
            if let StmtKind::Decl(d) = &s.kind {
                for decl in &d.declarators {
                    names.insert(decl.name.clone());
                }
            }
        });
        for_each_stmt_expr(stmt, &mut |e| {
            if let ExprKind::Ident(name) = &e.kind {
                names.insert(name.clone());
            }
        });
    }
    names
}

/// Returns `base` if unused, otherwise `base_2`, `base_3`, ….
pub fn fresh_name(base: &str, used: &HashSet<String>) -> String {
    if !used.contains(base) {
        return base.to_string();
    }
    let mut i = 2;
    loop {
        let candidate = format!("{base}_{i}");
        if !used.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

/// Whether any statement in the function is a `return` (at any depth).
pub fn contains_return(body: &[Stmt]) -> bool {
    let mut found = false;
    for stmt in body {
        dp_frontend::visit::for_each_stmt(stmt, &mut |s| {
            if matches!(s.kind, StmtKind::Return(_)) {
                found = true;
            }
        });
    }
    found
}

/// Whether the body references `base.field` for a builtin dim variable.
pub fn uses_builtin_member(body: &[Stmt], base: &str, field: &str) -> bool {
    let mut found = false;
    for stmt in body {
        for_each_stmt_expr(stmt, &mut |e| {
            if let ExprKind::Member(b, fld) = &e.kind {
                if fld == field && b.kind.as_ident() == Some(base) {
                    found = true;
                }
            }
        });
    }
    found
}

/// Whether the body uses a builtin dim variable as a *whole* value
/// (not through a member access), e.g. passing `gridDim` to a function.
pub fn uses_builtin_whole(body: &[Stmt], base: &str) -> bool {
    let mut whole = 0usize;
    let mut member = 0usize;
    for stmt in body {
        for_each_stmt_expr(stmt, &mut |e| match &e.kind {
            ExprKind::Ident(name) if name == base => whole += 1,
            ExprKind::Member(b, _) if b.kind.as_ident() == Some(base) => member += 1,
            _ => {}
        });
    }
    // Each member access contains one ident occurrence; any excess means a
    // bare use.
    whole > member
}

/// C-source rendering of a parameter list (for templates).
pub fn params_source(params: &[Param]) -> String {
    params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Comma-joined parameter names (for forwarding calls in templates).
pub fn args_source(params: &[Param]) -> String {
    params
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frontend::parser::parse_stmt;

    #[test]
    fn template_statements_parse() {
        let stmts = parse_template_stmts("int x = 1;\nif (x > 0) { x = 2; }");
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "internal template")]
    fn bad_template_panics() {
        parse_template_stmts("int = ;");
    }

    #[test]
    fn tag_origin_preserves_existing_tags() {
        let mut stmts = parse_template_stmts("x = 1;\ny = 2;");
        tag_origin(&mut stmts[..1], CodeOrigin::DisaggLogic);
        tag_origin(&mut stmts, CodeOrigin::AggLogic);
        assert_eq!(stmts[0].origin, CodeOrigin::DisaggLogic);
        assert_eq!(stmts[1].origin, CodeOrigin::AggLogic);
    }

    #[test]
    fn splice_replaces_marker_at_top_level() {
        let mut stmts = parse_template_stmts("int a = 0;\n__DPOPT_BODY__();\nint b = 1;");
        let body = parse_template_stmts("a = 7;\na = 8;");
        assert!(splice_body(&mut stmts, body));
        assert_eq!(stmts.len(), 4);
        assert!(matches!(&stmts[1].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn splice_replaces_marker_in_nested_loop() {
        let mut stmts = parse_template_stmts(
            "for (int i = 0; i < n; ++i) { if (i > 0) { __DPOPT_BODY__(); } }",
        );
        let body = vec![parse_stmt("x = i;").unwrap()];
        assert!(splice_body(&mut stmts, body));
        let printed = {
            let mut out = String::new();
            for s in &stmts {
                dp_frontend::printer::print_stmt(&mut out, s, 0);
            }
            out
        };
        assert!(printed.contains("x = i;"));
        assert!(!printed.contains(BODY_MARKER));
    }

    #[test]
    fn splice_without_marker_returns_false() {
        let mut stmts = parse_template_stmts("int a = 0;");
        assert!(!splice_body(&mut stmts, vec![]));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let used: HashSet<String> = ["_bx".to_string(), "_bx_2".to_string()].into();
        assert_eq!(fresh_name("_bx", &used), "_bx_3");
        assert_eq!(fresh_name("_tx", &used), "_tx");
    }

    #[test]
    fn contains_return_finds_nested() {
        let body = parse_template_stmts("if (x) { for (;;) { return; } }");
        assert!(contains_return(&body));
        let body = parse_template_stmts("x = 1;");
        assert!(!contains_return(&body));
    }

    #[test]
    fn builtin_member_and_whole_use() {
        let body = parse_template_stmts("int i = blockIdx.x; f(gridDim);");
        assert!(uses_builtin_member(&body, "blockIdx", "x"));
        assert!(!uses_builtin_member(&body, "blockIdx", "y"));
        assert!(uses_builtin_whole(&body, "gridDim"));
        assert!(!uses_builtin_whole(&body, "blockIdx"));
    }

    #[test]
    fn param_rendering() {
        let params = vec![
            Param {
                ty: Type::Int.ptr_to(),
                name: "data".into(),
            },
            Param {
                ty: Type::Float,
                name: "alpha".into(),
            },
        ];
        assert_eq!(params_source(&params), "int* data, float alpha");
        assert_eq!(args_source(&params), "data, alpha");
    }
}
