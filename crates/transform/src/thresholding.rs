//! The thresholding transformation (paper Section III, Fig. 3).
//!
//! For every dynamic launch `child<<<gDim, bDim>>>(args)` whose child kernel
//! is serializable (Section III-C) and whose desired thread count can be
//! extracted from the grid-dimension expression (Section III-D), the pass:
//!
//! 1. generates a `__device__` serial version of the child that executes all
//!    child threads in loops (Fig. 3b lines 09–15),
//! 2. hoists the desired thread count into `int _threads = N;`, replacing
//!    the `N` occurrence to avoid duplicating side effects,
//! 3. wraps the launch in
//!    `if (_threads >= _THRESHOLD) { launch } else { child_serial(...); }`.
//!
//! `_THRESHOLD` is emitted as a `#define` so it can be overridden per
//! compilation, exactly like the paper's macro variable.

use crate::manifest::{Diagnostic, ThresholdSiteMeta, TransformManifest};
use crate::util::*;
use dp_frontend::ast::*;
use dp_frontend::visit::{replace_builtin_ident, replace_builtin_member};
use std::collections::HashSet;

/// Name of the compile-time threshold macro.
pub const THRESHOLD_MACRO: &str = "_THRESHOLD";

/// Applies thresholding to every dynamic launch site in the program.
///
/// Launch sites that cannot be transformed (non-serializable child, or no
/// recognizable ceiling-division pattern) are left untouched and reported in
/// the manifest's diagnostics, matching the paper's behaviour of falling
/// back to the unmodified launch.
pub fn apply(program: &mut Program, threshold: i64) -> TransformManifest {
    let mut manifest = TransformManifest::new();
    program.set_define(THRESHOLD_MACRO, threshold);

    let parent_names: Vec<String> = program
        .functions()
        .filter(|f| matches!(f.qual, FnQual::Global | FnQual::Device))
        .map(|f| f.name.clone())
        .collect();

    let mut serial_fns: Vec<Function> = Vec::new();
    let mut counter = 0usize;

    for parent_name in parent_names {
        // Decide per-site transformations against an immutable snapshot,
        // because generating the serial child needs the whole program.
        let snapshot = program.clone();
        let Some(parent) = program.function_mut(&parent_name) else {
            continue;
        };
        normalize_blocks(parent);
        let mut body = std::mem::take(&mut parent.body);
        process_block(
            &mut body,
            &snapshot,
            &parent_name,
            &mut serial_fns,
            &mut manifest,
            &mut counter,
        );
        let Some(parent) = program.function_mut(&parent_name) else {
            continue;
        };
        parent.body = body;
    }

    // Insert generated serial functions right after their child kernels.
    for serial in serial_fns {
        let child_name = serial
            .name
            .strip_suffix("_serial_body")
            .or_else(|| serial.name.strip_suffix("_serial"))
            .unwrap_or(&serial.name)
            .to_string();
        let pos = program
            .items
            .iter()
            .position(|item| matches!(item, Item::Function(f) if f.name == child_name))
            .map(|p| p + 1)
            .unwrap_or(program.items.len());
        program.items.insert(pos, Item::Function(serial));
    }

    manifest
}

/// Rewrites every non-block body of control statements into a block so the
/// pass can treat all statement lists uniformly.
pub fn normalize_blocks(func: &mut Function) {
    for stmt in &mut func.body {
        dp_frontend::visit::walk_stmt_mut(stmt, &mut |s| {
            let origin = s.origin;
            match &mut s.kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    ensure_block(then_branch, origin);
                    if let Some(e) = else_branch {
                        ensure_block(e, origin);
                    }
                }
                StmtKind::For { body, .. }
                | StmtKind::While { body, .. }
                | StmtKind::DoWhile { body, .. } => ensure_block(body, origin),
                _ => {}
            }
        });
    }
}

fn ensure_block(stmt: &mut Box<Stmt>, origin: CodeOrigin) {
    if !matches!(stmt.kind, StmtKind::Block(_)) {
        let inner = std::mem::replace(
            stmt.as_mut(),
            Stmt {
                kind: StmtKind::Empty,
                span: dp_frontend::Span::SYNTH,
                origin,
            },
        );
        stmt.kind = StmtKind::Block(vec![inner]);
    }
}

fn process_block(
    stmts: &mut Vec<Stmt>,
    snapshot: &Program,
    parent_name: &str,
    serial_fns: &mut Vec<Function>,
    manifest: &mut TransformManifest,
    counter: &mut usize,
) {
    let mut i = 0;
    while i < stmts.len() {
        // Recurse into nested statement lists first.
        match &mut stmts[i].kind {
            StmtKind::Block(inner) => {
                process_block(inner, snapshot, parent_name, serial_fns, manifest, counter);
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let StmtKind::Block(inner) = &mut then_branch.kind {
                    process_block(inner, snapshot, parent_name, serial_fns, manifest, counter);
                }
                if let Some(e) = else_branch {
                    if let StmtKind::Block(inner) = &mut e.kind {
                        process_block(inner, snapshot, parent_name, serial_fns, manifest, counter);
                    }
                }
            }
            StmtKind::For { body, .. }
            | StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. } => {
                if let StmtKind::Block(inner) = &mut body.kind {
                    process_block(inner, snapshot, parent_name, serial_fns, manifest, counter);
                }
            }
            _ => {}
        }

        let StmtKind::Launch(launch) = &stmts[i].kind else {
            i += 1;
            continue;
        };
        let child_name = launch.kernel.clone();
        let launch_span = stmts[i].span;

        // Section III-C: reject non-serializable children.
        let blockers = dp_analysis::serialization_blockers(snapshot, &child_name);
        if !blockers.is_empty() {
            let reasons: Vec<String> = blockers.iter().map(|b| b.to_string()).collect();
            manifest.diagnostics.push(Diagnostic {
                pass: "thresholding",
                function: parent_name.to_string(),
                message: format!("child not serializable: {}", reasons.join("; ")),
                span: launch_span,
            });
            i += 1;
            continue;
        }

        // Section III-D: extract the desired thread count.
        let threads_name = format!("_threads{}", *counter);
        let Some(tc) = dp_analysis::extract_thread_count(stmts, i, &threads_name) else {
            manifest.diagnostics.push(Diagnostic {
                pass: "thresholding",
                function: parent_name.to_string(),
                message: "no ceiling-division pattern found in grid dimension".to_string(),
                span: launch_span,
            });
            i += 1;
            continue;
        };
        *counter += 1;

        // Make sure the serial version of the child exists.
        let serial_name = ensure_serial_fn(snapshot, &child_name, serial_fns);

        // Insert `int _threads = N;` before the statement where N lived.
        let mut threads_decl = Stmt::decl(
            Type::Int,
            threads_name.clone(),
            Some(tc.n),
            CodeOrigin::ThresholdCheck,
        );
        threads_decl.origin = CodeOrigin::ThresholdCheck;
        stmts.insert(tc.insert_before, threads_decl);
        let launch_index = if tc.insert_before <= i { i + 1 } else { i };

        // Build the threshold branch around the launch.
        let launch_stmt = stmts[launch_index].clone();
        let StmtKind::Launch(launch) = &launch_stmt.kind else {
            unreachable!("launch index tracked through insertion")
        };
        let mut serial_args = launch.args.clone();
        serial_args.push(launch.grid.clone());
        serial_args.push(launch.block.clone());
        let serial_call = Stmt::expr(
            Expr::call(
                serial_name.clone(),
                serial_args,
                CodeOrigin::ThresholdSerial,
            ),
            CodeOrigin::ThresholdSerial,
        );
        let cond = Expr::bin(
            BinOp::Ge,
            Expr::ident(&threads_name, CodeOrigin::ThresholdCheck),
            Expr::ident(THRESHOLD_MACRO, CodeOrigin::ThresholdCheck),
            CodeOrigin::ThresholdCheck,
        );
        stmts[launch_index] = Stmt::synth(
            StmtKind::If {
                cond,
                then_branch: Box::new(Stmt::synth(
                    StmtKind::Block(vec![launch_stmt]),
                    CodeOrigin::ThresholdCheck,
                )),
                else_branch: Some(Box::new(Stmt::synth(
                    StmtKind::Block(vec![serial_call]),
                    CodeOrigin::ThresholdCheck,
                ))),
            },
            CodeOrigin::ThresholdCheck,
        );

        manifest.threshold_sites.push(ThresholdSiteMeta {
            parent: parent_name.to_string(),
            child: child_name,
            serial_fn: serial_name,
        });
        i = launch_index + 1;
    }
}

/// Generates (once) the serial `__device__` version of `child`
/// (Fig. 3b lines 09–15) and returns its name.
fn ensure_serial_fn(program: &Program, child: &str, serial_fns: &mut Vec<Function>) -> String {
    let serial_name = format!("{child}_serial");
    if serial_fns.iter().any(|f| f.name == serial_name) {
        return serial_name;
    }
    let child_fn = program
        .function(child)
        .expect("caller verified the child kernel exists");

    let used = idents_in_function(child_fn);
    let g = fresh_name("_s_gDim", &used);
    let b = fresh_name("_s_bDim", &used);
    let idx: Vec<String> = ["_s_bz", "_s_by", "_s_bx", "_s_tz", "_s_ty", "_s_tx"]
        .iter()
        .map(|n| fresh_name(n, &used))
        .collect();

    // Replace builtin index/dimension uses in a copy of the child body.
    let mut body = child_fn.body.clone();
    for stmt in &mut body {
        replace_builtin_member(stmt, "blockIdx", "z", &idx[0]);
        replace_builtin_member(stmt, "blockIdx", "y", &idx[1]);
        replace_builtin_member(stmt, "blockIdx", "x", &idx[2]);
        replace_builtin_member(stmt, "threadIdx", "z", &idx[3]);
        replace_builtin_member(stmt, "threadIdx", "y", &idx[4]);
        replace_builtin_member(stmt, "threadIdx", "x", &idx[5]);
        replace_builtin_ident(stmt, "gridDim", &g);
        replace_builtin_ident(stmt, "blockDim", &b);
    }
    tag_origin(&mut body, CodeOrigin::ThresholdSerial);

    let params = params_source(&child_fn.params);
    let comma = if child_fn.params.is_empty() { "" } else { ", " };

    if contains_return(&child_fn.body) {
        // `return` inside serialization loops would abort all remaining
        // simulated threads, so the body goes into its own device function
        // and `return` keeps per-thread semantics.
        let body_name = format!("{child}_serial_body");
        let idx_params = idx
            .iter()
            .map(|n| format!("int {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let mut body_fn = make_device_fn(
            &body_name,
            &format!("{params}{comma}dim3 {g}, dim3 {b}, {idx_params}"),
            Vec::new(),
        );
        body_fn.body = body;
        serial_fns.push(body_fn);

        let fwd = args_source(&child_fn.params);
        let fwd_comma = if child_fn.params.is_empty() { "" } else { ", " };
        let call = format!("{body_name}({fwd}{fwd_comma}{g}, {b}, {});", idx.join(", "));
        let loops = serial_loops(&g, &b, &idx, &call);
        let mut stmts = parse_template_stmts(&loops);
        tag_origin(&mut stmts, CodeOrigin::ThresholdSerial);
        let mut serial_fn = make_device_fn(
            &serial_name,
            &format!("{params}{comma}dim3 {g}, dim3 {b}"),
            Vec::new(),
        );
        serial_fn.body = stmts;
        serial_fns.push(serial_fn);
    } else {
        let loops = serial_loops(&g, &b, &idx, &format!("{BODY_MARKER}();"));
        let mut stmts = parse_template_stmts(&loops);
        tag_origin(&mut stmts, CodeOrigin::ThresholdSerial);
        assert!(
            splice_body(&mut stmts, body),
            "serial template has a body marker"
        );
        let mut serial_fn = make_device_fn(
            &serial_name,
            &format!("{params}{comma}dim3 {g}, dim3 {b}"),
            Vec::new(),
        );
        serial_fn.body = stmts;
        serial_fns.push(serial_fn);
    }
    serial_name
}

/// The six nested serialization loops over block and thread indices.
fn serial_loops(g: &str, b: &str, idx: &[String], innermost: &str) -> String {
    format!(
        "for (int {bz} = 0; {bz} < {g}.z; ++{bz}) {{
             for (int {by} = 0; {by} < {g}.y; ++{by}) {{
                 for (int {bx} = 0; {bx} < {g}.x; ++{bx}) {{
                     for (int {tz} = 0; {tz} < {b}.z; ++{tz}) {{
                         for (int {ty} = 0; {ty} < {b}.y; ++{ty}) {{
                             for (int {tx} = 0; {tx} < {b}.x; ++{tx}) {{
                                 {innermost}
                             }}
                         }}
                     }}
                 }}
             }}
         }}",
        bz = idx[0],
        by = idx[1],
        bx = idx[2],
        tz = idx[3],
        ty = idx[4],
        tx = idx[5],
    )
}

fn make_device_fn(name: &str, params_src: &str, body: Vec<Stmt>) -> Function {
    let src = format!("__device__ void {name}({params_src}) {{ }}");
    let program = dp_frontend::parse(&src)
        .unwrap_or_else(|e| panic!("internal function template failed: {e}\n{src}"));
    let Item::Function(mut f) = program.items.into_iter().next().unwrap() else {
        unreachable!()
    };
    f.body = body;
    f
}

/// Identifiers used by generated serial functions (for collision tests).
pub fn serial_index_names() -> HashSet<&'static str> {
    ["_s_bz", "_s_by", "_s_bx", "_s_tz", "_s_ty", "_s_tx"]
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frontend::printer::print_program;

    const BASIC: &str = "\
__global__ void child(int* data, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        data[i] = data[i] + 1;
    }
}

__global__ void parent(int* data, int* offsets, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int count = offsets[v + 1] - offsets[v];
        child<<<(count + 31) / 32, 32>>>(data, count);
    }
}
";

    #[test]
    fn transforms_basic_launch() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        let manifest = apply(&mut p, 128);
        assert_eq!(manifest.threshold_sites.len(), 1);
        assert!(manifest.diagnostics.is_empty());
        assert_eq!(p.define("_THRESHOLD"), Some(128));

        let out = print_program(&p);
        assert!(out.contains("child_serial"), "serial fn missing:\n{out}");
        assert!(
            out.contains("_threads0 >= _THRESHOLD"),
            "guard missing:\n{out}"
        );
        assert!(
            out.contains("int _threads0 = count;"),
            "hoist missing:\n{out}"
        );
        // The grid expression now refers to the hoisted count.
        assert!(
            out.contains("(_threads0 + 31) / 32"),
            "rewrite missing:\n{out}"
        );
        // Output must re-parse (source-to-source invariant).
        dp_frontend::parse(&out).unwrap();
    }

    #[test]
    fn serial_fn_replaces_builtins() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        apply(&mut p, 128);
        let serial = p.function("child_serial").unwrap();
        assert_eq!(serial.qual, FnQual::Device);
        // params + _s_gDim + _s_bDim
        assert_eq!(serial.params.len(), 4);
        let mut printed = String::new();
        dp_frontend::printer::print_function(&mut printed, serial);
        assert!(printed.contains("_s_bx"), "{printed}");
        assert!(printed.contains("_s_tx"), "{printed}");
        assert!(!printed.contains("threadIdx"), "{printed}");
        assert!(!printed.contains("blockIdx"), "{printed}");
    }

    #[test]
    fn child_with_return_uses_body_function() {
        let src = "\
__global__ void child(int* data, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) {
        return;
    }
    data[i] = i;
}
__global__ void parent(int* data, int n) {
    child<<<(n + 63) / 64, 64>>>(data, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 32);
        assert_eq!(manifest.threshold_sites.len(), 1);
        assert!(p.function("child_serial_body").is_some());
        let serial = p.function("child_serial").unwrap();
        let mut printed = String::new();
        dp_frontend::printer::print_function(&mut printed, serial);
        assert!(printed.contains("child_serial_body("), "{printed}");
    }

    #[test]
    fn non_serializable_child_is_skipped_with_diagnostic() {
        let src = "\
__global__ void child(int* d, int n) {
    __syncthreads();
    d[0] = n;
}
__global__ void parent(int* d, int n) {
    child<<<(n + 31) / 32, 32>>>(d, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let before = print_program(&p);
        let manifest = apply(&mut p, 128);
        assert!(manifest.threshold_sites.is_empty());
        assert_eq!(manifest.diagnostics.len(), 1);
        assert!(manifest.diagnostics[0].message.contains("__syncthreads"));
        // Program unchanged apart from the #define.
        let after = print_program(&p);
        assert_eq!(
            after.replace("#define _THRESHOLD 128\n", "").trim_start(),
            before.trim_start()
        );
    }

    #[test]
    fn unrecognizable_grid_expression_is_skipped() {
        let src = "\
__global__ void child(int* d, int n) { d[0] = n; }
__global__ void parent(int* d, int n) {
    child<<<n * 2, 32>>>(d, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 128);
        assert!(manifest.threshold_sites.is_empty());
        assert_eq!(manifest.diagnostics.len(), 1);
        assert!(manifest.diagnostics[0]
            .message
            .contains("no ceiling-division pattern"));
    }

    #[test]
    fn two_launches_of_same_child_share_serial_fn() {
        let src = "\
__global__ void child(int* d, int n) { d[0] = n; }
__global__ void parent(int* d, int n, int m) {
    child<<<(n + 31) / 32, 32>>>(d, n);
    child<<<(m + 31) / 32, 32>>>(d, m);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 128);
        assert_eq!(manifest.threshold_sites.len(), 2);
        let count = p.functions().filter(|f| f.name == "child_serial").count();
        assert_eq!(count, 1);
        let out = print_program(&p);
        assert!(out.contains("_threads0"));
        assert!(out.contains("_threads1"));
    }

    #[test]
    fn variable_defined_grid_dimension() {
        let src = "\
__global__ void child(int* d, int n) { d[0] = n; }
__global__ void parent(int* d, int n) {
    int blocks = (n - 1) / 256 + 1;
    child<<<blocks, 256>>>(d, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 64);
        assert_eq!(manifest.threshold_sites.len(), 1);
        let out = print_program(&p);
        assert!(out.contains("int _threads0 = n;"), "{out}");
        assert!(out.contains("(_threads0 - 1) / 256 + 1"), "{out}");
    }

    #[test]
    fn host_launches_are_not_thresholded() {
        let src = "\
__global__ void child(int* d, int n) { d[0] = n; }
void host_main(int* d, int n) {
    child<<<(n + 31) / 32, 32>>>(d, n);
}
";
        let mut p = dp_frontend::parse(src).unwrap();
        let manifest = apply(&mut p, 128);
        assert!(manifest.threshold_sites.is_empty());
        assert!(manifest.diagnostics.is_empty());
    }

    #[test]
    fn output_reparses_after_transform() {
        let mut p = dp_frontend::parse(BASIC).unwrap();
        apply(&mut p, 128);
        let out = print_program(&p);
        let p2 = dp_frontend::parse(&out).unwrap();
        assert_eq!(p2.functions().count(), p.functions().count());
    }
}
