//! Optimization configuration: which passes run and with what parameters.

use std::fmt;

/// Aggregation granularity (paper Section II-B and V-A).
///
/// `Warp`, `Block`, and `Grid` match prior work (KLAP); `MultiBlock(n)` is
/// the granularity this paper introduces: parent blocks are grouped `n` at a
/// time and the last block of a group to finish performs the aggregated
/// launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggGranularity {
    /// Aggregate launches across the threads of one warp.
    Warp,
    /// Aggregate launches across the threads of one block.
    Block,
    /// Aggregate launches across a group of `n` blocks (the paper's new
    /// granularity).
    MultiBlock(u32),
    /// Aggregate launches across the whole parent grid; the aggregated
    /// launch is performed from the host after the parent grid completes.
    Grid,
}

impl fmt::Display for AggGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggGranularity::Warp => f.write_str("warp"),
            AggGranularity::Block => f.write_str("block"),
            AggGranularity::MultiBlock(n) => write!(f, "multi-block({n})"),
            AggGranularity::Grid => f.write_str("grid"),
        }
    }
}

/// Configuration for the aggregation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggConfig {
    /// Aggregation granularity.
    pub granularity: AggGranularity,
    /// Optional aggregation threshold (paper Section V-B): if fewer than
    /// this many parent threads participate, child grids are launched
    /// directly instead of aggregated. Only valid at block granularity
    /// (barrier synchronization is required to count participants).
    pub agg_threshold: Option<i64>,
}

impl AggConfig {
    /// Aggregation at the given granularity without an aggregation
    /// threshold.
    pub fn new(granularity: AggGranularity) -> Self {
        AggConfig {
            granularity,
            agg_threshold: None,
        }
    }
}

/// Which optimizations to apply, with their tuning parameters.
///
/// The paper's combinations map as:
///
/// | paper | config |
/// |-------|--------|
/// | CDP            | `OptConfig::none()` |
/// | CDP+T          | `.threshold(v)` |
/// | CDP+C          | `.coarsen_factor(f)` |
/// | CDP+A (KLAP)   | `.aggregation(AggConfig::new(g))` |
/// | CDP+T+C+A      | all three |
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OptConfig {
    /// Thresholding: serialize child grids smaller than this many threads.
    pub threshold: Option<i64>,
    /// Coarsening factor: original child blocks per coarsened block.
    pub coarsen_factor: Option<i64>,
    /// Aggregation configuration.
    pub aggregation: Option<AggConfig>,
}

impl OptConfig {
    /// No optimizations (plain CDP).
    pub fn none() -> Self {
        OptConfig::default()
    }

    /// All three optimizations with paper-typical defaults
    /// (threshold 128, coarsening factor 8, multi-block granularity of 8
    /// blocks).
    pub fn all() -> Self {
        OptConfig::none()
            .threshold(128)
            .coarsen_factor(8)
            .aggregation(AggConfig::new(AggGranularity::MultiBlock(8)))
    }

    /// Enables thresholding with the given launch threshold.
    pub fn threshold(mut self, value: i64) -> Self {
        self.threshold = Some(value);
        self
    }

    /// Enables coarsening with the given factor.
    pub fn coarsen_factor(mut self, factor: i64) -> Self {
        self.coarsen_factor = Some(factor);
        self
    }

    /// Enables aggregation.
    pub fn aggregation(mut self, config: AggConfig) -> Self {
        self.aggregation = Some(config);
        self
    }

    /// A short label such as `"CDP+T+C+A"` (paper Fig. 9 legend style).
    pub fn label(&self) -> String {
        let mut label = String::from("CDP");
        if self.threshold.is_some() {
            label.push_str("+T");
        }
        if self.coarsen_factor.is_some() {
            label.push_str("+C");
        }
        if self.aggregation.is_some() {
            label.push_str("+A");
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(OptConfig::none().label(), "CDP");
        assert_eq!(OptConfig::none().threshold(64).label(), "CDP+T");
        assert_eq!(
            OptConfig::none()
                .coarsen_factor(2)
                .aggregation(AggConfig::new(AggGranularity::Block))
                .label(),
            "CDP+C+A"
        );
        assert_eq!(OptConfig::all().label(), "CDP+T+C+A");
    }

    #[test]
    fn granularity_display() {
        assert_eq!(AggGranularity::Warp.to_string(), "warp");
        assert_eq!(
            AggGranularity::MultiBlock(16).to_string(),
            "multi-block(16)"
        );
    }

    #[test]
    fn builder_is_chainable() {
        let c = OptConfig::none().threshold(32).coarsen_factor(4);
        assert_eq!(c.threshold, Some(32));
        assert_eq!(c.coarsen_factor, Some(4));
        assert_eq!(c.aggregation, None);
    }
}
