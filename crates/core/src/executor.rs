//! The runtime executor: a simulated GPU plus the KLAP-style runtime that
//! provisions aggregation buffer pools and performs grid-granularity
//! aggregated launches from the host.

use crate::error::Result;
use dp_sim::{simulate, HostEvent, SimResult, TimingParams};
use dp_transform::{AggSiteMeta, BufferParam, TransformManifest};
use dp_vm::bytecode::{CostModel, Module};
use dp_vm::machine::{ExecLimits, Machine, MachineStats};
use dp_vm::trace::ExecutionTrace;
use dp_vm::Value;
use std::collections::HashMap;

/// Everything a run produces: the functional trace, machine statistics, and
/// the host event sequence needed by the timing simulator.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Functional execution trace (per-block cycles, launches, origins).
    pub trace: ExecutionTrace,
    /// Machine statistics.
    pub stats: MachineStats,
    /// Host-side events in program order.
    pub host_events: Vec<HostEvent>,
}

impl RunReport {
    /// Replays the run against a hardware timing model.
    pub fn simulate(&self, params: &TimingParams) -> SimResult {
        simulate(&self.trace, &self.host_events, params)
    }
}

struct PendingHostAgg {
    agg_kernel: String,
    arg_ptrs: Vec<i64>,
    scan_ptr: i64,
    barr_ptr: i64,
    ctr_ptr: i64,
    maxb_ptr: i64,
}

/// A simulated GPU bound to one compiled program.
///
/// Mirrors the host-side API of a CUDA program: allocate device memory,
/// launch kernels, synchronize. Kernels transformed by the aggregation pass
/// automatically receive their hidden buffer parameters (allocated, zeroed,
/// and appended here), and grid-granularity sites get their aggregated
/// child launched from the host after synchronization — the role KLAP's
/// runtime library plays in the paper's artifact.
pub struct Executor {
    machine: Machine,
    manifest: TransformManifest,
    host_events: Vec<HostEvent>,
    pending_host_agg: Vec<PendingHostAgg>,
    buffer_cache: HashMap<(String, usize, usize), (i64, usize)>,
}

impl Executor {
    pub(crate) fn new(
        module: Module,
        manifest: TransformManifest,
        cost: CostModel,
        limits: ExecLimits,
    ) -> Self {
        Executor {
            machine: Machine::with_config(module, cost, limits),
            manifest,
            host_events: Vec::new(),
            pending_host_agg: Vec::new(),
            buffer_cache: HashMap::new(),
        }
    }

    /// Allocates device memory (`words` words), returning its address.
    pub fn alloc(&mut self, words: usize) -> i64 {
        self.machine.alloc(words)
    }

    /// Allocates and initializes an integer array.
    pub fn alloc_i64s(&mut self, values: &[i64]) -> i64 {
        self.machine.alloc_i64s(values)
    }

    /// Allocates and initializes a float array.
    pub fn alloc_f64s(&mut self, values: &[f64]) -> i64 {
        self.machine.alloc_f64s(values)
    }

    /// Reads integers back from device memory.
    pub fn read_i64s(&self, ptr: i64, len: usize) -> Result<Vec<i64>> {
        Ok(self.machine.read_i64s(ptr, len)?)
    }

    /// Reads floats back from device memory.
    pub fn read_f64s(&self, ptr: i64, len: usize) -> Result<Vec<f64>> {
        Ok(self.machine.read_f64s(ptr, len)?)
    }

    /// Writes one integer word.
    pub fn write_i64(&mut self, ptr: i64, value: i64) -> Result<()> {
        Ok(self.machine.mem.write(ptr, Value::Int(value))?)
    }

    /// Fills `words` words with an integer value.
    pub fn fill_i64(&mut self, ptr: i64, words: usize, value: i64) -> Result<()> {
        Ok(self.machine.mem.fill(ptr, words, Value::Int(value))?)
    }

    /// Direct access to the underlying machine (advanced use).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Launches a kernel from the host. Aggregation buffer parameters are
    /// provisioned automatically for transformed parents.
    pub fn launch(
        &mut self,
        kernel: &str,
        grid: impl Into<Value>,
        block: impl Into<Value>,
        args: &[Value],
    ) -> Result<()> {
        let grid = grid.into();
        let block = block.into();
        let mut full_args = args.to_vec();

        let sites: Vec<AggSiteMeta> = self
            .manifest
            .agg_sites
            .iter()
            .filter(|s| s.parent == kernel)
            .cloned()
            .collect();
        for (site_idx, site) in sites.iter().enumerate() {
            let g = grid.as_dim3();
            let b = block.as_dim3();
            let grid_blocks = (g[0] * g[1] * g[2]) as u64;
            let block_threads = (b[0] * b[1] * b[2]) as u64;
            let groups = site.group_count(grid_blocks, block_threads).max(1);
            let slots = site.slots_per_group(grid_blocks, block_threads).max(1);

            let mut arg_ptrs = Vec::new();
            let mut scan_ptr = 0;
            let mut barr_ptr = 0;
            let mut ctr_ptr = 0;
            let mut maxb_ptr = 0;
            for (param_idx, param) in site.buffer_params.iter().enumerate() {
                let words = match param {
                    BufferParam::ArgArray { .. }
                    | BufferParam::GDimScanned
                    | BufferParam::BDimArray => (groups * slots) as usize,
                    BufferParam::PackedCounter
                    | BufferParam::MaxBDim
                    | BufferParam::FinishedCounter
                    | BufferParam::ParticipantCounter => groups as usize,
                    BufferParam::SlotsPerGroup => {
                        full_args.push(Value::Int(slots as i64));
                        continue;
                    }
                };
                let ptr = self.buffer(kernel, site_idx, param_idx, words)?;
                match param {
                    BufferParam::ArgArray { .. } => arg_ptrs.push(ptr),
                    BufferParam::GDimScanned => scan_ptr = ptr,
                    BufferParam::BDimArray => barr_ptr = ptr,
                    BufferParam::PackedCounter => ctr_ptr = ptr,
                    BufferParam::MaxBDim => maxb_ptr = ptr,
                    _ => {}
                }
                full_args.push(Value::Int(ptr));
            }
            if site.host_side_launch {
                self.pending_host_agg.push(PendingHostAgg {
                    agg_kernel: site.agg_kernel.clone(),
                    arg_ptrs,
                    scan_ptr,
                    barr_ptr,
                    ctr_ptr,
                    maxb_ptr,
                });
            }
        }

        let gid = self.machine.launch_host(kernel, grid, block, &full_args)?;
        self.host_events.push(HostEvent::Launch(gid));
        Ok(())
    }

    /// Allocates (or reuses) and zeroes a named aggregation buffer.
    fn buffer(
        &mut self,
        kernel: &str,
        site_idx: usize,
        param_idx: usize,
        words: usize,
    ) -> Result<i64> {
        let key = (kernel.to_string(), site_idx, param_idx);
        let entry = self.buffer_cache.get(&key).copied();
        let ptr = match entry {
            Some((ptr, cap)) if cap >= words => ptr,
            _ => {
                let ptr = self.machine.alloc(words);
                self.buffer_cache.insert(key, (ptr, words));
                ptr
            }
        };
        self.machine.mem.fill(ptr, words, Value::Int(0))?;
        Ok(ptr)
    }

    /// Synchronizes with the device (`cudaDeviceSynchronize`): runs every
    /// pending grid to completion, then performs any deferred
    /// grid-granularity aggregated launches.
    pub fn sync(&mut self) -> Result<()> {
        self.machine.run_to_quiescence()?;
        self.host_events.push(HostEvent::Sync);
        let pending: Vec<PendingHostAgg> = self.pending_host_agg.drain(..).collect();
        for agg in pending {
            let packed = self.machine.mem.read(agg.ctr_ptr)?.as_int();
            let num_parents = packed >> 32;
            let total_blocks = packed & 0xFFFF_FFFF;
            if num_parents == 0 || total_blocks == 0 {
                continue;
            }
            let max_bdim = self.machine.mem.read(agg.maxb_ptr)?.as_int();
            let mut args: Vec<Value> = agg.arg_ptrs.iter().map(|&p| Value::Int(p)).collect();
            args.push(Value::Int(agg.scan_ptr));
            args.push(Value::Int(agg.barr_ptr));
            args.push(Value::Int(num_parents));
            let gid = self
                .machine
                .launch_host(&agg.agg_kernel, total_blocks, max_bdim, &args)?;
            self.host_events.push(HostEvent::AggLaunch(gid));
            self.machine.run_to_quiescence()?;
            self.host_events.push(HostEvent::Sync);
        }
        Ok(())
    }

    /// Machine statistics so far.
    pub fn stats(&self) -> MachineStats {
        self.machine.stats()
    }

    /// Finishes the run, returning the trace, stats, and host events.
    pub fn finish(mut self) -> RunReport {
        RunReport {
            trace: self.machine.take_trace(),
            stats: self.machine.stats(),
            host_events: self.host_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use dp_transform::{AggConfig, AggGranularity, OptConfig};

    const SRC: &str = "\
__global__ void child(int* d, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        atomicAdd(&d[i], 1);
    }
}
__global__ void parent(int* d, int* offsets, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int count = offsets[v + 1] - offsets[v];
        if (count > 0) {
            child<<<(count + 31) / 32, 32>>>(d, count);
        }
    }
}
";

    /// Runs SRC under a config; each parent thread v increments d[0..count).
    fn run(config: OptConfig) -> (Vec<i64>, RunReport) {
        let compiled = Compiler::new().config(config).compile(SRC).unwrap();
        let mut exec = compiled.executor();
        // 6 vertices with degrees 3, 0, 70, 1, 40, 5.
        let degrees = [3i64, 0, 70, 1, 40, 5];
        let mut offsets = vec![0i64];
        for d in degrees {
            offsets.push(offsets.last().unwrap() + d);
        }
        let max_degree = 70usize;
        let d = exec.alloc(max_degree);
        let offs = exec.alloc_i64s(&offsets);
        exec.launch(
            "parent",
            2,
            4,
            &[
                Value::Int(d),
                Value::Int(offs),
                Value::Int(degrees.len() as i64),
            ],
        )
        .unwrap();
        exec.sync().unwrap();
        let out = exec.read_i64s(d, max_degree).unwrap();
        (out, exec.finish())
    }

    fn expected() -> Vec<i64> {
        // Each vertex's child grid increments d[0..count), so d[i] ends up
        // counting the vertices whose degree exceeds i.
        let degrees = [3i64, 0, 70, 1, 40, 5];
        (0..70)
            .map(|i| degrees.iter().filter(|&&d| d > i).count() as i64)
            .collect()
    }

    #[test]
    fn plain_cdp_is_correct() {
        let (out, report) = run(OptConfig::none());
        assert_eq!(out, expected());
        // 5 launching vertices (one has count 0).
        assert_eq!(report.stats.device_launches, 5);
    }

    #[test]
    fn thresholding_is_correct_and_reduces_launches() {
        let (out, report) = run(OptConfig::none().threshold(32));
        assert_eq!(out, expected());
        // Only counts 70 and 40 reach the threshold.
        assert_eq!(report.stats.device_launches, 2);
    }

    #[test]
    fn coarsening_is_correct() {
        let (out, _) = run(OptConfig::none().coarsen_factor(2));
        assert_eq!(out, expected());
    }

    #[test]
    fn aggregation_block_granularity_is_correct() {
        let (out, report) =
            run(OptConfig::none().aggregation(AggConfig::new(AggGranularity::Block)));
        assert_eq!(out, expected());
        // One aggregated launch per parent block (both blocks have
        // participants: block 0 hosts v0..3, block 1 hosts v4..5).
        assert_eq!(report.stats.device_launches, 2);
    }

    #[test]
    fn aggregation_warp_granularity_is_correct() {
        let (out, _) = run(OptConfig::none().aggregation(AggConfig::new(AggGranularity::Warp)));
        assert_eq!(out, expected());
    }

    #[test]
    fn aggregation_multiblock_granularity_is_correct() {
        let (out, report) =
            run(OptConfig::none().aggregation(AggConfig::new(AggGranularity::MultiBlock(2))));
        assert_eq!(out, expected());
        // Both parent blocks fall into one group: a single aggregated launch.
        assert_eq!(report.stats.device_launches, 1);
    }

    #[test]
    fn aggregation_grid_granularity_launches_from_host() {
        let (out, report) =
            run(OptConfig::none().aggregation(AggConfig::new(AggGranularity::Grid)));
        assert_eq!(out, expected());
        assert_eq!(report.stats.device_launches, 0);
        assert!(report
            .host_events
            .iter()
            .any(|e| matches!(e, HostEvent::AggLaunch(_))));
    }

    #[test]
    fn aggregation_threshold_falls_back_to_direct_launches() {
        // Threshold of 100 participants can never be met by 4-thread blocks:
        // every child grid is launched directly.
        let (out, report) = run(OptConfig::none().aggregation(AggConfig {
            granularity: AggGranularity::Block,
            agg_threshold: Some(100),
        }));
        assert_eq!(out, expected());
        assert_eq!(report.stats.device_launches, 5);
    }

    #[test]
    fn full_pipeline_is_correct() {
        let (out, report) = run(OptConfig::none()
            .threshold(32)
            .coarsen_factor(4)
            .aggregation(AggConfig::new(AggGranularity::MultiBlock(2))));
        assert_eq!(out, expected());
        // Two surviving launches aggregated into one.
        assert_eq!(report.stats.device_launches, 1);
    }

    #[test]
    fn report_simulates() {
        let (_, report) = run(OptConfig::none());
        let sim = report.simulate(&TimingParams::default());
        assert!(sim.total_us > 0.0);
        assert_eq!(sim.device_launches, 5);
        assert_eq!(sim.host_launches, 1);
    }

    #[test]
    fn repeated_launches_reuse_buffers() {
        let compiled = Compiler::new()
            .config(OptConfig::none().aggregation(AggConfig::new(AggGranularity::Block)))
            .compile(SRC)
            .unwrap();
        let mut exec = compiled.executor();
        let d = exec.alloc(8);
        let offs = exec.alloc_i64s(&[0, 4, 8]);
        for _ in 0..3 {
            exec.launch(
                "parent",
                1,
                2,
                &[Value::Int(d), Value::Int(offs), Value::Int(2)],
            )
            .unwrap();
            exec.sync().unwrap();
        }
        let out = exec.read_i64s(d, 8).unwrap();
        // Both vertices have degree 4, so each round adds 2 to d[0..4).
        assert_eq!(
            out,
            vec![6, 6, 6, 6, 0, 0, 0, 0],
            "three rounds of increments"
        );
        let mem_used = exec.machine_mut().mem.allocated_words();
        assert!(
            mem_used < 10_000,
            "buffers must be reused: {mem_used} words"
        );
    }
}
