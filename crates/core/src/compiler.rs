//! The end-to-end compiler: CUDA-subset source → optimization passes →
//! transformed source → executable module.

use crate::error::Result;
use crate::executor::Executor;
use dp_frontend::ast::Program;
use dp_frontend::printer::print_program;
use dp_transform::{apply_pipeline, OptConfig, TransformManifest};
use dp_vm::bytecode::{CostModel, Module};
use dp_vm::lower::{compile_program_with, LowerOptions};
use dp_vm::machine::{DispatchMode, ExecLimits};

/// Compiles CUDA-subset source with a chosen optimization configuration.
///
/// # Examples
///
/// ```
/// use dp_core::{Compiler, OptConfig};
/// let compiled = Compiler::new()
///     .config(OptConfig::none().threshold(64))
///     .compile(
///         "__global__ void c(int* d, int n) { if (blockIdx.x < n) { d[blockIdx.x] = n; } }\n\
///          __global__ void p(int* d, int n) { c<<<(n + 31) / 32, 32>>>(d, n); }",
///     )
///     .unwrap();
/// assert!(compiled.transformed_source().contains("_THRESHOLD"));
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    config: OptConfig,
    cost: CostModel,
    limits: ExecLimits,
    lower: LowerOptions,
    dispatch: DispatchMode,
    block_parallelism: usize,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

impl Compiler {
    /// A compiler with no optimizations (plain CDP) and default cost model.
    pub fn new() -> Self {
        Compiler {
            config: OptConfig::none(),
            cost: CostModel::default(),
            limits: ExecLimits::default(),
            lower: LowerOptions::default(),
            dispatch: DispatchMode::default(),
            block_parallelism: 0,
        }
    }

    /// Sets the optimization configuration.
    pub fn config(mut self, config: OptConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables or disables the VM's superinstruction-fusion pass (on by
    /// default). Fusion is accounting-transparent — traces, statistics, and
    /// origin attribution are identical either way — so disabling it is only
    /// useful as the baseline when benchmarking the interpreter itself.
    pub fn fusion(mut self, on: bool) -> Self {
        self.lower.fuse = on;
        self
    }

    /// Overrides the VM instruction cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides execution limits.
    pub fn limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Selects the VM dispatch loop (threaded by default). Both modes are
    /// bit-identical in results and accounting; `Match` exists for
    /// differential testing and as the interpreter benchmark baseline.
    pub fn dispatch(mut self, mode: DispatchMode) -> Self {
        self.dispatch = mode;
        self
    }

    /// Sets parallel block execution for executors of this compilation:
    /// `0` (the default) draws workers from the process-wide `DPOPT_JOBS`
    /// budget shared with the sweep engine; a non-zero value forces
    /// exactly that many workers. Results are bit-identical either way.
    pub fn block_parallelism(mut self, jobs: usize) -> Self {
        self.block_parallelism = jobs;
        self
    }

    /// Parses, transforms, pretty-prints, and lowers `source`.
    ///
    /// # Errors
    ///
    /// Returns parse errors from the frontend or lowering errors if the
    /// (transformed) program falls outside the executable subset.
    pub fn compile(&self, source: &str) -> Result<Compiled> {
        let mut program = dp_frontend::parse(source)?;
        let manifest = apply_pipeline(&mut program, &self.config);
        let transformed_source = print_program(&program);
        let module = compile_program_with(&program, self.lower)?;
        Ok(Compiled {
            program,
            transformed_source,
            manifest,
            module,
            config: self.config,
            cost: self.cost.clone(),
            limits: self.limits,
            dispatch: self.dispatch,
            block_parallelism: self.block_parallelism,
        })
    }
}

/// A [`Compiled`] shared across threads.
///
/// A compiled program is immutable once built — pure data (AST, bytecode,
/// manifest, cost tables) with no interior mutability — so one compilation
/// can fan out to any number of worker threads, each creating its own
/// [`Executor`] via [`Compiled::executor`]. The sweep engine compiles each
/// distinct (source, configuration) pair once and shares the handle across
/// its worker pool.
pub type SharedCompiled = std::sync::Arc<Compiled>;

// `Compiled` must stay shareable across threads (the sweep engine's worker
// pool depends on it); adding an `Rc`/`RefCell` anywhere in its tree breaks
// this assertion at compile time rather than at a distant use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Compiled>();
};

/// A compiled program: transformed AST/source, manifest, and bytecode.
#[derive(Debug, Clone)]
pub struct Compiled {
    program: Program,
    transformed_source: String,
    manifest: TransformManifest,
    module: Module,
    config: OptConfig,
    cost: CostModel,
    limits: ExecLimits,
    dispatch: DispatchMode,
    block_parallelism: usize,
}

impl Compiled {
    /// The transformed program (with origin tags).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The transformed source text (what the paper's source-to-source
    /// compiler would write to the output `.cu` file).
    pub fn transformed_source(&self) -> &str {
        &self.transformed_source
    }

    /// What the passes did (and declined to do).
    pub fn manifest(&self) -> &TransformManifest {
        &self.manifest
    }

    /// The compiled bytecode module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The optimization configuration used.
    pub fn opt_config(&self) -> &OptConfig {
        &self.config
    }

    /// Creates a fresh executor (simulated GPU) for this program,
    /// inheriting the compiler's dispatch and block-parallelism settings.
    pub fn executor(&self) -> Executor {
        let mut exec = Executor::new(
            self.module.clone(),
            self.manifest.clone(),
            self.cost.clone(),
            self.limits,
        );
        exec.machine_mut().set_dispatch(self.dispatch);
        exec.machine_mut()
            .set_block_parallelism(self.block_parallelism);
        exec
    }

    /// Wraps this compilation in a thread-shareable handle.
    pub fn into_shared(self) -> SharedCompiled {
        std::sync::Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_transform::{AggConfig, AggGranularity};

    const SRC: &str = "\
__global__ void child(int* d, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        d[i] = d[i] + 1;
    }
}
__global__ void parent(int* d, int* offsets, int numV) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    if (v < numV) {
        int count = offsets[v + 1] - offsets[v];
        if (count > 0) {
            child<<<(count + 31) / 32, 32>>>(d, count);
        }
    }
}
";

    #[test]
    fn compiles_all_configurations() {
        for config in [
            OptConfig::none(),
            OptConfig::none().threshold(16),
            OptConfig::none().coarsen_factor(2),
            OptConfig::none().aggregation(AggConfig::new(AggGranularity::Block)),
            OptConfig::all(),
        ] {
            let compiled = Compiler::new().config(config).compile(SRC).unwrap();
            assert!(compiled.module().by_name("parent").is_some());
            // Transformed source must itself re-parse (source-to-source).
            dp_frontend::parse(compiled.transformed_source()).unwrap();
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let err = Compiler::new().compile("__global__ void k( {").unwrap_err();
        assert!(matches!(err, crate::error::Error::Parse(_)));
    }

    #[test]
    fn manifest_reflects_configuration() {
        let compiled = Compiler::new()
            .config(OptConfig::all())
            .compile(SRC)
            .unwrap();
        let m = compiled.manifest();
        assert_eq!(m.threshold_sites.len(), 1);
        assert_eq!(m.coarsen_sites.len(), 1);
        assert_eq!(m.agg_sites.len(), 1);
    }
}
