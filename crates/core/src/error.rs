//! Unified error type for the compile-and-run pipeline.

use std::error::Error as StdError;
use std::fmt;

/// Any error from parsing, lowering, or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Frontend parse error.
    Parse(dp_frontend::ParseError),
    /// Bytecode lowering error.
    Lower(dp_vm::CompileError),
    /// Runtime execution error.
    Exec(dp_vm::ExecError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Lower(e) => write!(f, "{e}"),
            Error::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Lower(e) => Some(e),
            Error::Exec(e) => Some(e),
        }
    }
}

impl From<dp_frontend::ParseError> for Error {
    fn from(e: dp_frontend::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<dp_vm::CompileError> for Error {
    fn from(e: dp_vm::CompileError) -> Self {
        Error::Lower(e)
    }
}

impl From<dp_vm::ExecError> for Error {
    fn from(e: dp_vm::ExecError) -> Self {
        Error::Exec(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = dp_vm::ExecError::new("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: Error = dp_vm::CompileError::new("bad").into();
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
