//! # dp-core
//!
//! The high-level API of the dynamic-parallelism optimization framework:
//!
//! - [`Compiler`] — parse CUDA-subset source, apply the thresholding /
//!   coarsening / aggregation passes (paper Fig. 8a), pretty-print the
//!   transformed source, and lower to executable bytecode;
//! - [`Executor`] — a simulated GPU with the KLAP-runtime analogue that
//!   provisions aggregation buffers and performs grid-granularity
//!   aggregated launches from the host;
//! - [`RunReport`] — the functional trace plus host events, replayable
//!   against a [`TimingParams`] hardware model.
//!
//! ```
//! use dp_core::{Compiler, OptConfig, TimingParams};
//! use dp_vm::Value;
//!
//! let compiled = Compiler::new()
//!     .config(OptConfig::none().threshold(8))
//!     .compile(
//!         "__global__ void c(int* d, int n) { \
//!              int i = blockIdx.x * blockDim.x + threadIdx.x; \
//!              if (i < n) { d[i] = 1; } }\n\
//!          __global__ void p(int* d, int n) { \
//!              if (threadIdx.x == 0) { c<<<(n + 31) / 32, 32>>>(d, n); } }",
//!     )?;
//! let mut exec = compiled.executor();
//! let d = exec.alloc(100);
//! exec.launch("p", 1, 32, &[Value::Int(d), Value::Int(100)])?;
//! exec.sync()?;
//! assert_eq!(exec.read_i64s(d, 100)?, vec![1; 100]);
//! let report = exec.finish();
//! let timing = report.simulate(&TimingParams::default());
//! assert!(timing.total_us > 0.0);
//! # Ok::<(), dp_core::Error>(())
//! ```

pub mod compiler;
pub mod error;
pub mod executor;

pub use compiler::{Compiled, Compiler, SharedCompiled};
pub use dp_sim::{HostEvent, SimResult, TimingParams};
pub use dp_transform::{AggConfig, AggGranularity, OptConfig};
pub use dp_vm::machine::DispatchMode;
pub use error::{Error, Result};
pub use executor::{Executor, RunReport};
