//! Starvation and stealing contracts for the class-aware deque pool.
//!
//! The properties under test, at several worker counts (the CI
//! determinism matrix runs this suite at `DPOPT_JOBS` 1, 2, and 4 — the
//! suite itself also pins explicit pool sizes so the contracts hold
//! regardless of the env):
//!
//! - A bulk-saturated pool still completes an interactive job promptly:
//!   interactive work overtakes any amount of bulk backlog because every
//!   worker scans all interactive queues before any bulk queue.
//! - `run_now` latency is bounded under bulk saturation: the claim gate
//!   degrades it inline rather than parking it behind the backlog.
//! - A single free worker drains slots it does not own (work stealing),
//!   so parked or busy workers never strand queued jobs.

use dp_pool::{JobClass, Pool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Parks exactly `count` workers of `pool` (each in a *running* job, not
/// a queued one); returns the release sender.
fn park_workers(pool: &Pool, count: usize) -> std::sync::mpsc::SyncSender<()> {
    let (release_tx, release_rx) = sync_channel::<()>(count);
    let release_rx = Arc::new(Mutex::new(release_rx));
    let (entered_tx, entered_rx) = sync_channel::<()>(count);
    for _ in 0..count {
        let entered_tx = entered_tx.clone();
        let release_rx = Arc::clone(&release_rx);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            let guard = release_rx.lock().unwrap();
            let _ = guard.recv();
        });
    }
    for _ in 0..count {
        entered_rx.recv().unwrap();
    }
    release_tx
}

fn wait_until(deadline_secs: u64, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while !done() {
        assert!(Instant::now() < deadline, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The core starvation contract: an interactive job pushed *behind* a
/// pile of bulk jobs completes ahead of (nearly all of) them. With one
/// worker the order is fully deterministic: interactive runs first.
#[test]
fn interactive_overtakes_bulk_backlog_single_worker() {
    let pool = Pool::new(1);
    let release = park_workers(&pool, 1);
    let order = Arc::new(Mutex::new(Vec::new()));
    for i in 0..30 {
        let order = Arc::clone(&order);
        pool.submit_as(JobClass::Bulk, move || {
            order.lock().unwrap().push(format!("bulk-{i}"));
        });
    }
    {
        let order = Arc::clone(&order);
        pool.submit_as(JobClass::Interactive, move || {
            order.lock().unwrap().push("interactive".to_string());
        });
    }
    drop(release);
    wait_until(20, || order.lock().unwrap().len() == 31);
    let order = order.lock().unwrap();
    assert_eq!(
        order[0], "interactive",
        "the sole worker must scan interactive queues first: {order:?}"
    );
}

/// Same contract across multiple workers and slots: the interactive job
/// lands in *some* slot (round-robin), yet whichever worker picks up work
/// first finds it before any meaningful share of the bulk backlog drains.
#[test]
fn interactive_overtakes_bulk_backlog_multi_worker() {
    for workers in [2usize, 4] {
        let pool = Pool::new(workers);
        let release = park_workers(&pool, workers);
        let done = Arc::new(AtomicUsize::new(0));
        let interactive_pos = Arc::new(AtomicUsize::new(usize::MAX));
        const BULK: usize = 40;
        for _ in 0..BULK {
            let done = Arc::clone(&done);
            pool.submit_as(JobClass::Bulk, move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        {
            let done = Arc::clone(&done);
            let interactive_pos = Arc::clone(&interactive_pos);
            pool.submit_as(JobClass::Interactive, move || {
                let pos = done.fetch_add(1, Ordering::SeqCst);
                interactive_pos.store(pos, Ordering::SeqCst);
            });
        }
        drop(release);
        wait_until(20, || done.load(Ordering::SeqCst) == BULK + 1);
        let pos = interactive_pos.load(Ordering::SeqCst);
        // Each of the `workers` workers grabs at most one job before some
        // worker reaches the interactive queue scan; allow generous
        // scheduler slop on top and still catch FIFO behavior (which
        // would put it near position 40).
        assert!(
            pos < BULK / 2,
            "{workers} workers: interactive finished at position {pos}, \
             expected well before the bulk backlog"
        );
    }
}

/// Claim-gated `run_now` under full bulk saturation must not wait for the
/// backlog: the claim fails and the job runs inline, so its latency is
/// bounded by the job body, not the queue. Covers pool sizes 1, 2, 4 (the
/// matrix worker counts).
#[test]
fn run_now_is_bounded_under_bulk_saturation() {
    for workers in [1usize, 2, 4] {
        let pool = Pool::new(workers);
        let release = park_workers(&pool, workers);
        // Pile bulk work behind the parked workers.
        for _ in 0..50 {
            pool.submit_as(JobClass::Bulk, || {
                std::thread::sleep(Duration::from_millis(1));
            });
        }
        let start = Instant::now();
        let got = pool
            .run_now_as(JobClass::Interactive, || 99)
            .expect("interactive job result");
        let latency = start.elapsed();
        assert_eq!(got, 99);
        // Inline execution of a trivial body: seconds of slack still
        // distinguishes it from draining 50ms+ of backlog first.
        assert!(
            latency < Duration::from_secs(5),
            "{workers} workers: run_now took {latency:?} under saturation"
        );
        drop(release);
    }
}

/// Work stealing: with 3 of 4 workers parked, the one free worker must
/// drain jobs round-robined into *all* slots — most of them not its own —
/// and the interactive marker still overtakes the bulk queue it shares a
/// slot with.
#[test]
fn free_worker_steals_from_parked_workers_slots() {
    let pool = Pool::new(4);
    let parked = park_workers(&pool, 3);
    let baseline_steals = pool.stats().steals;
    let done = Arc::new(AtomicUsize::new(0));
    let interactive_pos = Arc::new(AtomicUsize::new(usize::MAX));
    const BULK: usize = 40;
    for _ in 0..BULK {
        let done = Arc::clone(&done);
        pool.submit_as(JobClass::Bulk, move || {
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let done = Arc::clone(&done);
        let interactive_pos = Arc::clone(&interactive_pos);
        pool.submit_as(JobClass::Interactive, move || {
            let pos = done.fetch_add(1, Ordering::SeqCst);
            interactive_pos.store(pos, Ordering::SeqCst);
        });
    }
    // Three workers stay parked the whole time: only the free worker can
    // run any of this, and ~3/4 of the jobs sit in slots it does not own.
    wait_until(20, || done.load(Ordering::SeqCst) == BULK + 1);
    let stolen = pool.stats().steals - baseline_steals;
    assert!(
        stolen >= 10,
        "the free worker must have stolen from other slots (saw {stolen})"
    );
    let pos = interactive_pos.load(Ordering::SeqCst);
    assert!(
        pos < BULK / 2,
        "interactive finished at position {pos} despite living in a stolen slot"
    );
    drop(parked);
}
