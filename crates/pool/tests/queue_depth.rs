//! `Pool::queue_depth()` under contention: concurrent submitters against
//! a saturated pool. The reported depth is a racy snapshot by contract,
//! so the assertions bracket the true queue length instead of pinning it:
//! it never exceeds what was submitted, it reaches the full backlog while
//! the workers are parked, and it returns to zero once the queue drains.

use dp_pool::{JobClass, Pool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parks every worker of `pool`, returning a sender that releases them.
/// The returned jobs are *running*, not queued, so the depth baseline
/// after this is exactly zero.
fn saturate(pool: &Pool) -> std::sync::mpsc::SyncSender<()> {
    let workers = pool.threads();
    let (release_tx, release_rx) = sync_channel::<()>(workers);
    let release_rx = Arc::new(std::sync::Mutex::new(release_rx));
    let (entered_tx, entered_rx) = sync_channel::<()>(workers);
    for _ in 0..workers {
        let entered_tx = entered_tx.clone();
        let release_rx = Arc::clone(&release_rx);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            let guard = release_rx.lock().unwrap();
            // A closed channel (sender dropped) releases too.
            let _ = guard.recv();
        });
    }
    for _ in 0..workers {
        entered_rx.recv().unwrap();
    }
    release_tx
}

fn wait_for_drain(pool: &Pool, jobs_done: &AtomicUsize, expect: usize) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while jobs_done.load(Ordering::SeqCst) < expect || pool.queue_depth() > 0 {
        assert!(
            Instant::now() < deadline,
            "pool failed to drain: {}/{} jobs done, depth {}",
            jobs_done.load(Ordering::SeqCst),
            expect,
            pool.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn queue_depth_brackets_backlog_under_concurrent_submitters() {
    const SUBMITTERS: usize = 4;
    const JOBS_EACH: usize = 25;
    const TOTAL: usize = SUBMITTERS * JOBS_EACH;

    let pool = Arc::new(Pool::new(2));
    let release = saturate(&pool);
    assert_eq!(pool.queue_depth(), 0, "running jobs are not queued");

    let jobs_done = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicUsize::new(0));

    // Concurrent submitters race the depth reads: every observation made
    // while submission is in flight must stay within [0, TOTAL].
    std::thread::scope(|s| {
        for _ in 0..SUBMITTERS {
            let pool = Arc::clone(&pool);
            let jobs_done = Arc::clone(&jobs_done);
            let max_seen = Arc::clone(&max_seen);
            s.spawn(move || {
                for _ in 0..JOBS_EACH {
                    let jobs_done = Arc::clone(&jobs_done);
                    pool.submit(move || {
                        jobs_done.fetch_add(1, Ordering::SeqCst);
                    });
                    let depth = pool.queue_depth();
                    assert!(depth <= TOTAL, "depth {depth} exceeds submitted {TOTAL}");
                    max_seen.fetch_max(depth, Ordering::SeqCst);
                }
            });
        }
    });

    // Workers are still parked, so at quiescence the snapshot is exact:
    // every submitted job is sitting in the queue.
    assert_eq!(pool.queue_depth(), TOTAL);
    assert!(
        max_seen.load(Ordering::SeqCst) > 0,
        "submitters racing a saturated pool must observe a backlog"
    );

    // Release the parked workers; the backlog drains and depth returns to
    // zero permanently.
    drop(release);
    wait_for_drain(&pool, &jobs_done, TOTAL);
    assert_eq!(jobs_done.load(Ordering::SeqCst), TOTAL);
    assert_eq!(pool.queue_depth(), 0);
}

#[test]
fn queue_depth_is_the_total_across_classes() {
    let pool = Arc::new(Pool::new(2));
    let release = saturate(&pool);
    let jobs_done = Arc::new(AtomicUsize::new(0));
    for class in [
        JobClass::Bulk,
        JobClass::Bulk,
        JobClass::Interactive,
        JobClass::Bulk,
        JobClass::Interactive,
    ] {
        let jobs_done = Arc::clone(&jobs_done);
        pool.submit_as(class, move || {
            jobs_done.fetch_add(1, Ordering::SeqCst);
        });
    }
    // At quiescence (workers parked) the per-class depths are exact and
    // `queue_depth` is their sum — the backward-compatible total.
    let stats = pool.stats();
    assert_eq!(stats.queued_bulk, 3);
    assert_eq!(stats.queued_interactive, 2);
    assert_eq!(stats.queued_total(), 5);
    assert_eq!(pool.queue_depth(), 5);
    drop(release);
    wait_for_drain(&pool, &jobs_done, 5);
    let stats = pool.stats();
    assert_eq!(stats.queued_total(), 0, "both classes drain to zero");
}

#[test]
fn queue_depth_is_zero_across_repeated_saturation_cycles() {
    let pool = Arc::new(Pool::new(1));
    for _ in 0..3 {
        let release = saturate(&pool);
        let jobs_done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let jobs_done = Arc::clone(&jobs_done);
            pool.submit(move || {
                jobs_done.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(pool.queue_depth(), 10);
        drop(release);
        wait_for_drain(&pool, &jobs_done, 10);
        assert_eq!(pool.queue_depth(), 0, "each cycle must end fully drained");
    }
}
