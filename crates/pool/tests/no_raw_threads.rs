//! Grep-enforcement of the shared-substrate discipline: the VM's grid
//! execution path, the sweep engine's generation runner, and the shard
//! scheduler's daemon drivers must draw their parallelism from `dp_pool`
//! — no raw `std::thread::scope` / `std::thread::spawn` is allowed to
//! reappear there (each one is a per-grid/per-generation thread-spawn
//! tax the pool exists to remove, and a worker set the shared budget
//! cannot see).
//!
//! Comments and doc lines are stripped before matching so the files can
//! still *talk* about threads; only code is policed.

use std::path::Path;

/// Source files on the no-raw-threads list, relative to this crate.
const POLICED: &[&str] = &[
    "../vm/src/machine.rs",
    "../sweep/src/lib.rs",
    "../shard/src/lib.rs",
];

#[test]
fn grid_execution_and_generation_runner_use_the_shared_pool() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in POLICED {
        let path = root.join(rel);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        for (lineno, line) in source.lines().enumerate() {
            let code = strip_comment(line);
            for needle in ["thread::spawn", "thread::scope"] {
                assert!(
                    !code.contains(needle),
                    "{}:{}: `{needle}` in a pooled execution path — submit to \
                     dp_pool::Pool::shared() instead (see dp-pool's crate docs)",
                    path.display(),
                    lineno + 1,
                );
            }
        }
    }
}

/// Drops `//`-style comments (incl. doc comments). Good enough for this
/// policing job: neither policed file puts `//` inside a string literal.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}
