//! # dp-pool
//!
//! The process-wide worker-thread substrate: one budget, one pool, shared
//! by every parallel layer in the workspace.
//!
//! The paper's core move is amortizing launch overhead by aggregating many
//! small child grids into fewer larger ones; this crate is the software
//! analogue applied to our own runtime. Spawning a fresh worker set per
//! speculatively-executed grid or per sweep generation pays a thread-spawn
//! tax exactly where the paper's workloads live (runs dominated by
//! mid-size child grids), so instead every layer draws from a single
//! lazily-initialized, panic-surviving, process-lifetime pool:
//!
//! - [`jobs`] owns the `DPOPT_JOBS` convention and the token budget.
//!   Resolution happens **once per process** with the precedence
//!   `--jobs` flag ([`jobs::resolve_jobs`]) > `DPOPT_JOBS` env >
//!   available parallelism.
//! - [`Pool::shared`] is the process-lifetime pool, sized to the resolved
//!   budget (it holds the whole [`jobs::Reservation`] for the life of the
//!   process). The VM's speculative block executor, the sweep engine's
//!   generation runner, and the serve daemon all schedule onto it.
//! - [`Pool::scope`] lets callers borrow stack data into pool jobs (the
//!   `std::thread::scope` shape, minus the per-call spawns). Submissions
//!   from *inside* a pool worker — a sweep cell whose grid wants to
//!   speculate, a served request that runs a sweep — degrade to inline
//!   execution instead of queueing behind themselves, so the pool can
//!   never deadlock on nested parallelism and nested layers stay
//!   sequential, the same discipline the old reservation dance enforced.
//! - Scheduling is **class-aware** ([`JobClass`]): jobs land in per-worker
//!   deques and idle workers steal across slots, draining every
//!   [`JobClass::Interactive`] queue (served requests, fleet drivers)
//!   before any [`JobClass::Bulk`] queue (sweep generations, block
//!   speculation, benches). Long bulk jobs call [`checkpoint`] at natural
//!   boundaries to hand their worker to one waiting interactive job.
//!   [`Pool::stats`] snapshots depths/steals/yields as one [`PoolStats`].
//!
//! ## Checklist for adding a new parallel layer
//!
//! 1. Size your concurrency from the shared budget
//!    ([`jobs::configured_jobs`] or `Pool::shared().threads() + 1`), never
//!    from a fresh env read.
//! 2. Submit work with [`Pool::scope`]/[`Pool::run_as`] on
//!    [`Pool::shared`] — never `std::thread::spawn`/`std::thread::scope`
//!    (grep-enforced by `crates/pool/tests/no_raw_threads.rs`).
//! 3. Pick the [`JobClass`] deliberately: `Interactive` only for work a
//!    human or a remote daemon is blocked on; everything else is `Bulk`
//!    (the class-less entry points default to it). If a bulk loop
//!    iteration can run long, call [`checkpoint`] at iteration
//!    boundaries.
//! 4. Have the *caller* participate (run one worker loop itself) and size
//!    helper submissions from [`Pool::available_workers`] — spawns are
//!    claim-gated anyway, so a busy pool means graceful degradation to
//!    sequential execution, not queueing.
//! 5. Keep results deterministic at any worker count: merge in a
//!    canonical order, never in completion order.

pub mod jobs;
pub mod pool;

pub use pool::{checkpoint, is_worker_thread, JobClass, Pool, PoolStats, Scope};
