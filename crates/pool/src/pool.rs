//! The persistent worker pool: per-worker deques, work stealing, and two
//! scheduling classes.
//!
//! [`Pool::shared`] is the process-lifetime instance every parallel layer
//! in the workspace schedules onto (VM block speculation, sweep
//! generations, served requests); it owns the whole `DPOPT_JOBS` budget
//! for the life of the process, so there is nothing left to reserve and no
//! per-grid reserve/release dance. Dedicated pools ([`Pool::new`],
//! [`Pool::with_budget`]) remain available for layers that genuinely need
//! their own workers — a dedicated pool's threads *also* mark themselves
//! as pool workers, so nesting detection spans every pool in the process.
//!
//! Scheduling is class-aware. Every submission carries a [`JobClass`]:
//! [`JobClass::Interactive`] for latency-sensitive work (served requests)
//! and [`JobClass::Bulk`] for throughput work (sweep generations, block
//! speculation, benches). Jobs land in per-worker deque slots via a
//! round-robin cursor; a worker pops its own slot from the front and
//! *steals* from the back of every other slot, always draining every
//! interactive queue in the pool before touching any bulk queue. A
//! long-running bulk job can additionally call [`checkpoint`] at natural
//! boundaries to run one waiting interactive job inline — cooperative
//! yielding for the worst case where every worker is pinned under bulk
//! work. [`Pool::stats`] snapshots the whole scheduler (per-class depths,
//! steals, yields) for dp-obs and serve's `stats` op.
//!
//! Three properties keep the substrate safe to share:
//!
//! - **Panic survival.** A panicking job is caught on the worker; the
//!   thread lives on to serve the next job, and [`Pool::run`]/[`Scope`]
//!   surface the payload to the submitter.
//! - **Nested submission degrades inline.** Work submitted *from* a pool
//!   worker (any pool) runs inline on that worker instead of queueing —
//!   the pool can never deadlock on itself, and nested parallel layers
//!   become sequential exactly like the old budget-exhaustion path.
//! - **Zero-worker pools degrade inline.** `DPOPT_JOBS=1` yields a shared
//!   pool with no workers; everything runs on the submitting thread.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use dp_obs::metrics::{Counter, Histogram};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Time from queue send to worker dequeue — the backlog signal.
static QUEUE_WAIT_US: Histogram = Histogram::new("pool.queue_wait_us");
/// Wall time of the job body itself (queued and inline alike).
static JOB_RUN_US: Histogram = Histogram::new("pool.job_run_us");
static JOBS_QUEUED: Counter = Counter::new("pool.jobs.queued");
static JOBS_INLINE: Counter = Counter::new("pool.jobs.inline");
/// Jobs a worker popped from another worker's slot.
static STEALS: Counter = Counter::new("pool.steals");
/// Interactive jobs run inside a bulk job's [`checkpoint`].
static YIELDS: Counter = Counter::new("pool.yields");

/// Scheduling class of a submitted job.
///
/// Workers drain every [`Interactive`](JobClass::Interactive) queue in the
/// pool before touching any [`Bulk`](JobClass::Bulk) queue, so interactive
/// work is never queued behind bulk backlog — at worst it waits for one
/// in-flight job per worker (and [`checkpoint`] shortens even that).
/// The class-less entry points ([`Pool::submit`], [`Pool::run`],
/// [`Pool::run_now`], [`Scope::spawn`]) default to `Bulk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Latency-sensitive work: served requests, fleet drivers. Dequeued
    /// and stolen before any bulk job anywhere in the pool.
    Interactive,
    /// Throughput work: sweep generations, VM block speculation, benches.
    Bulk,
}

impl JobClass {
    /// Number of classes — the per-slot deque array is indexed by class.
    const COUNT: usize = 2;

    fn idx(self) -> usize {
        match self {
            JobClass::Interactive => 0,
            JobClass::Bulk => 1,
        }
    }
}

/// Runs a job inline on the submitting thread with the same observability
/// envelope a queued job gets on a worker: a `pool.job` span (parented to
/// the caller's current span) and a run-time sample. Keeping the envelope
/// identical is what makes trace trees connected at any worker count —
/// on a one-CPU host the shared pool has zero workers and *every* job
/// takes this path.
#[inline]
fn observe_inline<T>(f: impl FnOnce() -> T) -> T {
    JOBS_INLINE.incr();
    let _span = dp_obs::trace::span_with("pool.job", &[("inline", "1")]);
    let run = dp_obs::metrics::now();
    let out = f();
    JOB_RUN_US.record_since(run);
    out
}

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Which pool this worker thread belongs to, and its slot index —
    /// what [`checkpoint`] needs to pull a waiting interactive job.
    static WORKER_CTX: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
    /// Guard against a yielded job itself yielding (unbounded recursion).
    static IN_CHECKPOINT: Cell<bool> = const { Cell::new(false) };
}

struct WorkerCtx {
    shared: Arc<Shared>,
    slot: usize,
}

/// Whether the current thread is a pool worker (of *any* pool in the
/// process). Parallel layers use this to stay sequential when they are
/// already running inside the substrate.
pub fn is_worker_thread() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// Cooperative yield point for long-running bulk jobs: if the calling
/// thread is a pool worker and an interactive job is waiting anywhere in
/// its pool, runs exactly one such job inline and returns `true`.
/// Otherwise (not a worker, no interactive backlog, or already inside a
/// yielded job) this is a cheap no-op returning `false` — a relaxed
/// counter load in the common case, safe to call every loop iteration.
///
/// A panic in the yielded job is caught here: it cannot unwind into the
/// host bulk job (the yielded job's own submitter still observes the
/// payload through its `run`/`run_now` result channel).
pub fn checkpoint() -> bool {
    WORKER_CTX.with(|slot| {
        let borrow = slot.borrow();
        let Some(ctx) = borrow.as_ref() else {
            return false;
        };
        if ctx.shared.queued[JobClass::Interactive.idx()].load(Ordering::Relaxed) == 0 {
            return false;
        }
        if IN_CHECKPOINT.with(Cell::get) {
            return false;
        }
        let Some(job) = ctx.shared.pop_class(ctx.slot, JobClass::Interactive, false) else {
            return false;
        };
        ctx.shared.yields.fetch_add(1, Ordering::SeqCst);
        YIELDS.incr();
        IN_CHECKPOINT.with(|flag| flag.set(true));
        let _ = catch_unwind(AssertUnwindSafe(job));
        IN_CHECKPOINT.with(|flag| flag.set(false));
        true
    })
}

/// One worker's pair of job deques, one per [`JobClass`]. External
/// submitters push to the back of a round-robin-chosen slot; the owning
/// worker pops from the front; every other worker steals from the back.
struct Slot {
    queues: Mutex<[VecDeque<Job>; JobClass::COUNT]>,
}

impl Slot {
    fn new() -> Self {
        Slot {
            queues: Mutex::new([VecDeque::new(), VecDeque::new()]),
        }
    }
}

/// Scheduler state shared by the pool handle and every worker thread.
struct Shared {
    slots: Vec<Slot>,
    /// Jobs pushed but not yet popped, per class — the source of truth for
    /// [`Pool::queue_depth`] and the cheap "anything interactive waiting?"
    /// probe in [`checkpoint`]. Incremented *before* the slot insert and
    /// decremented *after* the slot removal, so a non-zero count is always
    /// visible by the time a job is findable (workers may transiently
    /// re-scan, but never park while a push is in flight).
    queued: [AtomicUsize; JobClass::COUNT],
    /// Jobs popped from a slot other than the popping worker's own.
    steals: AtomicU64,
    /// Interactive jobs run inside a bulk job's [`checkpoint`].
    yields: AtomicU64,
    /// Workers currently parked waiting for work.
    idle: AtomicUsize,
    /// Idle workers already promised to a queued job ([`Shared::try_claim`]).
    claimed: AtomicUsize,
    /// Round-robin push cursor across slots.
    next_slot: AtomicUsize,
    shutdown: AtomicBool,
    /// Parking lot. Push bumps the queued count, then takes this lock to
    /// notify; a worker only parks after re-checking the counts *under*
    /// the lock — so a wakeup can never be lost between the final scan
    /// and the wait.
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    fn total_queued(&self) -> usize {
        self.queued.iter().map(|q| q.load(Ordering::SeqCst)).sum()
    }

    fn push(&self, class: JobClass, job: Job) {
        debug_assert!(!self.slots.is_empty(), "push on a zero-worker pool");
        self.queued[class.idx()].fetch_add(1, Ordering::SeqCst);
        let target = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.slots[target].queues.lock().unwrap()[class.idx()].push_back(job);
        let _lot = self.sleep.lock().unwrap();
        self.wake.notify_one();
    }

    /// Pops one job of `class`: the front of `me`'s own deque first, then
    /// a steal from the back of every other slot. `record_steals` is off
    /// for [`checkpoint`] pops (a yield is counted separately, not as a
    /// steal).
    fn pop_class(&self, me: usize, class: JobClass, record_steals: bool) -> Option<Job> {
        let n = self.slots.len();
        for offset in 0..n {
            let i = (me + offset) % n;
            let job = {
                let mut queues = self.slots[i].queues.lock().unwrap();
                if offset == 0 {
                    queues[class.idx()].pop_front()
                } else {
                    queues[class.idx()].pop_back()
                }
            };
            if let Some(job) = job {
                self.queued[class.idx()].fetch_sub(1, Ordering::SeqCst);
                if offset != 0 && record_steals {
                    self.steals.fetch_add(1, Ordering::SeqCst);
                    STEALS.incr();
                }
                return Some(job);
            }
        }
        None
    }

    /// The scheduling policy in one line: every interactive queue in the
    /// pool drains before any bulk queue is touched.
    fn find_job(&self, me: usize) -> Option<Job> {
        self.pop_class(me, JobClass::Interactive, true)
            .or_else(|| self.pop_class(me, JobClass::Bulk, true))
    }

    /// Atomically promises one currently-idle worker to a job about to be
    /// queued; the claim is consumed when the job is dequeued. `false`
    /// means every idle worker is already spoken for — the caller should
    /// run inline instead of queueing (a queued job with no claim could
    /// sit behind an unrelated long-running job, stalling whoever joins
    /// on it).
    fn try_claim(&self) -> bool {
        let mut c = self.claimed.load(Ordering::SeqCst);
        loop {
            if c >= self.idle.load(Ordering::SeqCst) {
                return false;
            }
            match self
                .claimed
                .compare_exchange(c, c + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(observed) => c = observed,
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    WORKER_CTX.with(|ctx| {
        *ctx.borrow_mut() = Some(WorkerCtx {
            shared: Arc::clone(&shared),
            slot: me,
        });
    });
    loop {
        if let Some(job) = shared.find_job(me) {
            // A panicking job must not take the worker down with it — the
            // panic is surfaced to the submitter by `run`/`Scope`, and
            // this thread lives on for the next job.
            let _ = catch_unwind(AssertUnwindSafe(job));
            continue;
        }
        let lot = shared.sleep.lock().unwrap();
        // Re-check under the lock: a push that raced our scan has already
        // bumped the count (it bumps before inserting), so we spin back to
        // the scan instead of parking past its notify.
        if shared.total_queued() > 0 {
            drop(lot);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.idle.fetch_add(1, Ordering::SeqCst);
        let lot = shared.wake.wait(lot).unwrap();
        shared.idle.fetch_sub(1, Ordering::SeqCst);
        drop(lot);
    }
}

/// A point-in-time snapshot of the scheduler, from [`Pool::stats`]. All
/// fields are racy reads — consistent enough for dashboards and admission
/// control, not for synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker thread count (the shared pool's can legitimately be zero).
    pub threads: usize,
    /// Workers currently parked waiting for work.
    pub idle: usize,
    /// Idle workers not yet promised to a claim-gated job.
    pub available: usize,
    /// Interactive jobs pushed but not yet popped.
    pub queued_interactive: usize,
    /// Bulk jobs pushed but not yet popped.
    pub queued_bulk: usize,
    /// Lifetime count of jobs a worker popped from another worker's slot.
    pub steals: u64,
    /// Lifetime count of interactive jobs run inside a [`checkpoint`].
    pub yields: u64,
}

impl PoolStats {
    /// Total queued jobs across classes — the value [`Pool::queue_depth`]
    /// reports.
    pub fn queued_total(&self) -> usize {
        self.queued_interactive + self.queued_bulk
    }
}

/// A fixed-size pool of worker threads fed by per-worker stealing deques.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    // Held (not read) so the budget tokens stay reserved while the pool
    // lives; released to `crate::jobs` on drop.
    _reservation: Option<crate::jobs::Reservation>,
}

impl Pool {
    /// A pool of exactly `threads` workers (min 1), without touching the
    /// shared budget. Prefer [`Pool::shared`] — a dedicated pool is extra
    /// parallelism on top of whatever the shared pool is doing.
    pub fn new(threads: usize) -> Self {
        Pool::build(threads.max(1), None)
    }

    /// A dedicated pool sized from the shared `DPOPT_JOBS` budget: `want`
    /// workers requested (`0` means the configured job count), granted the
    /// caller's own thread plus whatever extra tokens
    /// [`crate::jobs::reserve_up_to`] yields. The reservation is held
    /// until the pool drops. Note the shared pool takes the entire budget
    /// at first use, so a dedicated pool created after it sees an
    /// exhausted budget and gets a single worker.
    pub fn with_budget(want: usize) -> Self {
        let want = if want == 0 {
            crate::jobs::configured_jobs()
        } else {
            want
        };
        let reservation = crate::jobs::reserve_up_to(want.saturating_sub(1));
        let threads = reservation.count() + 1;
        Pool::build(threads, Some(reservation))
    }

    /// The process-lifetime shared pool. Lazily initialized on first use;
    /// sized to the resolved job count (see [`crate::jobs::resolve_jobs`]
    /// for the precedence) minus one — the budget counts threads *beyond*
    /// the submitting caller's own, and [`Pool::scope`] callers are
    /// expected to run one worker loop themselves. Holds the whole budget
    /// reservation forever: this pool *is* the budget.
    pub fn shared() -> &'static Pool {
        static SHARED: OnceLock<Pool> = OnceLock::new();
        SHARED.get_or_init(|| {
            let want = crate::jobs::configured_jobs().saturating_sub(1);
            let reservation = crate::jobs::reserve_up_to(want);
            let threads = reservation.count();
            Pool::build(threads, Some(reservation))
        })
    }

    fn build(threads: usize, reservation: Option<crate::jobs::Reservation>) -> Self {
        let shared = Arc::new(Shared {
            slots: (0..threads).map(|_| Slot::new()).collect(),
            queued: [AtomicUsize::new(0), AtomicUsize::new(0)],
            steals: AtomicU64::new(0),
            yields: AtomicU64::new(0),
            idle: AtomicUsize::new(0),
            claimed: AtomicUsize::new(0),
            next_slot: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dp-pool-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            _reservation: reservation,
        }
    }

    /// Pushes a job to the scheduler, keeping the queued counts exact (the
    /// count covers the window from push until a worker pops the job) and
    /// wrapping the job in the standard observability envelope. Every
    /// queued job in the pool goes through here.
    fn enqueue(&self, class: JobClass, job: Job) {
        JOBS_QUEUED.incr();
        // Capture the submitter's span context here, enter it on the
        // worker: the job's `pool.job` span parents to whatever was
        // current at submission (a serve request, a sweep generation).
        let ctx = dp_obs::trace::current_ctx();
        let sent = dp_obs::metrics::now();
        self.shared.push(
            class,
            Box::new(move || {
                QUEUE_WAIT_US.record_since(sent);
                let _ctx = ctx.enter();
                let _span = dp_obs::trace::span("pool.job");
                let run = dp_obs::metrics::now();
                job();
                JOB_RUN_US.record_since(run);
            }),
        );
    }

    /// Total jobs pushed but not yet popped, across *both* classes — a
    /// racy snapshot, exposed so layers above (serve admission control,
    /// stats) can observe backlog without owning the pool's internals.
    /// Per-class depths live in [`Pool::stats`].
    pub fn queue_depth(&self) -> usize {
        self.shared.total_queued()
    }

    /// Worker count. The shared pool's count is the resolved job count
    /// minus one (the submitting thread is the remaining worker), so it
    /// can legitimately be zero.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Workers currently parked waiting for a job — a racy lower bound.
    pub fn idle_workers(&self) -> usize {
        self.shared.idle.load(Ordering::SeqCst)
    }

    /// Idle workers not yet promised to a queued claim-gated job — the
    /// number parallel layers should size helper submissions from: a
    /// layer that sees zero available workers should run sequentially
    /// rather than queue behind someone else's work. Racy in the benign
    /// direction only (a claim can still fail at spawn time, which
    /// degrades that helper inline).
    pub fn available_workers(&self) -> usize {
        self.shared
            .idle
            .load(Ordering::SeqCst)
            .saturating_sub(self.shared.claimed.load(Ordering::SeqCst))
    }

    /// One coherent snapshot of the scheduler for dashboards and the serve
    /// `stats` op: per-class queue depths, steal and yield totals, worker
    /// availability. Replaces reaching for the individual getters when
    /// more than one value is wanted.
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared;
        let idle = s.idle.load(Ordering::SeqCst);
        let claimed = s.claimed.load(Ordering::SeqCst);
        PoolStats {
            threads: self.workers.len(),
            idle,
            available: idle.saturating_sub(claimed),
            queued_interactive: s.queued[JobClass::Interactive.idx()].load(Ordering::SeqCst),
            queued_bulk: s.queued[JobClass::Bulk.idx()].load(Ordering::SeqCst),
            steals: s.steals.load(Ordering::SeqCst),
            yields: s.yields.load(Ordering::SeqCst),
        }
    }

    /// Enqueues a fire-and-forget [`JobClass::Bulk`] job — see
    /// [`Pool::submit_as`].
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.submit_as(JobClass::Bulk, job);
    }

    /// Enqueues a fire-and-forget job under `class`. Runs the job inline
    /// when the pool has no workers or the caller *is* a pool worker
    /// (nested submission must not queue behind itself).
    pub fn submit_as(&self, class: JobClass, job: impl FnOnce() + Send + 'static) {
        if self.workers.is_empty() || is_worker_thread() {
            let _ = catch_unwind(AssertUnwindSafe(|| observe_inline(job)));
            return;
        }
        self.enqueue(class, Box::new(job));
    }

    /// Runs `f` as a [`JobClass::Bulk`] job and blocks for its result —
    /// see [`Pool::run_as`].
    pub fn run<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> std::thread::Result<T> {
        self.run_as(JobClass::Bulk, f)
    }

    /// Runs `f` on a pool worker under `class` and blocks for its result —
    /// inline on the calling thread when the pool has no workers or the
    /// caller is itself a pool worker (nesting degrades instead of
    /// deadlocking). A panicking job yields `Err` with the panic payload
    /// (the worker survives).
    pub fn run_as<T: Send + 'static>(
        &self,
        class: JobClass,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> std::thread::Result<T> {
        if self.workers.is_empty() || is_worker_thread() {
            return catch_unwind(AssertUnwindSafe(|| observe_inline(f)));
        }
        let (tx, rx) = sync_channel(1);
        self.enqueue(
            class,
            Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(f));
                let _ = tx.send(result);
            }),
        );
        rx.recv().expect("pool worker delivered a result")
    }

    /// Claim-gated [`JobClass::Bulk`] variant of [`Pool::run_now_as`].
    pub fn run_now<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> std::thread::Result<T> {
        self.run_now_as(JobClass::Bulk, f)
    }

    /// Like [`Pool::run_as`], but never queues behind busy workers: the
    /// job runs on a *claimed* idle worker, or inline on the calling
    /// thread when none is free. For callers whose own thread is a
    /// legitimate execution vehicle — e.g. serve session threads under a
    /// concurrency cap — where "wait in the queue" is strictly worse than
    /// "do it yourself". Serve submits request execution with
    /// [`JobClass::Interactive`] so that, when it *does* queue, every
    /// worker (and every bulk [`checkpoint`]) prefers it over backlog.
    pub fn run_now_as<T: Send + 'static>(
        &self,
        class: JobClass,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> std::thread::Result<T> {
        if self.workers.is_empty() || is_worker_thread() || !self.shared.try_claim() {
            return catch_unwind(AssertUnwindSafe(|| observe_inline(f)));
        }
        let shared = Arc::clone(&self.shared);
        let (tx, rx) = sync_channel(1);
        self.enqueue(
            class,
            Box::new(move || {
                shared.claimed.fetch_sub(1, Ordering::SeqCst);
                let result = catch_unwind(AssertUnwindSafe(f));
                let _ = tx.send(result);
            }),
        );
        rx.recv().expect("pool worker delivered a result")
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowing jobs onto the
    /// pool — the `std::thread::scope` shape without per-call thread
    /// spawns. Every spawned job is guaranteed to have finished when
    /// `scope` returns (panics included: the first payload is re-raised
    /// after all jobs complete), which is what makes lending stack
    /// references to pool workers sound.
    ///
    /// Spawns degrade to inline execution on the calling thread when the
    /// pool has no workers, the caller is itself a pool worker, or no
    /// idle worker can be claimed (a helper queued behind unrelated
    /// long-running work would stall the scope's join long after the
    /// caller finished its own loop). The canonical usage — spawn N-1
    /// helper loops, then run one loop yourself — is therefore correct
    /// at any pool size and load, nested or not.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            scope: std::marker::PhantomData,
            env: std::marker::PhantomData,
        };
        // The closure may panic after spawning; jobs borrow stack data, so
        // the wait must happen before the panic unwinds this frame.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.state.wait_all();
        if let Some(payload) = scope.state.take_panic() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Workers drain the deques before exiting (they only stop once a
        // full scan comes up empty *and* shutdown is set), preserving the
        // submit-then-drop guarantee; join so the budget reservation is
        // only released once no worker can still be running.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _lot = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeState {
    fn add_one(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        self.panic.lock().unwrap().take()
    }
}

/// Spawn handle passed to the closure of [`Pool::scope`]. `'env` is the
/// lifetime of borrows captured by spawned jobs; the scope's return
/// barrier is what lets it be shorter than `'static`.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope Pool,
    state: Arc<ScopeState>,
    scope: std::marker::PhantomData<&'scope mut &'scope ()>,
    env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a borrowing [`JobClass::Bulk`] job — see
    /// [`Scope::spawn_as`].
    pub fn spawn(&'scope self, job: impl FnOnce() + Send + 'env) {
        self.spawn_as(JobClass::Bulk, job);
    }

    /// Submits a job under `class` that may borrow `'env` data. Runs
    /// inline immediately when the pool has no workers, the caller is a
    /// pool worker, or no idle worker can be claimed
    /// ([`Shared::try_claim`] — queueing without a claim could stall the
    /// scope's join behind unrelated work); a panic (inline or on a
    /// worker) is re-raised by the enclosing [`Pool::scope`] after every
    /// job has finished.
    pub fn spawn_as(&'scope self, class: JobClass, job: impl FnOnce() + Send + 'env) {
        if self.pool.workers.is_empty() || is_worker_thread() || !self.pool.shared.try_claim() {
            observe_inline(job);
            return;
        }
        self.state.add_one();
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.pool.shared);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: the job may borrow `'env` data, but `Pool::scope` blocks
        // on `wait_all` before returning (on success *and* panic paths),
        // and `finish_one` runs after the job completes or panics — so no
        // job outlives the borrows it captured. The transmute only erases
        // the lifetime; the vtable and layout are unchanged.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        self.pool.enqueue(
            class,
            Box::new(move || {
                shared.claimed.fetch_sub(1, Ordering::SeqCst);
                let result = catch_unwind(AssertUnwindSafe(job));
                if let Err(payload) = result {
                    state.record_panic(payload);
                }
                state.finish_one();
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool as TestBool, AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn runs_jobs_and_returns_results() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        let results: Vec<i64> = (0..16).map(|i| pool.run(move || i * 2).unwrap()).collect();
        assert_eq!(results, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn submitted_jobs_all_run() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drop drains the deques, then joins the workers
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = Pool::new(1);
        let r = pool.run(|| panic!("job exploded"));
        assert!(r.is_err());
        // The single worker survived and serves the next job.
        assert_eq!(pool.run(|| 41 + 1).unwrap(), 42);
    }

    #[test]
    fn scope_borrows_stack_data_and_joins() {
        let pool = Pool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let partial = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        pool.scope(|scope| {
            for (i, slot) in partial.iter().enumerate() {
                let data = &data;
                scope.spawn(move || {
                    let sum: u64 = data.iter().skip(i).step_by(3).sum();
                    slot.store(sum as usize, Ordering::SeqCst);
                });
            }
        });
        let total: usize = partial.iter().map(|s| s.load(Ordering::SeqCst)).sum();
        assert_eq!(total as u64, (0..1000).sum::<u64>());
    }

    #[test]
    fn scope_propagates_job_panics_after_joining() {
        let pool = Pool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("scoped job exploded"));
                scope.spawn(|| {
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            })
        }));
        assert!(result.is_err());
        // The sibling job was not abandoned, and the workers survive.
        assert_eq!(finished.load(Ordering::SeqCst), 1);
        assert_eq!(pool.run(|| 7).unwrap(), 7);
    }

    #[test]
    fn nested_scope_spawn_runs_inline_instead_of_deadlocking() {
        let pool = Pool::new(1);
        // A pool job that itself opens a scope on the same single-worker
        // pool: without inline degradation this queues behind itself and
        // hangs forever.
        let r = pool.run(|| {
            assert!(is_worker_thread());
            let mut acc = 0usize;
            Pool::shared().scope(|scope| {
                let acc = &mut acc;
                scope.spawn(move || *acc += 1);
            });
            acc
        });
        assert_eq!(r.unwrap(), 1);
    }

    #[test]
    fn zero_worker_run_is_inline() {
        let pool = Pool::build(0, None);
        assert_eq!(pool.threads(), 0);
        assert_eq!(pool.run(|| 5).unwrap(), 5);
        let mut hits = 0;
        pool.scope(|scope| {
            let hits = &mut hits;
            scope.spawn(move || *hits += 1);
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn scope_spawn_degrades_inline_when_every_worker_is_busy() {
        let pool = Pool::new(1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        // The only worker is parked on `block_rx`: an unclaimed spawn
        // would queue behind it and stall the scope's join until the
        // worker frees. The claim gate must run the job inline instead —
        // observable synchronously, before the worker is unblocked.
        let ran = TestBool::new(false);
        pool.scope(|scope| {
            scope.spawn(|| ran.store(true, Ordering::SeqCst));
            assert!(
                ran.load(Ordering::SeqCst),
                "spawn must degrade inline while the worker is busy"
            );
        });
        block_tx.send(()).unwrap();
    }

    #[test]
    fn run_now_is_inline_when_every_worker_is_busy() {
        let pool = Pool::new(1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        // `run` would block here until the worker frees; `run_now` must
        // execute on the calling thread immediately.
        assert_eq!(pool.run_now(|| 11).unwrap(), 11);
        block_tx.send(()).unwrap();
        // With the worker idle again, run_now claims and uses it.
        for _ in 0..100 {
            if pool.available_workers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.run_now(|| 13).unwrap(), 13);
    }

    #[test]
    fn queue_depth_tracks_the_backlog() {
        let pool = Pool::new(1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        assert_eq!(pool.queue_depth(), 0, "the running job is not queued");
        // Three jobs behind a blocked single worker: all three sit queued.
        for _ in 0..3 {
            pool.submit(|| {});
        }
        assert_eq!(pool.queue_depth(), 3);
        block_tx.send(()).unwrap();
        for _ in 0..200 {
            if pool.queue_depth() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.queue_depth(), 0, "drained backlog reads zero");
    }

    #[test]
    fn idle_workers_tracks_availability() {
        let pool = Pool::new(2);
        // Give the workers a moment to park on their slots.
        for _ in 0..100 {
            if pool.idle_workers() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.idle_workers(), 2);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        assert!(pool.idle_workers() <= 1);
        block_tx.send(()).unwrap();
    }

    #[test]
    fn interactive_class_dequeues_before_bulk() {
        let pool = Pool::new(1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        // Behind the blocked worker: three bulk jobs, then one interactive
        // job pushed *last*. The worker must still run it first.
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = Arc::clone(&order);
            pool.submit_as(JobClass::Bulk, move || {
                order.lock().unwrap().push(format!("bulk-{i}"));
            });
        }
        {
            let order = Arc::clone(&order);
            pool.submit_as(JobClass::Interactive, move || {
                order.lock().unwrap().push("interactive".to_string());
            });
        }
        block_tx.send(()).unwrap();
        for _ in 0..500 {
            if order.lock().unwrap().len() == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 4, "all queued jobs ran");
        assert_eq!(
            order[0], "interactive",
            "interactive overtakes the bulk backlog: {order:?}"
        );
    }

    #[test]
    fn stats_snapshot_reports_class_depths() {
        let pool = Pool::new(1);
        let stats = pool.stats();
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.queued_total(), 0);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        pool.submit_as(JobClass::Bulk, || {});
        pool.submit_as(JobClass::Bulk, || {});
        pool.submit_as(JobClass::Interactive, || {});
        let stats = pool.stats();
        assert_eq!(stats.queued_bulk, 2);
        assert_eq!(stats.queued_interactive, 1);
        assert_eq!(stats.queued_total(), 3);
        assert_eq!(stats.queued_total(), pool.queue_depth());
        block_tx.send(()).unwrap();
    }

    #[test]
    fn checkpoint_is_noop_off_pool_threads() {
        assert!(!is_worker_thread());
        assert!(!checkpoint(), "checkpoint off a worker must be a no-op");
    }

    #[test]
    fn checkpoint_yields_to_a_queued_interactive_job() {
        let pool = Pool::new(1);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        let (done_tx, done_rx) = sync_channel::<bool>(1);
        // The bulk job occupies the only worker and polls checkpoint()
        // until it yields (or times out).
        pool.submit_as(JobClass::Bulk, move || {
            entered_tx.send(()).unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut yielded = false;
            while !yielded && Instant::now() < deadline {
                yielded = checkpoint();
                if !yielded {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            done_tx.send(yielded).unwrap();
        });
        entered_rx.recv().unwrap();
        let ran = Arc::new(TestBool::new(false));
        {
            let ran = Arc::clone(&ran);
            pool.submit_as(JobClass::Interactive, move || {
                ran.store(true, Ordering::SeqCst);
            });
        }
        assert!(
            done_rx
                .recv_timeout(Duration::from_secs(15))
                .expect("bulk job finished"),
            "checkpoint must yield to the queued interactive job"
        );
        assert!(ran.load(Ordering::SeqCst), "the interactive job ran");
        assert!(pool.stats().yields >= 1, "the yield was counted");
    }

    #[test]
    fn checkpoint_ignores_bulk_backlog() {
        let pool = Pool::new(1);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        let (backlog_tx, backlog_rx) = sync_channel::<()>(0);
        let (done_tx, done_rx) = sync_channel::<bool>(1);
        pool.submit_as(JobClass::Bulk, move || {
            entered_tx.send(()).unwrap();
            // Wait until bulk backlog demonstrably exists: checkpoint only
            // serves interactive work, so it must still decline.
            backlog_rx.recv().unwrap();
            done_tx.send(checkpoint()).unwrap();
        });
        entered_rx.recv().unwrap();
        pool.submit_as(JobClass::Bulk, || {});
        backlog_tx.send(()).unwrap();
        assert!(
            !done_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("bulk job finished"),
            "checkpoint must not run bulk jobs"
        );
    }
}
