//! The persistent worker pool.
//!
//! [`Pool::shared`] is the process-lifetime instance every parallel layer
//! in the workspace schedules onto (VM block speculation, sweep
//! generations, served requests); it owns the whole `DPOPT_JOBS` budget
//! for the life of the process, so there is nothing left to reserve and no
//! per-grid reserve/release dance. Dedicated pools ([`Pool::new`],
//! [`Pool::with_budget`]) remain available for layers that genuinely need
//! their own workers — a dedicated pool's threads *also* mark themselves
//! as pool workers, so nesting detection spans every pool in the process.
//!
//! Three properties keep the substrate safe to share:
//!
//! - **Panic survival.** A panicking job is caught on the worker; the
//!   thread lives on to serve the next job, and [`Pool::run`]/[`Scope`]
//!   surface the payload to the submitter.
//! - **Nested submission degrades inline.** Work submitted *from* a pool
//!   worker (any pool) runs inline on that worker instead of queueing —
//!   the pool can never deadlock on itself, and nested parallel layers
//!   become sequential exactly like the old budget-exhaustion path.
//! - **Zero-worker pools degrade inline.** `DPOPT_JOBS=1` yields a shared
//!   pool with no workers; everything runs on the submitting thread.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use dp_obs::metrics::{Counter, Histogram};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Time from queue send to worker dequeue — the backlog signal.
static QUEUE_WAIT_US: Histogram = Histogram::new("pool.queue_wait_us");
/// Wall time of the job body itself (queued and inline alike).
static JOB_RUN_US: Histogram = Histogram::new("pool.job_run_us");
static JOBS_QUEUED: Counter = Counter::new("pool.jobs.queued");
static JOBS_INLINE: Counter = Counter::new("pool.jobs.inline");

/// Runs a job inline on the submitting thread with the same observability
/// envelope a queued job gets on a worker: a `pool.job` span (parented to
/// the caller's current span) and a run-time sample. Keeping the envelope
/// identical is what makes trace trees connected at any worker count —
/// on a one-CPU host the shared pool has zero workers and *every* job
/// takes this path.
#[inline]
fn observe_inline<T>(f: impl FnOnce() -> T) -> T {
    JOBS_INLINE.incr();
    let _span = dp_obs::trace::span_with("pool.job", &[("inline", "1")]);
    let run = dp_obs::metrics::now();
    let out = f();
    JOB_RUN_US.record_since(run);
    out
}

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker (of *any* pool in the
/// process). Parallel layers use this to stay sequential when they are
/// already running inside the substrate.
pub fn is_worker_thread() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// A fixed-size pool of worker threads fed by a shared queue.
pub struct Pool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    idle: Arc<AtomicUsize>,
    /// Idle workers already promised to a queued job ([`Pool::try_claim`]).
    /// Claim-gated submissions ([`Scope::spawn`], [`Pool::run_now`]) only
    /// queue when `idle - claimed > 0`, so a queued job starts promptly
    /// instead of stalling behind unrelated long-running work; everything
    /// else degrades inline on the caller.
    claimed: Arc<AtomicUsize>,
    /// Jobs sent but not yet picked up by a worker — the admission-control
    /// signal surfaced by [`Pool::queue_depth`].
    queued: Arc<AtomicUsize>,
    // Held (not read) so the budget tokens stay reserved while the pool
    // lives; released to `crate::jobs` on drop.
    _reservation: Option<crate::jobs::Reservation>,
}

impl Pool {
    /// A pool of exactly `threads` workers (min 1), without touching the
    /// shared budget. Prefer [`Pool::shared`] — a dedicated pool is extra
    /// parallelism on top of whatever the shared pool is doing.
    pub fn new(threads: usize) -> Self {
        Pool::build(threads.max(1), None)
    }

    /// A dedicated pool sized from the shared `DPOPT_JOBS` budget: `want`
    /// workers requested (`0` means the configured job count), granted the
    /// caller's own thread plus whatever extra tokens
    /// [`crate::jobs::reserve_up_to`] yields. The reservation is held
    /// until the pool drops. Note the shared pool takes the entire budget
    /// at first use, so a dedicated pool created after it sees an
    /// exhausted budget and gets a single worker.
    pub fn with_budget(want: usize) -> Self {
        let want = if want == 0 {
            crate::jobs::configured_jobs()
        } else {
            want
        };
        let reservation = crate::jobs::reserve_up_to(want.saturating_sub(1));
        let threads = reservation.count() + 1;
        Pool::build(threads, Some(reservation))
    }

    /// The process-lifetime shared pool. Lazily initialized on first use;
    /// sized to the resolved job count (see [`crate::jobs::resolve_jobs`]
    /// for the precedence) minus one — the budget counts threads *beyond*
    /// the submitting caller's own, and [`Pool::scope`] callers are
    /// expected to run one worker loop themselves. Holds the whole budget
    /// reservation forever: this pool *is* the budget.
    pub fn shared() -> &'static Pool {
        static SHARED: OnceLock<Pool> = OnceLock::new();
        SHARED.get_or_init(|| {
            let want = crate::jobs::configured_jobs().saturating_sub(1);
            let reservation = crate::jobs::reserve_up_to(want);
            let threads = reservation.count();
            Pool::build(threads, Some(reservation))
        })
    }

    fn build(threads: usize, reservation: Option<crate::jobs::Reservation>) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let idle = Arc::new(AtomicUsize::new(0));
        let workers = (0..threads)
            .map(|i| {
                let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&rx);
                let idle = Arc::clone(&idle);
                std::thread::Builder::new()
                    .name(format!("dp-pool-worker-{i}"))
                    .spawn(move || {
                        IS_POOL_WORKER.with(|flag| flag.set(true));
                        loop {
                            // Waiting on the queue (including waiting for
                            // the queue lock) counts as idle: it is the
                            // window in which a submitted job would start
                            // promptly.
                            idle.fetch_add(1, Ordering::SeqCst);
                            let job = rx.lock().unwrap().recv();
                            idle.fetch_sub(1, Ordering::SeqCst);
                            match job {
                                // A panicking job must not take the worker
                                // down with it — the panic is surfaced to
                                // the submitter by `run`/`Scope`, and this
                                // thread lives on for the next job.
                                Ok(job) => {
                                    let _ = catch_unwind(AssertUnwindSafe(job));
                                }
                                Err(_) => return, // queue closed: pool dropped
                            }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            tx: Some(tx),
            workers,
            idle,
            claimed: Arc::new(AtomicUsize::new(0)),
            queued: Arc::new(AtomicUsize::new(0)),
            _reservation: reservation,
        }
    }

    /// Sends a job to the workers, keeping the queued count exact: the
    /// count covers the window from send until a worker dequeues the job.
    /// Every queue send in the pool goes through here.
    fn enqueue(&self, job: Job) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        let queued = Arc::clone(&self.queued);
        JOBS_QUEUED.incr();
        // Capture the submitter's span context here, enter it on the
        // worker: the job's `pool.job` span parents to whatever was
        // current at submission (a serve request, a sweep generation).
        let ctx = dp_obs::trace::current_ctx();
        let sent = dp_obs::metrics::now();
        self.tx
            .as_ref()
            .expect("pool is live")
            .send(Box::new(move || {
                queued.fetch_sub(1, Ordering::SeqCst);
                QUEUE_WAIT_US.record_since(sent);
                let _ctx = ctx.enter();
                let _span = dp_obs::trace::span("pool.job");
                let run = dp_obs::metrics::now();
                job();
                JOB_RUN_US.record_since(run);
            }))
            .expect("pool workers alive");
    }

    /// Jobs sent to the queue but not yet picked up by a worker — a racy
    /// snapshot, exposed so layers above (serve admission control, stats)
    /// can observe backlog without owning the pool's internals.
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// Worker count. The shared pool's count is the resolved job count
    /// minus one (the submitting thread is the remaining worker), so it
    /// can legitimately be zero.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Workers currently waiting for a job — a racy lower bound.
    pub fn idle_workers(&self) -> usize {
        self.idle.load(Ordering::SeqCst)
    }

    /// Idle workers not yet promised to a queued claim-gated job — the
    /// number parallel layers should size helper submissions from: a
    /// layer that sees zero available workers should run sequentially
    /// rather than queue behind someone else's work. Racy in the benign
    /// direction only (a claim can still fail at spawn time, which
    /// degrades that helper inline).
    pub fn available_workers(&self) -> usize {
        self.idle
            .load(Ordering::SeqCst)
            .saturating_sub(self.claimed.load(Ordering::SeqCst))
    }

    /// Atomically promises one currently-idle worker to a job about to be
    /// queued; the claim is consumed when the job is dequeued. `false`
    /// means every idle worker is already spoken for — the caller should
    /// run inline instead of queueing (a queued job with no claim could
    /// sit behind an unrelated long-running job, stalling whoever joins
    /// on it).
    fn try_claim(&self) -> bool {
        let mut c = self.claimed.load(Ordering::SeqCst);
        loop {
            if c >= self.idle.load(Ordering::SeqCst) {
                return false;
            }
            match self
                .claimed
                .compare_exchange(c, c + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(observed) => c = observed,
            }
        }
    }

    /// Enqueues a fire-and-forget job. Runs the job inline when the pool
    /// has no workers or the caller *is* a pool worker (nested submission
    /// must not queue behind itself).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        if self.workers.is_empty() || is_worker_thread() {
            let _ = catch_unwind(AssertUnwindSafe(|| observe_inline(job)));
            return;
        }
        self.enqueue(Box::new(job));
    }

    /// Runs `f` on a pool worker and blocks for its result — inline on the
    /// calling thread when the pool has no workers or the caller is itself
    /// a pool worker (nesting degrades instead of deadlocking). A
    /// panicking job yields `Err` with the panic payload (the worker
    /// survives).
    pub fn run<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> std::thread::Result<T> {
        if self.workers.is_empty() || is_worker_thread() {
            return catch_unwind(AssertUnwindSafe(|| observe_inline(f)));
        }
        let (tx, rx) = sync_channel(1);
        self.enqueue(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let _ = tx.send(result);
        }));
        rx.recv().expect("pool worker delivered a result")
    }

    /// Like [`Pool::run`], but never queues behind busy workers: the job
    /// runs on a *claimed* idle worker, or inline on the calling thread
    /// when none is free. For callers whose own thread is a legitimate
    /// execution vehicle — e.g. serve session threads under a concurrency
    /// cap — where "wait in the queue" is strictly worse than "do it
    /// yourself".
    pub fn run_now<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> std::thread::Result<T> {
        if self.workers.is_empty() || is_worker_thread() || !self.try_claim() {
            return catch_unwind(AssertUnwindSafe(|| observe_inline(f)));
        }
        let claimed = Arc::clone(&self.claimed);
        let (tx, rx) = sync_channel(1);
        self.enqueue(Box::new(move || {
            claimed.fetch_sub(1, Ordering::SeqCst);
            let result = catch_unwind(AssertUnwindSafe(f));
            let _ = tx.send(result);
        }));
        rx.recv().expect("pool worker delivered a result")
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowing jobs onto the
    /// pool — the `std::thread::scope` shape without per-call thread
    /// spawns. Every spawned job is guaranteed to have finished when
    /// `scope` returns (panics included: the first payload is re-raised
    /// after all jobs complete), which is what makes lending stack
    /// references to pool workers sound.
    ///
    /// Spawns degrade to inline execution on the calling thread when the
    /// pool has no workers, the caller is itself a pool worker, or no
    /// idle worker can be claimed (a helper queued behind unrelated
    /// long-running work would stall the scope's join long after the
    /// caller finished its own loop). The canonical usage — spawn N-1
    /// helper loops, then run one loop yourself — is therefore correct
    /// at any pool size and load, nested or not.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            scope: std::marker::PhantomData,
            env: std::marker::PhantomData,
        };
        // The closure may panic after spawning; jobs borrow stack data, so
        // the wait must happen before the panic unwinds this frame.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.state.wait_all();
        if let Some(payload) = scope.state.take_panic() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the queue ends the worker loops; join so the budget
        // reservation is only released once no worker can still be running.
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeState {
    fn add_one(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        self.panic.lock().unwrap().take()
    }
}

/// Spawn handle passed to the closure of [`Pool::scope`]. `'env` is the
/// lifetime of borrows captured by spawned jobs; the scope's return
/// barrier is what lets it be shorter than `'static`.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope Pool,
    state: Arc<ScopeState>,
    scope: std::marker::PhantomData<&'scope mut &'scope ()>,
    env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submits a job that may borrow `'env` data. Runs inline immediately
    /// when the pool has no workers, the caller is a pool worker, or no
    /// idle worker can be claimed ([`Pool::try_claim`] — queueing without
    /// a claim could stall the scope's join behind unrelated work); a
    /// panic (inline or on a worker) is re-raised by the enclosing
    /// [`Pool::scope`] after every job has finished.
    pub fn spawn(&'scope self, job: impl FnOnce() + Send + 'env) {
        if self.pool.workers.is_empty() || is_worker_thread() || !self.pool.try_claim() {
            observe_inline(job);
            return;
        }
        self.state.add_one();
        let state = Arc::clone(&self.state);
        let claimed = Arc::clone(&self.pool.claimed);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: the job may borrow `'env` data, but `Pool::scope` blocks
        // on `wait_all` before returning (on success *and* panic paths),
        // and `finish_one` runs after the job completes or panics — so no
        // job outlives the borrows it captured. The transmute only erases
        // the lifetime; the vtable and layout are unchanged.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        self.pool.enqueue(Box::new(move || {
            claimed.fetch_sub(1, Ordering::SeqCst);
            let result = catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = result {
                state.record_panic(payload);
            }
            state.finish_one();
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_and_returns_results() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        let results: Vec<i64> = (0..16).map(|i| pool.run(move || i * 2).unwrap()).collect();
        assert_eq!(results, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn submitted_jobs_all_run() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drop joins the workers, draining the queue
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = Pool::new(1);
        let r = pool.run(|| panic!("job exploded"));
        assert!(r.is_err());
        // The single worker survived and serves the next job.
        assert_eq!(pool.run(|| 41 + 1).unwrap(), 42);
    }

    #[test]
    fn scope_borrows_stack_data_and_joins() {
        let pool = Pool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let partial = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        pool.scope(|scope| {
            for (i, slot) in partial.iter().enumerate() {
                let data = &data;
                scope.spawn(move || {
                    let sum: u64 = data.iter().skip(i).step_by(3).sum();
                    slot.store(sum as usize, Ordering::SeqCst);
                });
            }
        });
        let total: usize = partial.iter().map(|s| s.load(Ordering::SeqCst)).sum();
        assert_eq!(total as u64, (0..1000).sum::<u64>());
    }

    #[test]
    fn scope_propagates_job_panics_after_joining() {
        let pool = Pool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("scoped job exploded"));
                scope.spawn(|| {
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            })
        }));
        assert!(result.is_err());
        // The sibling job was not abandoned, and the workers survive.
        assert_eq!(finished.load(Ordering::SeqCst), 1);
        assert_eq!(pool.run(|| 7).unwrap(), 7);
    }

    #[test]
    fn nested_scope_spawn_runs_inline_instead_of_deadlocking() {
        let pool = Pool::new(1);
        // A pool job that itself opens a scope on the same single-worker
        // pool: without inline degradation this queues behind itself and
        // hangs forever.
        let r = pool.run(|| {
            assert!(is_worker_thread());
            let mut acc = 0usize;
            Pool::shared().scope(|scope| {
                let acc = &mut acc;
                scope.spawn(move || *acc += 1);
            });
            acc
        });
        assert_eq!(r.unwrap(), 1);
    }

    #[test]
    fn zero_worker_run_is_inline() {
        let pool = Pool::build(0, None);
        assert_eq!(pool.threads(), 0);
        assert_eq!(pool.run(|| 5).unwrap(), 5);
        let mut hits = 0;
        pool.scope(|scope| {
            let hits = &mut hits;
            scope.spawn(move || *hits += 1);
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn scope_spawn_degrades_inline_when_every_worker_is_busy() {
        let pool = Pool::new(1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        // The only worker is parked on `block_rx`: an unclaimed spawn
        // would queue behind it and stall the scope's join until the
        // worker frees. The claim gate must run the job inline instead —
        // observable synchronously, before the worker is unblocked.
        let ran = std::sync::atomic::AtomicBool::new(false);
        pool.scope(|scope| {
            scope.spawn(|| ran.store(true, Ordering::SeqCst));
            assert!(
                ran.load(Ordering::SeqCst),
                "spawn must degrade inline while the worker is busy"
            );
        });
        block_tx.send(()).unwrap();
    }

    #[test]
    fn run_now_is_inline_when_every_worker_is_busy() {
        let pool = Pool::new(1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        // `run` would block here until the worker frees; `run_now` must
        // execute on the calling thread immediately.
        assert_eq!(pool.run_now(|| 11).unwrap(), 11);
        block_tx.send(()).unwrap();
        // With the worker idle again, run_now claims and uses it.
        for _ in 0..100 {
            if pool.available_workers() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.run_now(|| 13).unwrap(), 13);
    }

    #[test]
    fn queue_depth_tracks_the_backlog() {
        let pool = Pool::new(1);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        assert_eq!(pool.queue_depth(), 0, "the running job is not queued");
        // Three jobs behind a blocked single worker: all three sit queued.
        for _ in 0..3 {
            pool.submit(|| {});
        }
        assert_eq!(pool.queue_depth(), 3);
        block_tx.send(()).unwrap();
        for _ in 0..200 {
            if pool.queue_depth() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.queue_depth(), 0, "drained backlog reads zero");
    }

    #[test]
    fn idle_workers_tracks_availability() {
        let pool = Pool::new(2);
        // Give the workers a moment to park on the queue.
        for _ in 0..100 {
            if pool.idle_workers() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.idle_workers(), 2);
        let (block_tx, block_rx) = sync_channel::<()>(0);
        let (entered_tx, entered_rx) = sync_channel::<()>(0);
        pool.submit(move || {
            entered_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        });
        entered_rx.recv().unwrap();
        assert!(pool.idle_workers() <= 1);
        block_tx.send(()).unwrap();
    }
}
