//! pool-stress — high-submission-rate mixed-class stress harness for the
//! shared pool, run in CI (the `pool-stress` job) at `DPOPT_JOBS`
//! 1, 2, and 4.
//!
//! The harness floods the shared pool with bulk jobs (each spinning ~1ms
//! and calling `checkpoint()` midway, like a sweep cell at a grid
//! boundary) while several submitter threads interleave interactive
//! probes, then asserts the two contracts the class-aware scheduler
//! exists for:
//!
//! - **Zero lost jobs.** Every bulk job and every interactive probe runs
//!   exactly once; all queues drain to zero.
//! - **Bounded interactive latency.** The p99 submit→start latency of the
//!   interactive probes stays far below the time it takes to drain the
//!   bulk backlog — interactive work overtakes bulk, it does not queue
//!   behind it. (The bound is generous against CI noise but well under
//!   the full-backlog drain time that FIFO scheduling would produce.)
//!
//! Exits non-zero with a diagnostic on any violation; prints a one-line
//! summary on success.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dp_pool::{checkpoint, JobClass, Pool};

const BULK_JOBS: usize = 2000;
/// Per-bulk-job spin, split around a checkpoint() call. Total backlog at
/// one worker ≈ 2s — an order of magnitude above the latency bound, so
/// FIFO behavior cannot sneak under it.
const BULK_SPIN: Duration = Duration::from_micros(500);
const SUBMITTERS: usize = 4;
const PROBES_PER_SUBMITTER: usize = 75;
/// p99 bound on interactive submit→start latency. Generous against a
/// loaded CI runner; tiny against the ~2s bulk backlog.
const P99_BOUND: Duration = Duration::from_millis(250);

fn spin(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

fn main() {
    let pool = Pool::shared();
    let bulk_done = Arc::new(AtomicUsize::new(0));

    // Flood: bulk jobs spin and yield once in the middle, the shape of a
    // sweep generation hitting a grid boundary.
    for _ in 0..BULK_JOBS {
        let bulk_done = Arc::clone(&bulk_done);
        pool.submit_as(JobClass::Bulk, move || {
            spin(BULK_SPIN);
            checkpoint();
            spin(BULK_SPIN);
            bulk_done.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Probes: each submitter interleaves claim-gated interactive calls
    // (serve's exec path) with queue-wait measurements of plain
    // interactive submissions.
    let wait_latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let probes_run = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..SUBMITTERS {
            s.spawn(|| {
                for _ in 0..PROBES_PER_SUBMITTER {
                    let value = pool
                        .run_now_as(JobClass::Interactive, || 7usize)
                        .expect("interactive run_now probe");
                    assert_eq!(value, 7);
                    probes_run.fetch_add(1, Ordering::SeqCst);

                    let (tx, rx) = sync_channel::<Duration>(1);
                    let sent = Instant::now();
                    pool.submit_as(JobClass::Interactive, move || {
                        let _ = tx.send(sent.elapsed());
                    });
                    let waited = rx
                        .recv_timeout(Duration::from_secs(30))
                        .expect("interactive submit probe must start promptly");
                    probes_run.fetch_add(1, Ordering::SeqCst);
                    wait_latencies.lock().unwrap().push(waited);
                }
            });
        }
    });

    // Drain: every bulk job must complete (no lost jobs, queues to zero).
    let deadline = Instant::now() + Duration::from_secs(120);
    while bulk_done.load(Ordering::SeqCst) < BULK_JOBS {
        if Instant::now() >= deadline {
            eprintln!(
                "pool-stress: LOST JOBS — {}/{} bulk jobs completed, stats {:?}",
                bulk_done.load(Ordering::SeqCst),
                BULK_JOBS,
                pool.stats()
            );
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = pool.stats();
    if stats.queued_total() != 0 {
        eprintln!("pool-stress: queues not drained: {stats:?}");
        std::process::exit(1);
    }
    let expected_probes = SUBMITTERS * PROBES_PER_SUBMITTER * 2;
    let ran = probes_run.load(Ordering::SeqCst);
    if ran != expected_probes {
        eprintln!("pool-stress: LOST PROBES — {ran}/{expected_probes} ran");
        std::process::exit(1);
    }

    let mut waits = wait_latencies.into_inner().unwrap();
    waits.sort_unstable();
    let pct = |p: usize| waits[(waits.len() - 1) * p / 100];
    let p99 = pct(99);
    println!(
        "pool-stress: threads={} bulk={} probes={} wait_p50={:?} wait_p99={:?} \
         steals={} yields={}",
        stats.threads,
        BULK_JOBS,
        expected_probes,
        pct(50),
        p99,
        stats.steals,
        stats.yields,
    );
    if p99 > P99_BOUND {
        eprintln!(
            "pool-stress: interactive p99 {p99:?} exceeds bound {P99_BOUND:?} \
             (bulk backlog is not being overtaken)"
        );
        std::process::exit(1);
    }
}
