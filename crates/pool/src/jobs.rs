//! The `DPOPT_JOBS` convention and a process-wide worker-thread budget.
//!
//! Several subsystems can run work in parallel: the sweep engine
//! parallelizes across experiment cells, the execution machine
//! parallelizes across the blocks of a grid, and the serve daemon runs
//! requests concurrently. All draw from **one shared budget** resolved
//! once per process, with the precedence
//!
//! > `--jobs` flag ([`resolve_jobs`]) > `DPOPT_JOBS` env > available
//! > parallelism
//!
//! so nesting layers — a sweep whose cells each run large grids — never
//! oversubscribes the host. The budget is owned by the shared pool
//! ([`crate::Pool::shared`] holds the whole [`Reservation`] for the life
//! of the process); layers that need a *dedicated* pool can still carve
//! tokens out with [`reserve_up_to`].
//!
//! The budget counts *extra* threads beyond the caller's own (a
//! single-threaded process with `DPOPT_JOBS=1` has zero tokens).

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::OnceLock;

static CONFIGURED: OnceLock<usize> = OnceLock::new();

fn auto_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_jobs() -> usize {
    match std::env::var("DPOPT_JOBS") {
        Err(_) => auto_jobs(),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) if v > 0 => v,
            _ => {
                dp_obs::diag!(
                    "warning: ignoring invalid DPOPT_JOBS=`{raw}`; falling back to available parallelism"
                );
                auto_jobs()
            }
        },
    }
}

/// Resolves the process-wide job count, **once**: an explicit flag value
/// (`--jobs N`, pass `Some(N)`) wins over `DPOPT_JOBS`, which wins over
/// available parallelism. The first resolution sticks for the life of the
/// process — the shared pool is sized from it — so front-ends should call
/// this before any parallel layer runs. A later conflicting flag warns on
/// stderr and returns the already-resolved count.
pub fn resolve_jobs(flag: Option<usize>) -> usize {
    let resolved = *CONFIGURED.get_or_init(|| flag.filter(|&n| n > 0).unwrap_or_else(env_jobs));
    if let Some(n) = flag {
        if n > 0 && n != resolved {
            dp_obs::diag!(
                "warning: --jobs {n} ignored; the worker budget was already resolved to {resolved} for this process"
            );
        }
    }
    resolved
}

/// The configured job count: the value [`resolve_jobs`] pinned, else
/// `DPOPT_JOBS` if set and valid, else available parallelism (min 1).
/// Resolved once per process; an invalid env value warns on stderr instead
/// of silently falling back.
pub fn configured_jobs() -> usize {
    resolve_jobs(None)
}

/// Tokens for worker threads beyond the main one.
fn extra_tokens() -> &'static AtomicIsize {
    static TOKENS: OnceLock<AtomicIsize> = OnceLock::new();
    TOKENS.get_or_init(|| AtomicIsize::new(configured_jobs() as isize - 1))
}

/// A granted share of the worker-thread budget, released on drop.
#[derive(Debug)]
#[must_use = "dropping the reservation releases the threads immediately"]
pub struct Reservation {
    granted: usize,
}

impl Reservation {
    /// How many extra worker threads were actually granted (possibly 0).
    pub fn count(&self) -> usize {
        self.granted
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if self.granted > 0 {
            extra_tokens().fetch_add(self.granted as isize, Ordering::SeqCst);
        }
    }
}

/// Reserves up to `want` extra worker threads from the shared budget,
/// granting whatever is available (possibly 0 — callers then run
/// sequentially on their own thread).
pub fn reserve_up_to(want: usize) -> Reservation {
    if want == 0 {
        return Reservation { granted: 0 };
    }
    let tokens = extra_tokens();
    let mut current = tokens.load(Ordering::SeqCst);
    loop {
        let grant = current.max(0).min(want as isize);
        if grant == 0 {
            return Reservation { granted: 0 };
        }
        match tokens.compare_exchange(current, current - grant, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                return Reservation {
                    granted: grant as usize,
                }
            }
            Err(observed) => current = observed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configured_jobs_is_positive_and_stable() {
        let a = configured_jobs();
        assert!(a >= 1);
        assert_eq!(a, configured_jobs());
        // Once resolved, a conflicting flag cannot change it.
        assert_eq!(resolve_jobs(Some(a + 7)), a);
    }

    #[test]
    fn reservations_never_exceed_request_and_release_on_drop() {
        // The budget is process-global and other tests may hold pieces of
        // it, so assert only relative invariants.
        let r = reserve_up_to(2);
        assert!(r.count() <= 2);
        let before = extra_tokens().load(Ordering::SeqCst);
        drop(r);
        let after = extra_tokens().load(Ordering::SeqCst);
        assert!(after >= before, "drop must return tokens");
        assert_eq!(reserve_up_to(0).count(), 0);
    }
}
