//! Criterion benchmarks for the compiler itself: parsing, each pass, and
//! the full pipeline on the BFS benchmark source.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_core::{AggConfig, AggGranularity, Compiler, OptConfig};
use dp_workloads::benchmarks::{bfs::Bfs, Benchmark};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let src = Bfs.cdp_source();
    c.bench_function("parse_bfs_source", |b| {
        b.iter(|| dp_frontend::parse(black_box(src)).unwrap())
    });
}

fn bench_passes(c: &mut Criterion) {
    let src = Bfs.cdp_source();
    let mut group = c.benchmark_group("transform");
    for (name, config) in [
        ("thresholding", OptConfig::none().threshold(128)),
        ("coarsening", OptConfig::none().coarsen_factor(8)),
        (
            "aggregation_multiblock",
            OptConfig::none().aggregation(AggConfig::new(AggGranularity::MultiBlock(8))),
        ),
        ("full_pipeline", OptConfig::all()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut program = dp_frontend::parse(src).unwrap();
                black_box(dp_transform::apply_pipeline(&mut program, &config))
            })
        });
    }
    group.finish();
}

fn bench_compile_end_to_end(c: &mut Criterion) {
    let src = Bfs.cdp_source();
    c.bench_function("compile_bfs_full_pipeline", |b| {
        b.iter(|| {
            Compiler::new()
                .config(OptConfig::all())
                .compile(black_box(src))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_parse, bench_passes, bench_compile_end_to_end);
criterion_main!(benches);
