//! Criterion benchmarks for the GPU VM: interpreter throughput and
//! dynamic-launch machinery.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_vm::{lower::compile_program, machine::Machine, Value};
use std::hint::black_box;

fn machine_for(src: &str) -> Machine {
    let program = dp_frontend::parse(src).unwrap();
    Machine::new(compile_program(&program).unwrap())
}

fn bench_alu_loop(c: &mut Criterion) {
    const ITERS: u64 = 10_000;
    let src = "__global__ void k(int* out, int n) { \
                   int s = 0; \
                   for (int i = 0; i < n; ++i) { s = s + i * 3 - (s >> 1); } \
                   out[threadIdx.x] = s; }";
    let mut group = c.benchmark_group("vm");
    group.throughput(Throughput::Elements(ITERS * 32));
    group.bench_function("alu_loop_32_threads", |b| {
        b.iter(|| {
            let mut m = machine_for(src);
            let buf = m.alloc(32);
            m.launch_host("k", 1, 32, &[Value::Int(buf), Value::Int(ITERS as i64)])
                .unwrap();
            m.run_to_quiescence().unwrap();
            black_box(m.stats().instructions)
        })
    });
    group.finish();
}

fn bench_atomic_contention(c: &mut Criterion) {
    let src = "__global__ void k(int* ctr, int n) { \
                   for (int i = 0; i < n; ++i) { atomicAdd(&ctr[0], 1); } }";
    c.bench_function("vm_atomic_contention_256_threads", |b| {
        b.iter(|| {
            let mut m = machine_for(src);
            let buf = m.alloc(1);
            m.launch_host("k", 2, 128, &[Value::Int(buf), Value::Int(100)])
                .unwrap();
            m.run_to_quiescence().unwrap();
            black_box(m.read_i64s(buf, 1).unwrap())
        })
    });
}

fn bench_dynamic_launch(c: &mut Criterion) {
    let src = "__global__ void child(int* d, int i) { d[i] = i; }\n\
               __global__ void parent(int* d, int n) { \
                   int i = blockIdx.x * blockDim.x + threadIdx.x; \
                   if (i < n) { child<<<1, 1>>>(d, i); } }";
    c.bench_function("vm_dynamic_launch_512_children", |b| {
        b.iter(|| {
            let mut m = machine_for(src);
            let buf = m.alloc(512);
            m.launch_host("parent", 4, 128, &[Value::Int(buf), Value::Int(512)])
                .unwrap();
            m.run_to_quiescence().unwrap();
            black_box(m.stats().device_launches)
        })
    });
}

criterion_group!(
    benches,
    bench_alu_loop,
    bench_atomic_contention,
    bench_dynamic_launch
);
criterion_main!(benches);
